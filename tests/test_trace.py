"""Tests for simulated-schedule traces."""

import pytest

from repro.jt.generation import synthetic_tree
from repro.simcore.policies import CollaborativePolicy
from repro.simcore.profiles import XEON
from repro.simcore.trace import Trace, TraceEvent
from repro.tasks.dag import build_task_graph


class TestTraceBasics:
    def test_event_duration(self):
        e = TraceEvent(0, 1, 2.0, 5.0)
        assert e.duration == 3.0

    def test_add_and_group(self):
        trace = Trace(2)
        trace.add(0, 0, 0.0, 1.0)
        trace.add(1, 1, 0.5, 2.0)
        trace.add(2, 0, 1.0, 3.0)
        by_core = trace.per_core()
        assert [e.node for e in by_core[0]] == [0, 2]
        assert [e.node for e in by_core[1]] == [1]

    def test_negative_duration_rejected(self):
        trace = Trace(1)
        with pytest.raises(ValueError, match="ends before"):
            trace.add(0, 0, 2.0, 1.0)

    def test_bad_core_rejected(self):
        trace = Trace(1)
        with pytest.raises(ValueError, match="out of range"):
            trace.add(0, 5, 0.0, 1.0)

    def test_makespan_and_times(self):
        trace = Trace(2)
        trace.add(0, 0, 0.0, 2.0)
        trace.add(1, 1, 0.0, 1.0)
        assert trace.makespan() == 2.0
        assert trace.busy_time(0) == 2.0
        assert trace.idle_time(1) == 1.0

    def test_overlap_detection(self):
        trace = Trace(1)
        trace.add(0, 0, 0.0, 2.0)
        trace.add(1, 0, 1.0, 3.0)
        with pytest.raises(ValueError, match="starts at"):
            trace.check_no_overlap()

    def test_dependency_violation_detection(self):
        trace = Trace(2)
        trace.add(0, 0, 1.0, 2.0)
        trace.add(1, 1, 0.0, 0.5)  # starts before node 0 finishes
        with pytest.raises(ValueError, match="before"):
            trace.check_dependencies([[], [0]])

    def test_gantt_rows_render(self):
        trace = Trace(2)
        trace.add(0, 0, 0.0, 1.0)
        trace.add(1, 1, 0.5, 1.0)
        rows = trace.gantt_rows(width=20)
        assert len(rows) == 2
        assert all(row.startswith("core") for row in rows)

    def test_empty_trace_gantt(self):
        assert Trace(1).gantt_rows() == ["(empty trace)"]


class TestPolicyTracing:
    def test_collaborative_trace_is_valid_schedule(self):
        tree = synthetic_tree(20, clique_width=5, seed=42)
        graph = build_task_graph(tree)
        result = CollaborativePolicy().simulate(
            graph, XEON, 4, record_trace=True
        )
        trace = result.trace
        assert trace is not None
        trace.check_no_overlap()
        trace.check_dependencies(result.sim_graph.deps)
        assert len(trace.events) == result.sim_graph.num_nodes

    def test_trace_makespan_matches_result(self):
        tree = synthetic_tree(15, clique_width=4, seed=43)
        graph = build_task_graph(tree)
        result = CollaborativePolicy().simulate(
            graph, XEON, 2, record_trace=True
        )
        assert result.trace.makespan() == pytest.approx(result.makespan)

    def test_no_trace_by_default(self):
        tree = synthetic_tree(10, clique_width=3, seed=44)
        graph = build_task_graph(tree)
        result = CollaborativePolicy().simulate(graph, XEON, 2)
        assert result.trace is None
