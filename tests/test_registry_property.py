"""Property tests: the registry's exact-or-typed-refusal contract and the
no-starvation fairness guarantee, over seeded multi-model multi-tenant
schedules.

Hypothesis draws an arbitrary schedule (model ids — some unregistered —
tenants, evidence deltas, deadlines, priorities) and fires it at a small
registry-fronted service.  Whatever compiles, evictions and scheduling
races occur:

* every request gets exactly one response;
* an ``ok`` response's marginals match *that model's own* serial oracle
  to 1e-9 (no cross-model contamination, ever);
* every non-ok response is an explicit refusal with a meaningful status
  and, for registry-level refusals, a typed ``kind``;
* a tenant submitting strictly serially (inflight never above 1, i.e.
  always within quota headroom) is never refused for quota, no matter
  how hard the other tenants hammer the service.

Runs under the ``deterministic`` Hypothesis profile (conftest).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bn.generation import random_network
from repro.inference.engine import InferenceEngine
from repro.registry import ModelRegistry, RegistryService, TenantScheduler
from repro.serve import QueryRequest

NUM_VARS = 10
MODEL_IDS = ("alpha", "beta")
TENANTS = ("t0", "t1", "t2")

_networks = {
    model_id: random_network(
        NUM_VARS, cardinality=2, max_parents=2, edge_probability=0.7,
        seed=57 + i,
    )
    for i, model_id in enumerate(MODEL_IDS)
}
_oracles = {
    model_id: InferenceEngine.from_network(bn)
    for model_id, bn in _networks.items()
}
_oracle_memo = {}


def oracle_marginal(model_id: str, request: QueryRequest, var: int):
    key = (model_id, request.signature())
    if key not in _oracle_memo:
        oracle = _oracles[model_id]
        oracle.set_evidence(request.evidence())
        oracle.propagate(incremental=False)
        _oracle_memo[key] = {v: oracle.marginal(v) for v in range(NUM_VARS)}
    return _oracle_memo[key][var]


request_strategy = st.builds(
    QueryRequest,
    delta=st.dictionaries(
        st.integers(min_value=0, max_value=NUM_VARS - 1),
        st.integers(min_value=0, max_value=1),
        max_size=3,
    ),
    vars=st.lists(
        st.integers(min_value=0, max_value=NUM_VARS - 1),
        min_size=1,
        max_size=3,
        unique=True,
    ),
    deadline=st.sampled_from([30.0, 30.0, 30.0, 1e-6]),
    priority=st.integers(min_value=0, max_value=2),
    model_id=st.sampled_from(MODEL_IDS + ("ghost",)),
    tenant=st.sampled_from(TENANTS),
)


def make_service(**scheduler_kw):
    registry = ModelRegistry(sessions=2, cache_size=32)
    for model_id, bn in _networks.items():
        registry.register(model_id, network=bn)
    scheduler = TenantScheduler(**scheduler_kw) if scheduler_kw else None
    return RegistryService(registry, scheduler=scheduler)


@settings(max_examples=10, deadline=None)
@given(st.lists(request_strategy, min_size=1, max_size=16))
def test_every_response_exact_or_typed_refusal(requests):
    service = make_service()
    futures = [service.submit(r) for r in requests]
    responses = [f.result(60.0) for f in futures]
    report = service.drain()

    assert len(responses) == len(requests)
    assert report.submitted == len(requests)

    for request, response in zip(requests, responses):
        assert response.tenant == request.tenant
        if response.status == "ok":
            assert response.model_id == request.model_id
            assert set(response.marginals) == set(request.vars)
            for var, values in response.marginals.items():
                np.testing.assert_allclose(
                    values,
                    oracle_marginal(request.model_id, request, var),
                    atol=1e-9,
                )
        else:
            assert response.status in ("shed", "deadline", "failed")
            assert response.marginals == {}
            assert response.error
            if request.model_id == "ghost":
                assert response.kind == "model-not-found"
            elif response.status == "failed":
                raise AssertionError(
                    f"unexplained failure: {response.error}"
                )


@settings(max_examples=8, deadline=None)
@given(
    st.lists(
        request_strategy.filter(lambda r: r.model_id != "ghost"),
        min_size=4,
        max_size=24,
    ),
    st.integers(min_value=2, max_value=6),
)
def test_serial_tenant_never_quota_starved(hog_requests, capacity):
    """A tenant with quota headroom (strictly serial, so inflight <= 1)
    is never refused for quota, regardless of hog pressure."""
    service = make_service(capacity=capacity, burst_factor=1.0)
    hog_futures = [
        service.submit(
            QueryRequest(
                delta=r.delta,
                vars=r.vars,
                deadline=30.0,
                priority=r.priority,
                model_id=r.model_id,
                tenant="hog",
            )
        )
        for r in hog_requests
    ]
    for i in range(6):
        response = service.submit(
            QueryRequest(
                delta={0: i % 2},
                vars=[1],
                deadline=30.0,
                model_id=MODEL_IDS[i % len(MODEL_IDS)],
                tenant="steady",
            )
        ).result(60.0)
        assert response.kind != "quota", (
            "serial tenant refused for quota while within headroom"
        )
    for future in hog_futures:
        future.result(60.0)
    report = service.drain()
    steady = report.per_tenant.get("steady", {})
    assert steady.get("shed", 0) == 0
