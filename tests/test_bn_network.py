"""Unit tests for the Bayesian-network substrate."""

import numpy as np
import pytest

from repro.bn.network import BayesianNetwork
from repro.potential.table import PotentialTable


def _two_node_net():
    bn = BayesianNetwork([2, 2])
    bn.add_edge(0, 1)
    bn.set_cpt(0, PotentialTable([0], [2], np.array([0.3, 0.7])))
    bn.set_cpt(
        1, PotentialTable([0, 1], [2, 2], np.array([[0.9, 0.1], [0.4, 0.6]]))
    )
    return bn


class TestStructure:
    def test_cardinality_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            BayesianNetwork([2, 1])

    def test_add_edge_and_query(self):
        bn = BayesianNetwork([2, 2, 2])
        bn.add_edge(0, 2)
        bn.add_edge(1, 2)
        assert bn.parents(2) == (0, 1)
        assert bn.children(0) == (2,)
        assert set(bn.edges()) == {(0, 2), (1, 2)}

    def test_self_loop_rejected(self):
        bn = BayesianNetwork([2, 2])
        with pytest.raises(ValueError, match="self-loop"):
            bn.add_edge(1, 1)

    def test_duplicate_edge_rejected(self):
        bn = BayesianNetwork([2, 2])
        bn.add_edge(0, 1)
        with pytest.raises(ValueError, match="duplicate"):
            bn.add_edge(0, 1)

    def test_cycle_rejected(self):
        bn = BayesianNetwork([2, 2, 2])
        bn.add_edge(0, 1)
        bn.add_edge(1, 2)
        with pytest.raises(ValueError, match="cycle"):
            bn.add_edge(2, 0)

    def test_out_of_range_variable_rejected(self):
        bn = BayesianNetwork([2, 2])
        with pytest.raises(ValueError, match="out of range"):
            bn.add_edge(0, 5)

    def test_topological_order_respects_edges(self):
        bn = BayesianNetwork([2] * 5)
        edges = [(0, 2), (1, 2), (2, 3), (1, 4)]
        for a, b in edges:
            bn.add_edge(a, b)
        order = bn.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for a, b in edges:
            assert pos[a] < pos[b]

    def test_adding_parent_invalidates_cpt(self):
        bn = BayesianNetwork([2, 2])
        bn.set_cpt(0, PotentialTable([0], [2], np.array([0.5, 0.5])))
        bn.set_cpt(1, PotentialTable([1], [2], np.array([0.5, 0.5])))
        bn.add_edge(0, 1)
        with pytest.raises(KeyError):
            bn.cpt(1)


class TestCpts:
    def test_set_cpt_wrong_scope_rejected(self):
        bn = BayesianNetwork([2, 2])
        bn.add_edge(0, 1)
        with pytest.raises(ValueError, match="scope"):
            bn.set_cpt(1, PotentialTable([1], [2], np.array([0.5, 0.5])))

    def test_set_cpt_unnormalized_rejected(self):
        bn = BayesianNetwork([2])
        with pytest.raises(ValueError, match="not normalized"):
            bn.set_cpt(0, PotentialTable([0], [2], np.array([0.5, 0.6])))

    def test_set_cpt_wrong_cardinality_rejected(self):
        bn = BayesianNetwork([2])
        with pytest.raises(ValueError, match="cardinality"):
            bn.set_cpt(0, PotentialTable([0], [3], np.array([0.2, 0.3, 0.5])))

    def test_missing_cpt_raises(self):
        bn = BayesianNetwork([2])
        with pytest.raises(KeyError):
            bn.cpt(0)
        assert not bn.has_all_cpts()

    def test_randomize_cpts_normalized(self):
        bn = BayesianNetwork([2, 3, 2])
        bn.add_edge(0, 1)
        bn.add_edge(1, 2)
        bn.randomize_cpts(np.random.default_rng(0))
        assert bn.has_all_cpts()
        for v in range(3):
            cpt = bn.cpt(v)
            axis = cpt.variables.index(v)
            assert np.allclose(cpt.values.sum(axis=axis), 1.0)
            assert np.all(cpt.values > 0)


class TestSemantics:
    def test_joint_table_is_distribution(self):
        bn = _two_node_net()
        joint = bn.joint_table()
        assert np.isclose(joint.total(), 1.0)

    def test_joint_matches_hand_computation(self):
        bn = _two_node_net()
        joint = bn.joint_table().aligned_to([0, 1])
        expected = np.array([[0.3 * 0.9, 0.3 * 0.1], [0.7 * 0.4, 0.7 * 0.6]])
        assert np.allclose(joint.values, expected)

    def test_marginal_bruteforce_prior(self):
        bn = _two_node_net()
        m = bn.marginal_bruteforce(1)
        expected = np.array([0.3 * 0.9 + 0.7 * 0.4, 0.3 * 0.1 + 0.7 * 0.6])
        assert np.allclose(m, expected)

    def test_marginal_bruteforce_with_evidence(self):
        bn = _two_node_net()
        # P(0 | 1 = 0) by Bayes' rule.
        p1_0 = 0.3 * 0.9 + 0.7 * 0.4
        expected = np.array([0.3 * 0.9, 0.7 * 0.4]) / p1_0
        assert np.allclose(bn.marginal_bruteforce(0, {1: 0}), expected)

    def test_joint_requires_all_cpts(self):
        bn = BayesianNetwork([2, 2])
        with pytest.raises(RuntimeError, match="CPTs"):
            bn.joint_table()
