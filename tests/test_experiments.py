"""Experiment runners: small-parameter sanity runs and table formatting."""

import numpy as np
import pytest

from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.rerooting_cost import run_rerooting_cost
from repro.experiments.tables import format_series_table
from repro.simcore.profiles import XEON

SMALL_CORES = (1, 2, 4)


class TestFig5Runner:
    def test_structure_and_saturation(self):
        results = run_fig5(
            branch_counts=(1, 2),
            cores=SMALL_CORES,
            platforms=(XEON,),
            num_cliques=61,
            clique_width=6,
        )
        per_b = results[XEON.name]
        assert set(per_b) == {1, 2}
        for speedups in per_b.values():
            assert len(speedups) == len(SMALL_CORES)
            assert speedups[0] == pytest.approx(1.0, abs=0.02)
            assert max(speedups) <= 2.05


class TestFig6Runner:
    def test_times_positive_and_keyed(self):
        results = run_fig6(trees=(3,), processors=(1, 2, 4))
        assert set(results) == {"Junction tree 3"}
        assert all(t > 0 for t in results["Junction tree 3"])


class TestFig7Runner:
    def test_rows_per_tree_and_method(self):
        results = run_fig7(trees=(3,), cores=SMALL_CORES, platforms=(XEON,))
        rows = results[XEON.name]
        assert set(rows) == {
            "JT3/openmp",
            "JT3/data-parallel",
            "JT3/collaborative",
        }
        for speedups in rows.values():
            assert speedups[0] == pytest.approx(1.0)


class TestFig8Runner:
    def test_per_thread_lists(self):
        result = run_fig8(which_tree=3, thread_counts=(1, 2, 4))
        assert set(result.sched_ratio) == {1, 2, 4}
        for p in (1, 2, 4):
            assert len(result.compute_per_thread[p]) == p
            assert result.load_imbalance[p] >= 1.0


class TestFig9Runner:
    def test_single_panel(self):
        results = run_fig9(
            cores=SMALL_CORES, panels=("d: avg children k",)
        )
        rows = results["d: avg children k"]
        assert set(rows) == {
            "avg_children=2",
            "avg_children=4",
            "avg_children=8",
        }


class TestRerootingCostRunner:
    def test_fast_beats_brute_and_fraction_small(self):
        result = run_rerooting_cost(sizes=(64, 128))
        for n in (64, 128):
            assert result.fast_seconds[n] < result.brute_seconds[n]
            assert result.modeled_fraction[n] < 0.01


class TestTableFormatting:
    def test_alignment_and_content(self):
        table = format_series_table(
            "Title", "row", (1, 2), {"alpha": [1.0, 2.5], "b": [3.0, 4.0]}
        )
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "alpha" in table and "2.50" in table
        # Header and data rows align on the same width.
        assert len(lines[1]) == len(lines[3])

    def test_custom_format(self):
        table = format_series_table(
            "T", "r", (1,), {"x": [0.123456]}, fmt="{:.4f}"
        )
        assert "0.1235" in table
