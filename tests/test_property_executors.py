"""Property-based executor equivalence on random trees and evidence.

The core safety property of the whole scheduling layer: *any* executor,
with *any* thread count and partitioning threshold, run on *any* valid
junction tree with *any* evidence, produces exactly the serial reference
potentials.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inference.propagation import propagate_reference
from repro.jt.generation import synthetic_tree
from repro.sched.baselines import DataParallelExecutor, LevelParallelExecutor
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.workstealing import WorkStealingExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState


@st.composite
def workloads(draw):
    """A random potential-initialized tree plus random evidence."""
    seed = draw(st.integers(min_value=0, max_value=999))
    num_cliques = draw(st.integers(min_value=2, max_value=14))
    width = draw(st.integers(min_value=2, max_value=4))
    states = draw(st.integers(min_value=2, max_value=3))
    children = draw(st.integers(min_value=1, max_value=3))
    tree = synthetic_tree(
        num_cliques,
        clique_width=width,
        states=states,
        avg_children=children,
        seed=seed,
    )
    tree.initialize_potentials(np.random.default_rng(seed))
    all_vars = sorted(
        {v for c in tree.cliques for v in c.variables}
    )
    evidence = {}
    num_obs = draw(st.integers(min_value=0, max_value=2))
    for _ in range(num_obs):
        var = draw(st.sampled_from(all_vars))
        evidence[var] = draw(st.integers(min_value=0, max_value=states - 1))
    return tree, evidence


@st.composite
def executor_configs(draw):
    kind = draw(
        st.sampled_from(
            ["collaborative", "workstealing", "level", "dataparallel"]
        )
    )
    threads = draw(st.integers(min_value=1, max_value=6))
    delta = draw(st.sampled_from([None, 2, 8, 64]))
    if kind == "collaborative":
        allocation = draw(
            st.sampled_from(["min-workload", "round-robin", "random"])
        )
        return CollaborativeExecutor(
            num_threads=threads,
            partition_threshold=delta,
            allocation=allocation,
        )
    if kind == "workstealing":
        return WorkStealingExecutor(
            num_threads=threads, partition_threshold=delta
        )
    if kind == "level":
        return LevelParallelExecutor(num_threads=threads)
    return DataParallelExecutor(num_threads=threads)


@given(workloads(), executor_configs())
@settings(max_examples=40, deadline=None)
def test_any_executor_matches_reference(workload, executor):
    tree, evidence = workload
    reference = propagate_reference(tree, evidence)
    graph = build_task_graph(tree)
    state = PropagationState(tree, evidence)
    executor.run(graph, state)
    for i in range(tree.num_cliques):
        assert state.potentials[i].allclose(
            reference[i]
        ), f"clique {i} diverged under {type(executor).__name__}"


@given(workloads())
@settings(max_examples=30, deadline=None)
def test_propagation_calibrates_any_tree(workload):
    from repro.jt.calibration import check_calibrated

    tree, evidence = workload
    potentials = propagate_reference(tree, evidence)
    check_calibrated(tree, potentials, rtol=1e-7, atol=1e-9)


@given(workloads())
@settings(max_examples=30, deadline=None)
def test_rerooting_preserves_propagation_results(workload):
    from repro.jt.rerooting import reroot_optimally

    tree, evidence = workload
    original = propagate_reference(tree, evidence)
    rerooted, _, _ = reroot_optimally(tree)
    again = propagate_reference(rerooted, evidence)
    for i in range(tree.num_cliques):
        assert original[i].allclose(again[i])
