"""Property test: the service's exact-or-explicit contract over seeded
request schedules.

Hypothesis draws an arbitrary multi-client schedule (evidence deltas,
query variables, deadlines, staleness tolerances, priorities) and the
test fires it concurrently at a small service.  Whatever the scheduling
races produce, the invariants hold:

* every request gets exactly one response;
* an ``ok`` response's marginals match a fresh serial-oracle propagation
  to 1e-9;
* a ``stale`` response's marginals are valid distributions and the
  request explicitly tolerated staleness;
* any other status is an explicit refusal with no marginals.

Runs under the ``deterministic`` Hypothesis profile (conftest), so the
schedule *generation* replays identically; outcome counts may vary with
timing but the invariants cannot.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bn.generation import random_network
from repro.inference.engine import InferenceEngine
from repro.jt.build import junction_tree_from_network
from repro.sched.collaborative import CollaborativeExecutor
from repro.serve import EngineSessionPool, InferenceService, QueryRequest

NUM_VARS = 14

_bn = random_network(
    NUM_VARS, cardinality=2, max_parents=3, edge_probability=0.7, seed=33
)
_jt = junction_tree_from_network(_bn)
_oracle = InferenceEngine.from_network(_bn)
_oracle_memo = {}


def oracle_marginal(request: QueryRequest, var: int) -> np.ndarray:
    sig = request.signature()
    if sig not in _oracle_memo:
        _oracle.set_evidence(request.evidence())
        _oracle.propagate(incremental=False)
        _oracle_memo[sig] = {
            v: _oracle.marginal(v) for v in range(NUM_VARS)
        }
    return _oracle_memo[sig][var]


request_strategy = st.builds(
    QueryRequest,
    delta=st.dictionaries(
        st.integers(min_value=0, max_value=NUM_VARS - 1),
        st.integers(min_value=0, max_value=1),
        max_size=3,
    ),
    vars=st.lists(
        st.integers(min_value=0, max_value=NUM_VARS - 1),
        min_size=1,
        max_size=3,
        unique=True,
    ),
    deadline=st.sampled_from([30.0, 30.0, 30.0, 1e-6]),
    priority=st.integers(min_value=0, max_value=2),
    max_staleness=st.sampled_from([None, None, 60.0]),
)


@settings(max_examples=12, deadline=None)
@given(st.lists(request_strategy, min_size=1, max_size=16))
def test_every_response_exact_or_explicit(requests):
    pool = EngineSessionPool.from_junction_tree(_jt, sessions=2)
    service = InferenceService(
        pool,
        fallback=CollaborativeExecutor(num_threads=2),
        max_queue=4,
        workers=2,
    )
    futures = [service.submit(r) for r in requests]
    responses = [f.result(60.0) for f in futures]
    report = service.drain()

    assert len(responses) == len(requests)
    assert report.submitted == len(requests)
    assert report.failed == 0  # no faults injected, so no failures

    for request, response in zip(requests, responses):
        if response.status == "ok":
            assert set(response.marginals) == set(request.vars)
            for var, values in response.marginals.items():
                np.testing.assert_allclose(
                    values, oracle_marginal(request, var), atol=1e-9
                )
        elif response.status == "stale":
            assert request.max_staleness is not None
            for values in response.marginals.values():
                assert np.all(np.isfinite(values))
                assert abs(values.sum() - 1.0) < 1e-6
        else:
            assert response.status in ("shed", "deadline")
            assert response.marginals == {}
            assert response.error
