"""Generic collaborative DAG execution (the Section 8 generalization)."""

import threading
import time

import pytest

from repro.sched.generic import run_dag


class TestBasics:
    def test_results_flow_through_dependencies(self):
        results = run_dag(
            nodes={
                "a": lambda: 2,
                "b": lambda: 3,
                "c": lambda a, b: a + b,
                "d": lambda c: c * 10,
            },
            deps={"c": ["a", "b"], "d": ["c"]},
            num_threads=3,
        )
        assert results == {"a": 2, "b": 3, "c": 5, "d": 50}

    def test_dependency_argument_order(self):
        results = run_dag(
            nodes={
                "x": lambda: "x",
                "y": lambda: "y",
                "cat": lambda first, second: first + second,
            },
            deps={"cat": ["y", "x"]},
            num_threads=2,
        )
        assert results["cat"] == "yx"

    def test_single_node(self):
        assert run_dag({"only": lambda: 7}, num_threads=1) == {"only": 7}

    def test_wide_fanout(self):
        n = 50
        nodes = {i: (lambda i=i: i * i) for i in range(n)}
        nodes["sum"] = lambda *vals: sum(vals)
        deps = {"sum": list(range(n))}
        results = run_dag(nodes, deps, num_threads=8)
        assert results["sum"] == sum(i * i for i in range(n))

    def test_deep_chain(self):
        n = 40
        nodes = {0: lambda: 1}
        deps = {}
        for i in range(1, n):
            nodes[i] = lambda prev: prev + 1
            deps[i] = [i - 1]
        results = run_dag(nodes, deps, num_threads=4)
        assert results[n - 1] == n

    def test_actually_parallel_execution(self):
        """Two independent sleeps overlap when run on two threads."""
        barrier = threading.Barrier(2, timeout=5)

        def wait():
            barrier.wait()
            return True

        results = run_dag(
            {"a": wait, "b": wait}, num_threads=2
        )
        assert results == {"a": True, "b": True}


class TestValidation:
    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            run_dag(
                {"a": lambda b: b, "b": lambda a: a},
                deps={"a": ["b"], "b": ["a"]},
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            run_dag({"a": lambda x: x}, deps={"a": ["ghost"]})

    def test_unknown_node_in_deps_rejected(self):
        with pytest.raises(ValueError, match="unknown node"):
            run_dag({"a": lambda: 1}, deps={"ghost": ["a"]})

    def test_bad_thread_count_rejected(self):
        with pytest.raises(ValueError):
            run_dag({"a": lambda: 1}, num_threads=0)

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("node exploded")

        with pytest.raises(RuntimeError, match="node exploded"):
            run_dag(
                {"a": boom, "b": lambda: 1},
                num_threads=2,
            )

    def test_weights_accepted(self):
        results = run_dag(
            {"a": lambda: 1, "b": lambda: 2},
            num_threads=2,
            weights={"a": 100.0, "b": 1.0},
        )
        assert results == {"a": 1, "b": 2}
