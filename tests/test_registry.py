"""Tests for the sharded multi-tenant model registry (repro.registry).

Covers the compile pipeline (deadline-aware, stage-timed), the fair
scheduler's quota/penalty math, the registry lifecycle (single-flight
compiles, LRU eviction to stubs under a global budget, checkpoint
rehydration) and the multi-tenant front door.  The contract carried over
from the serve layer: every response is exact versus that model's own
serial oracle, or an explicitly *typed* refusal.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.inference.engine import InferenceEngine
from repro.registry import (
    CompileDeadlineExceeded,
    ModelNotFound,
    ModelRegistry,
    RegistryService,
    TenantQuotaExceeded,
    TenantScheduler,
    compile_model,
    rehydrate_model,
)
from repro.serve import (
    EngineSessionPool,
    QueryRequest,
    ServiceClosed,
)

RTOL = 1e-9


def make_networks(count=3, size=10, seed=40):
    return {
        f"m{i}": random_network(
            size, cardinality=2, max_parents=2, edge_probability=0.7,
            seed=seed + i,
        )
        for i in range(count)
    }


def make_registry(networks, **kw):
    kw.setdefault("sessions", 2)
    kw.setdefault("cache_size", 32)
    registry = ModelRegistry(**kw)
    for model_id, network in networks.items():
        registry.register(model_id, network=network)
    return registry


def exact_marginals(network, request):
    oracle = InferenceEngine.from_network(network)
    oracle.set_evidence(request.evidence())
    oracle.propagate(incremental=False)
    variables = request.vars
    if variables is None:
        return oracle.marginals_all()
    return {int(v): oracle.marginal(int(v)) for v in variables}


def assert_exact(network, request, response):
    assert response.status == "ok", response.error
    expected = exact_marginals(network, request)
    assert set(response.marginals) == set(expected)
    for var, values in expected.items():
        np.testing.assert_allclose(
            response.marginals[var], values, rtol=RTOL, atol=0
        )


# --------------------------------------------------------------------- #
# Compiler
# --------------------------------------------------------------------- #


class TestCompiler:
    def test_compiled_model_answers_exactly(self):
        bn = make_networks(1)["m0"]
        compiled = compile_model("m0", bn, sessions=2)
        request = QueryRequest(delta={0: 1}, vars=[3, 5])
        with compiled.pool.session() as engine:
            engine.set_evidence(request.evidence())
            engine.propagate(incremental=False)
            marginals = {v: engine.marginal(v) for v in request.vars}
        expected = exact_marginals(bn, request)
        for var in request.vars:
            np.testing.assert_allclose(
                marginals[var], expected[var], rtol=RTOL, atol=0
            )
        compiled.pool.close()

    def test_stage_timings_recorded(self):
        bn = make_networks(1)["m0"]
        compiled = compile_model("m0", bn, sessions=2)
        names = [name for name, _ in compiled.stages]
        for expected in (
            "moralize",
            "triangulate",
            "spanning-tree",
            "absorb-cpts",
            "reroot",
            "calibrate-session-0",
            "calibrate-session-1",
            "checkpoint",
        ):
            assert expected in names
        assert all(duration >= 0 for _, duration in compiled.stages)
        assert compiled.cost_bytes > compiled.stub_cost_bytes > 0
        assert not compiled.rehydrated
        compiled.pool.close()

    def test_expired_deadline_refuses_between_stages(self):
        bn = make_networks(1)["m0"]
        with pytest.raises(CompileDeadlineExceeded):
            compile_model("m0", bn, deadline_at=time.monotonic() - 1.0)

    def test_rehydrate_matches_cold_compile(self):
        bn = make_networks(1)["m0"]
        cold = compile_model("m0", bn, sessions=2)
        warm = rehydrate_model(
            "m0", cold.junction_tree, cold.baseline, sessions=2
        )
        assert warm.rehydrated
        request = QueryRequest(delta={1: 0}, vars=[4])
        with warm.pool.session() as engine:
            engine.set_evidence(request.evidence())
            engine.propagate(incremental=False)
            got = engine.marginal(4)
        expected = exact_marginals(bn, request)[4]
        np.testing.assert_allclose(got, expected, rtol=RTOL, atol=0)
        cold.pool.close()
        warm.pool.close()

    def test_rehydrate_requires_baseline(self):
        bn = make_networks(1)["m0"]
        cold = compile_model("m0", bn, sessions=1)
        with pytest.raises(ValueError):
            rehydrate_model("m0", cold.junction_tree, None)
        cold.pool.close()


# --------------------------------------------------------------------- #
# Fair scheduler
# --------------------------------------------------------------------- #


class TestTenantScheduler:
    def test_lone_tenant_gets_whole_capacity(self):
        sched = TenantScheduler(capacity=8, burst_factor=1.0)
        assert sched.fair_share("a") == pytest.approx(8.0)
        assert sched.quota("a") == 8

    def test_share_splits_between_active_tenants(self):
        sched = TenantScheduler(capacity=8, burst_factor=1.0)
        admitted, _, _ = sched.admit("a")
        assert admitted
        assert sched.fair_share("b") == pytest.approx(4.0)
        sched.release("a")
        assert sched.fair_share("b") == pytest.approx(8.0)

    def test_weighted_shares(self):
        sched = TenantScheduler(capacity=9, burst_factor=1.0)
        sched.set_weight("big", 2.0)
        sched.admit("big")
        sched.admit("small")
        assert sched.fair_share("big") == pytest.approx(6.0)
        assert sched.fair_share("small") == pytest.approx(3.0)

    def test_quota_refuses_past_burst(self):
        sched = TenantScheduler(capacity=4, burst_factor=1.0)
        for _ in range(4):
            admitted, _, _ = sched.admit("hog")
            assert admitted
        admitted, _, _ = sched.admit("hog")
        assert not admitted
        assert sched.snapshot()["hog"]["refused"] == 1

    def test_serial_tenant_never_refused(self):
        # Quota never drops below 1: a one-at-a-time tenant always admits
        # regardless of how many hogs are active.
        sched = TenantScheduler(capacity=2, burst_factor=1.0)
        for _ in range(2):
            sched.admit("hog")
        for _ in range(50):
            admitted, _, _ = sched.admit("steady")
            assert admitted
            sched.release("steady")

    def test_priority_bands_preserved(self):
        # A saturated tenant's base-0 request still sorts ahead of any
        # base-1 request: penalties reorder only within a band.
        sched = TenantScheduler(capacity=4, burst_factor=2.0, priority_levels=4)
        worst_base0 = 0
        for _ in range(8):
            admitted, effective, _ = sched.admit("hog", base_priority=0)
            if admitted:
                worst_base0 = max(worst_base0, effective)
        _, base1, _ = sched.admit("light", base_priority=1)
        assert worst_base0 < base1

    def test_penalty_grows_with_inflight(self):
        sched = TenantScheduler(capacity=4, burst_factor=4.0, priority_levels=4)
        effectives = []
        for _ in range(12):
            admitted, effective, _ = sched.admit("hog")
            if admitted:
                effectives.append(effective)
        assert effectives[0] == 0
        assert max(effectives) > 0
        assert sorted(effectives) == effectives

    def test_release_floor_and_validation(self):
        sched = TenantScheduler(capacity=4)
        sched.release("ghost")  # never admitted: clamps at zero
        assert sched.snapshot()["ghost"]["inflight"] == 0
        with pytest.raises(ValueError):
            sched.set_weight("a", 0.0)
        with pytest.raises(ValueError):
            TenantScheduler(capacity=0)
        with pytest.raises(ValueError):
            TenantScheduler(burst_factor=0.5)


# --------------------------------------------------------------------- #
# Registry lifecycle
# --------------------------------------------------------------------- #


class TestModelRegistry:
    def test_register_validation(self):
        registry = ModelRegistry()
        bn = make_networks(1)["m0"]
        with pytest.raises(ValueError):
            registry.register("m0")  # neither network nor loader
        registry.register("m0", network=bn)
        with pytest.raises(ValueError):
            registry.register("m0", network=bn)  # duplicate
        with pytest.raises(ModelNotFound):
            registry.acquire("unseen")
        registry.close()

    def test_hit_miss_accounting(self):
        registry = make_registry(make_networks(1))
        registry.acquire("m0")
        registry.acquire("m0")
        registry.acquire("m0")
        stats = registry.stats()
        assert stats["misses"] == 1 and stats["compiles"] == 1
        assert stats["hits"] == 2
        registry.close()

    def test_lazy_loader_called_once(self):
        calls = []
        bn = make_networks(1)["m0"]

        def loader():
            calls.append(1)
            return bn

        registry = ModelRegistry()
        registry.register("m0", loader=loader)
        assert calls == []  # registration is lazy
        registry.acquire("m0")
        registry.acquire("m0")
        assert len(calls) == 1
        registry.close()

    def test_single_flight_compile(self):
        # 8 concurrent misses on one cold model must trigger exactly one
        # compile; the followers wait and share the resident entry.
        bn = make_networks(1, size=14)["m0"]
        compiles = []
        lock = threading.Lock()

        def loader():
            with lock:
                compiles.append(1)
            time.sleep(0.05)  # widen the race window
            return bn

        registry = ModelRegistry()
        registry.register("m0", loader=loader)
        entries, errors = [], []

        def worker():
            try:
                entries.append(registry.acquire("m0"))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(compiles) == 1
        assert len({id(e) for e in entries}) == 1
        assert registry.stats()["misses"] == 1
        registry.close()

    def test_budget_evicts_lru_to_stub_and_rehydrates(self):
        networks = make_networks(2)
        probe = make_registry(networks)
        costs = {m: probe.acquire(m).cost_bytes for m in networks}
        probe.close()

        registry = make_registry(
            networks, memory_budget=sum(costs.values()) - 1
        )
        registry.acquire("m0")
        registry.acquire("m1")  # over budget: m0 (LRU) demoted to stub
        assert registry.resident_models() == ["m1"]
        assert registry.stats()["models"]["m0"]["state"] == "stub"
        assert registry.evictions == 1

        entry = registry.acquire("m0")  # miss -> rehydrate from stub
        assert registry.rehydrations == 1
        assert entry.pool is not None
        stats = registry.stats()["models"]["m0"]
        assert stats["rehydrate_seconds"] is not None
        registry.close()

    def test_rehydrated_model_is_exact(self):
        networks = make_networks(2)
        probe = make_registry(networks)
        costs = {m: probe.acquire(m).cost_bytes for m in networks}
        probe.close()

        registry = make_registry(
            networks, memory_budget=sum(costs.values()) - 1
        )
        service = RegistryService(registry)
        request = QueryRequest(delta={0: 1}, vars=[3], model_id="m0")
        service.submit(request).result()
        service.submit(
            QueryRequest(delta={}, model_id="m1")
        ).result()  # evicts m0
        response = service.submit(request).result()  # rehydrated answer
        assert registry.rehydrations == 1
        assert_exact(networks["m0"], request, response)
        service.drain()

    def test_stub_demoted_to_cold_under_pressure(self):
        networks = make_networks(2)
        probe = make_registry(networks)
        entry = probe.acquire("m0")
        cost_m1 = probe.acquire("m1").cost_bytes
        stub0 = entry.stub_cost_bytes
        probe.close()

        # Budget fits exactly one resident model and *no* stub.
        registry = make_registry(
            networks, memory_budget=cost_m1 + stub0 - 1
        )
        registry.acquire("m0")
        registry.acquire("m1")
        stats = registry.stats()["models"]["m0"]
        assert stats["state"] == "cold"
        registry.acquire("m0")  # full recompile, not rehydration
        assert registry.rehydrations == 0
        assert registry.compiles == 3
        registry.close()

    def test_oversized_model_still_serves(self):
        networks = make_networks(1)
        registry = make_registry(networks, memory_budget=1)
        entry = registry.acquire("m0")
        assert entry.state == "resident"
        assert registry.stats()["budget_overruns"] >= 1
        registry.close()

    def test_explicit_evict(self):
        registry = make_registry(make_networks(1))
        assert not registry.evict("m0")  # not resident yet
        registry.acquire("m0")
        assert registry.evict("m0")
        assert registry.stats()["models"]["m0"]["state"] == "stub"
        with pytest.raises(ModelNotFound):
            registry.evict("missing")
        registry.close()

    def test_compile_deadline_estimate_refuses_upfront(self):
        networks = make_networks(1)
        registry = make_registry(networks)
        registry.acquire("m0")  # learn the compile estimate
        registry.evict("m0")
        registry._entries["m0"].rehydrate_estimate = 10.0
        with pytest.raises(CompileDeadlineExceeded):
            registry.acquire("m0", deadline_at=time.monotonic() + 0.001)
        # the model stayed a stub and a patient caller still gets it
        assert registry.stats()["models"]["m0"]["state"] == "stub"
        assert registry.acquire("m0").state == "resident"
        assert registry.compile_deadline_refusals == 1
        registry.close()

    def test_closed_registry_refuses(self):
        registry = make_registry(make_networks(1))
        report = registry.close()
        assert registry.close() is report  # idempotent
        with pytest.raises(ServiceClosed):
            registry.acquire("m0")
        with pytest.raises(ServiceClosed):
            registry.register("late", network=make_networks(1)["m0"])

    def test_close_aggregates_served_work(self):
        networks = make_networks(2)
        registry = make_registry(networks)
        service = RegistryService(registry)
        for model_id in ("m0", "m1", "m0"):
            service.submit(
                QueryRequest(delta={0: 1}, vars=[2], model_id=model_id)
            ).result()
        report = service.drain()
        assert report.submitted == 3
        assert report.served_ok == 3
        assert report.model_hits == 1 and report.model_misses == 2
        assert report.compiles == 2
        assert set(report.per_model) == {"m0", "m1"}
        assert report.per_model["m0"]["ok"] == 2
        assert report.latency  # recomputed over union of serve spans
        assert report.peak_resident_bytes > 0


# --------------------------------------------------------------------- #
# Front door (RegistryService)
# --------------------------------------------------------------------- #


class TestRegistryService:
    def test_multi_model_routing_is_exact(self):
        networks = make_networks(3)
        registry = make_registry(networks)
        service = RegistryService(registry)
        requests = [
            QueryRequest(delta={0: 1}, vars=[3], model_id="m0", tenant="a"),
            QueryRequest(delta={1: 0}, vars=[4], model_id="m1", tenant="b"),
            QueryRequest(delta={}, vars=[2, 5], model_id="m2", tenant="a"),
        ]
        futures = [service.submit(r) for r in requests]
        for request, future in zip(requests, futures):
            response = future.result(timeout=30)
            assert response.model_id == request.model_id
            assert response.tenant == request.tenant
            assert_exact(networks[request.model_id], request, response)
        service.drain()

    def test_unknown_model_typed_refusal(self):
        registry = make_registry(make_networks(1))
        service = RegistryService(registry)
        response = service.submit(
            QueryRequest(delta={}, model_id="ghost")
        ).result()
        assert response.status == "failed"
        assert response.kind == "model-not-found"
        with pytest.raises(ModelNotFound):
            response.raise_for_status()
        service.drain()

    def test_single_model_implicit_routing(self):
        networks = make_networks(1)
        registry = make_registry(networks)
        service = RegistryService(registry)
        request = QueryRequest(delta={0: 1}, vars=[2])
        response = service.submit(request).result()
        assert response.model_id == "m0"
        assert_exact(networks["m0"], request, response)
        service.drain()

    def test_default_model_param(self):
        networks = make_networks(2)
        registry = make_registry(networks)
        service = RegistryService(registry, default_model="m1")
        response = service.submit(QueryRequest(delta={})).result()
        assert response.model_id == "m1"
        service.drain()

    def test_quota_refusal_is_typed_and_isolated(self):
        networks = make_networks(1)
        registry = make_registry(networks)
        registry.acquire("m0")  # pre-compile so submits don't block
        scheduler = TenantScheduler(capacity=2, burst_factor=1.0)
        service = RegistryService(registry, scheduler=scheduler)
        # Saturate the hog's quota without letting futures resolve: hold
        # the admission charge by submitting faster than service drains.
        refused = None
        for _ in range(64):
            response_future = service.submit(
                QueryRequest(delta={0: 1}, model_id="m0", tenant="hog")
            )
            if not response_future.done():
                continue
            response = response_future.result(0)
            if response.kind == "quota":
                refused = response
                break
        if refused is None:
            # force it deterministically: charge the scheduler directly
            scheduler.admit("hog")
            scheduler.admit("hog")
            refused = service.submit(
                QueryRequest(delta={}, model_id="m0", tenant="hog")
            ).result()
        assert refused.status == "shed"
        assert refused.kind == "quota"
        with pytest.raises(TenantQuotaExceeded):
            refused.raise_for_status()
        # a different (serial) tenant is still served
        ok = service.submit(
            QueryRequest(delta={0: 1}, vars=[2], model_id="m0", tenant="calm")
        ).result()
        assert ok.status == "ok"
        report = service.drain()
        assert report.shed_by_quota >= 1
        assert report.per_tenant["hog"].get("shed", 0) >= 1

    def test_compile_deadline_response_is_typed(self):
        networks = make_networks(1)
        registry = make_registry(networks)
        service = RegistryService(registry)
        response = service.submit(
            QueryRequest(delta={}, model_id="m0", deadline=1e-9)
        ).result()
        assert response.status == "deadline"
        assert response.kind == "compile-deadline"
        with pytest.raises(CompileDeadlineExceeded):
            response.raise_for_status()
        report = service.drain()
        assert report.compile_deadline_refusals == 1
        assert report.deadline_missed == 1

    def test_scheduler_charge_released_after_response(self):
        networks = make_networks(1)
        registry = make_registry(networks)
        scheduler = TenantScheduler(capacity=4)
        service = RegistryService(registry, scheduler=scheduler)
        for _ in range(12):
            service.submit(
                QueryRequest(delta={0: 1}, model_id="m0", tenant="t")
            ).result()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if scheduler.snapshot()["t"]["inflight"] == 0:
                break
            time.sleep(0.01)
        assert scheduler.snapshot()["t"]["inflight"] == 0
        service.drain()

    def test_drain_is_idempotent_and_closes_admission(self):
        registry = make_registry(make_networks(1))
        service = RegistryService(registry)
        report = service.drain()
        assert service.drain() is report
        with pytest.raises(ServiceClosed):
            service.submit(QueryRequest(delta={}))

    def test_context_manager(self):
        networks = make_networks(1)
        with RegistryService(make_registry(networks)) as service:
            response = service.query(delta={0: 1}, vars=[2], model_id="m0")
            assert response.status == "ok"
        with pytest.raises(ServiceClosed):
            service.submit(QueryRequest(delta={}))


# --------------------------------------------------------------------- #
# Satellite: pool close()/release() race (evict during a live flight)
# --------------------------------------------------------------------- #


class TestPoolCloseRace:
    def test_close_is_idempotent(self):
        networks = make_networks(1)
        pool = EngineSessionPool.from_network(networks["m0"], sessions=2)
        pool.close()
        pool.close()  # second close is a no-op
        assert pool.closed
        assert pool.engines == []
        with pytest.raises(ServiceClosed):
            with pool.session():
                pass

    def test_release_after_close_does_not_leak(self):
        # An in-flight session released *after* close() must be discarded,
        # not requeued into the freelist of a dead pool.
        networks = make_networks(1)
        pool = EngineSessionPool.from_network(networks["m0"], sessions=2)
        entered = threading.Event()
        proceed = threading.Event()
        errors = []

        def flight():
            try:
                with pool.session() as engine:
                    entered.set()
                    proceed.wait(timeout=10)
                    engine.query({0: 1}, vars=[2])
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        t = threading.Thread(target=flight)
        t.start()
        assert entered.wait(timeout=10)
        pool.close()  # races the live flight
        proceed.set()
        t.join(timeout=10)
        assert not t.is_alive()
        assert not errors  # the flight itself finished cleanly
        assert pool.engines == []
        assert pool._free.empty()  # nothing requeued after close

    def test_eviction_during_flight_keeps_response_exact(self):
        # End-to-end: a registry eviction drains the per-model service, so
        # a request in flight at eviction time still gets its exact answer.
        networks = make_networks(2)
        probe = make_registry(networks)
        costs = {m: probe.acquire(m).cost_bytes for m in networks}
        probe.close()

        registry = make_registry(
            networks, memory_budget=sum(costs.values()) - 1
        )
        service = RegistryService(registry)
        request = QueryRequest(delta={0: 1}, vars=[3], model_id="m0")
        futures = [service.submit(request) for _ in range(4)]
        # Compiling m1 forces m0's eviction; its service drains first.
        evicted = service.submit(QueryRequest(delta={}, model_id="m1"))
        for future in futures:
            response = future.result(timeout=30)
            assert_exact(networks["m0"], request, response)
        assert evicted.result(timeout=30).status == "ok"
        report = service.drain()
        assert report.evictions >= 1
        assert report.failed == 0
