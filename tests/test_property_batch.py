"""Property-based batched-vs-serial exactness (Hypothesis).

Random evidence batches — any mix of hard findings and soft likelihood
vectors over a fixed synthetic network — go through
:meth:`InferenceEngine.query_batch` and must match a fresh single-case
oracle engine per case at 1e-9.  The ``deterministic`` Hypothesis
profile (registered in ``conftest.py``) derandomizes generation so CI
runs are reproducible.

When Hypothesis ever finds a falsifying example, append its shrunk
batch to ``tests/data/batch_regressions.json`` — the corpus is replayed
as explicit cases on every run, so a once-seen failure can never
silently regress.  The file's shape mirrors the strategy's output (one
entry per batch; each case ``{"hard": {var: state}, "soft": {var:
[weights]}}``) so a shrunk example pastes in directly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bn.generation import random_network
from repro.inference.engine import InferenceEngine

RTOL = 1e-9
ATOL = 1e-12

NUM_VARS = 10
CARD = 2
CORPUS = Path(__file__).parent / "data" / "batch_regressions.json"


@pytest.fixture(scope="module")
def property_network():
    return random_network(
        NUM_VARS, cardinality=CARD, max_parents=3,
        edge_probability=0.6, seed=99,
    )


def _finding():
    return st.one_of(
        st.integers(min_value=0, max_value=CARD - 1),
        st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=CARD, max_size=CARD,
        ),
    )


def _case():
    return st.dictionaries(
        st.integers(min_value=0, max_value=NUM_VARS - 1),
        _finding(),
        max_size=4,
    )


def _batches():
    return st.lists(_case(), min_size=1, max_size=6)


def _assert_batch_exact(network, batch):
    engine = InferenceEngine.from_network(network)
    answers = engine.query_batch(batch)
    assert len(answers) == len(batch)
    for case, answer in zip(batch, answers):
        oracle = InferenceEngine.from_network(network)
        exact = oracle.query(case)
        assert set(answer) == set(exact)
        for var in exact:
            np.testing.assert_allclose(
                answer[var], exact[var], rtol=RTOL, atol=ATOL,
                err_msg=f"case={case} var={var}",
            )


class TestBatchProperties:
    @settings(max_examples=30)
    @given(batch=_batches())
    def test_query_batch_matches_per_case_oracle(
        self, property_network, batch
    ):
        _assert_batch_exact(property_network, batch)

    @settings(max_examples=20)
    @given(batch=_batches())
    def test_propagate_batch_likelihood_matches(
        self, property_network, batch
    ):
        engine = InferenceEngine.from_network(property_network)
        state = engine.propagate_batch(batch)
        likelihoods = np.asarray(state.likelihood()).reshape(-1)
        assert likelihoods.shape == (len(batch),)
        for i, case in enumerate(batch):
            oracle = InferenceEngine.from_network(property_network)
            oracle.query(case)  # propagates with the case's findings
            np.testing.assert_allclose(
                likelihoods[i], oracle.likelihood(), rtol=RTOL, atol=ATOL,
                err_msg=f"case={case}",
            )


def _load_corpus():
    with open(CORPUS) as fh:
        raw = json.load(fh)
    batches = []
    for entry in raw:
        batch = []
        for case in entry:
            findings = {int(v): int(s) for v, s in case["hard"].items()}
            findings.update(
                {int(v): np.asarray(w) for v, w in case["soft"].items()}
            )
            batch.append(findings)
        batches.append(batch)
    return batches


class TestRegressionCorpus:
    @pytest.mark.parametrize(
        "batch", _load_corpus(),
        ids=lambda b: f"B={len(b)}",
    )
    def test_corpus_batch_exact(self, property_network, batch):
        _assert_batch_exact(property_network, batch)
