"""Durable serving (repro.durability): journal, recovery, model store.

The contract under test: once ``append_tick`` returns, the tick
survives any crash; a fresh process on the same durable root truncates
torn tails, replays the journals and answers every in-window query
exactly (1e-9) as an uninterrupted process would have; acked ticks are
never lost and never re-acked; durable model artifacts rehydrate a
fresh registry to the bit-identical baseline checkpoint.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability import (
    DurableModelStore,
    RecoveryManager,
    TickJournal,
    decode_delta,
    encode_delta,
)
from repro.durability.harness import (
    build_demo_dbn,
    build_schedule,
    oracle_marginal,
    verify_acks,
)
from repro.durability.journal import _frame
from repro.sched.faults import FaultPlan
from repro.serve.streaming import StreamingService

WINDOW = 4
RETIRE = 2
ATOL = 1e-9


# --------------------------------------------------------------------- #
# Journal
# --------------------------------------------------------------------- #


class TestTickJournal:
    def test_fresh_journal_is_empty(self, tmp_path):
        journal = TickJournal(str(tmp_path / "j"))
        assert journal.next_seq == 0
        assert journal.records == []
        assert journal.snapshot["state"] is None
        assert journal.torn_bytes == 0
        journal.close()
        reopened = TickJournal(str(tmp_path / "j"))
        assert reopened.next_seq == 0
        assert reopened.records == []
        reopened.close()

    def test_records_round_trip_exactly(self, tmp_path):
        root = str(tmp_path / "j")
        journal = TickJournal(root)
        soft = np.array([0.123456789012345678, 0.7e-200, 1.0])
        journal.append_tick(0, {1: 2})
        journal.append_ack(0, "ok", t=0)
        journal.append_tick(1, {0: soft})
        journal.close()

        reopened = TickJournal(root)
        assert [r["type"] for r in reopened.records] == ["tick", "ack", "tick"]
        assert decode_delta(reopened.records[0]["delta"]) == {1: 2}
        decoded = decode_delta(reopened.records[2]["delta"])
        # repr-based JSON floats are bit-exact for float64
        assert decoded[0].tobytes() == soft.tobytes()
        assert reopened.next_seq == 2
        reopened.close()

    @pytest.mark.parametrize("cut", [1, 9, 10, 11])
    def test_torn_tail_truncated_to_last_whole_record(self, tmp_path, cut):
        """A tail torn anywhere — one byte, mid-header, header-only,
        one payload byte — heals back to the last whole record."""
        root = str(tmp_path / "j")
        journal = TickJournal(root)
        journal.append_tick(0, {1: 1})
        journal.append_tick(1, {1: 2})
        path = journal._file.name
        whole = os.path.getsize(path)
        journal.close()

        torn = _frame({"type": "tick", "seq": 2, "delta": {"1": 3}})[:cut]
        with open(path, "ab") as handle:
            handle.write(torn)

        reopened = TickJournal(root)
        assert reopened.torn_bytes == len(torn)
        assert [r["seq"] for r in reopened.records] == [0, 1]
        assert reopened.next_seq == 2
        assert os.path.getsize(path) == whole  # truncated in place
        reopened.close()
        # The heal is durable: a third open sees nothing torn.
        third = TickJournal(root)
        assert third.torn_bytes == 0
        third.close()

    def test_exactly_torn_last_record_drops_only_that_record(self, tmp_path):
        """The last record torn one byte short of complete is dropped
        whole — never half-applied."""
        root = str(tmp_path / "j")
        journal = TickJournal(root)
        journal.append_tick(0, {1: 1})
        path = journal._file.name
        journal.close()
        frame = _frame({"type": "tick", "seq": 1, "delta": {"1": 0}})
        with open(path, "ab") as handle:
            handle.write(frame[:-1])
        reopened = TickJournal(root)
        assert [r["seq"] for r in reopened.records] == [0]
        assert reopened.next_seq == 1
        reopened.close()

    def test_corrupt_payload_byte_detected_by_crc(self, tmp_path):
        root = str(tmp_path / "j")
        journal = TickJournal(root)
        journal.append_tick(0, {1: 1})
        journal.append_tick(1, {1: 2})
        path = journal._file.name
        journal.close()
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0xFF]))
        reopened = TickJournal(root)
        assert [r["seq"] for r in reopened.records] == [0]
        assert reopened.torn_bytes > 0
        reopened.close()

    def test_segment_with_torn_snapshot_is_discarded(self, tmp_path):
        """A newest segment whose snapshot record did not survive is
        unusable; open falls back to the fresh-journal path."""
        root = str(tmp_path / "j")
        journal = TickJournal(root)
        journal.append_tick(0, {1: 1})
        journal.close()
        # A later segment that never got past a torn snapshot write.
        with open(os.path.join(root, "00000002.wal"), "wb") as handle:
            handle.write(b"\xc4W\x99\x99")
        reopened = TickJournal(root)
        assert reopened.segments_discarded == 1
        # Fell back to segment 1, whose records are intact.
        assert [r["seq"] for r in reopened.records] == [0]
        reopened.close()

    def test_rotate_snapshots_state_and_deletes_predecessors(self, tmp_path):
        root = str(tmp_path / "j")
        journal = TickJournal(root)
        journal.append_tick(0, {1: 1})
        journal.append_ack(0, "ok", t=0)
        journal.rotate({"base_t": 2, "x": [1.5]}, next_seq=1)
        journal.append_tick(1, {1: 0})
        journal.close()

        names = sorted(os.listdir(root))
        assert names == ["00000002.wal"]
        reopened = TickJournal(root)
        assert reopened.snapshot["state"] == {"base_t": 2, "x": [1.5]}
        assert reopened.snapshot["next_seq"] == 1
        assert [r["seq"] for r in reopened.records] == [1]
        assert reopened.next_seq == 2
        reopened.close()

    def test_empty_segment_file_recovers_to_fresh(self, tmp_path):
        root = str(tmp_path / "j")
        journal = TickJournal(root)
        journal.append_tick(0, {1: 1})
        path = journal._file.name
        journal.close()
        with open(path, "r+b") as handle:
            handle.truncate(0)
        reopened = TickJournal(root)
        assert reopened.segments_discarded == 1
        assert reopened.next_seq == 0
        assert reopened.records == []
        reopened.close()

    def test_delta_codec_round_trips_hard_and_soft(self):
        rng = np.random.default_rng(3)
        soft = rng.random(5)
        doc = json.loads(json.dumps(encode_delta({2: 1, 4: soft})))
        decoded = decode_delta(doc)
        assert decoded[2] == 1 and isinstance(decoded[2], int)
        assert decoded[4].tobytes() == soft.tobytes()


class TestFaultPlanCrashPoints:
    def test_crash_points_are_one_shot(self):
        plan = FaultPlan(
            crash_after_journal_append=[3],
            crash_before_ack=[5],
            torn_append={7: 12},
        )
        assert plan.take_crash_after_append(2) is False
        assert plan.take_crash_after_append(3) is True
        assert plan.take_crash_after_append(3) is False
        assert plan.take_crash_before_ack(5) is True
        assert plan.take_crash_before_ack(5) is False
        assert plan.take_torn_append(7) == 12
        assert plan.take_torn_append(7) is None

    def test_crash_point_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_after_journal_append=[-1])
        with pytest.raises(ValueError):
            FaultPlan(torn_append={0: 0})


# --------------------------------------------------------------------- #
# Streaming recovery
# --------------------------------------------------------------------- #


def _service(dbn, root, plan=None):
    return StreamingService(
        dbn,
        window=WINDOW,
        retire=RETIRE,
        workers=1,
        max_pending=4,
        durable_root=root,
        fault_plan=plan,
    )


def _drive(service, handle, schedule, start):
    """Push ticks serially; stop at an injected crash.  Returns acks."""
    acks = []
    for seq in range(start, len(schedule)):
        future = service.push_tick(handle, schedule[seq])
        deadline = time.monotonic() + 30.0
        while not future.done() and not service.crashed:
            if time.monotonic() > deadline:  # pragma: no cover
                raise TimeoutError(f"tick {seq} neither resolved nor crashed")
            time.sleep(0.002)
        if not future.done():
            break  # the worker died mid-tick, simulated SIGKILL
        response = future.result(0)
        if response.ok:
            acks.append({"seq": seq, "t": response.t, "m": response.marginals[0]})
        if service.crashed:
            break  # died after resolving (the crash-before-ack window)
    return acks


def _stream_handle(service, name="s"):
    try:
        return service._handle(name)
    except KeyError:
        return service.subscribe(name=name, query_vars=[0])


class TestStreamingRecovery:
    @pytest.mark.parametrize(
        "plan_kw, crashes",
        [
            ({}, False),
            ({"crash_after_journal_append": [3]}, True),
            ({"crash_before_ack": [3]}, True),
            ({"torn_append": {3: 12}}, True),
        ],
        ids=["clean", "after-append", "before-ack", "torn-append"],
    )
    def test_recovery_resumes_exactly(self, tmp_path, plan_kw, crashes):
        """Across every crash point, the recovered stream's answers —
        past and future — match the oracle at 1e-9, and no two acks
        share a sequence number."""
        root = str(tmp_path / "root")
        dbn = build_demo_dbn(11)
        schedule = build_schedule(11, 7)

        service = _service(dbn, root, FaultPlan(**plan_kw) if plan_kw else None)
        handle = _stream_handle(service)
        acks = _drive(service, handle, schedule, 0)
        assert service.crashed is crashes
        service.drain()

        recovered = _service(dbn, root)
        report = recovered.recovery_report
        assert report is not None and len(report.streams) == 1
        handle = _stream_handle(recovered)
        # Every previously acked tick survived the crash: it was either
        # replayed from the segment records or already folded into the
        # segment snapshot by a pre-crash rotation (seq == t here).
        stream = report.streams[0]
        survived = set(stream.applied_seqs) | set(
            range(stream.final_t - len(stream.applied_seqs))
        )
        assert {a["seq"] for a in acks} <= survived
        acks += _drive(recovered, handle, schedule, handle.next_seq)
        recovered.drain()

        seqs = [a["seq"] for a in acks]
        assert sorted(seqs) == sorted(set(seqs))  # never double-acked
        # A tick unacked at the crash is applied by replay (status
        # ``recovered``) and never handed to a client again: client acks
        # plus internal recoveries cover the schedule exactly.
        assert set(seqs) | set(stream.recovered_seqs) == set(
            range(len(schedule))
        )
        assert verify_acks(dbn, schedule, acks, atol=ATOL) == []

    def test_before_ack_crash_replays_without_reack(self, tmp_path):
        """The at-least-once window: the client saw seq 3's answer but
        its ack was never durable — recovery re-applies it internally
        (status ``recovered``) and never hands it to a client again."""
        root = str(tmp_path / "root")
        dbn = build_demo_dbn(5)
        schedule = build_schedule(5, 6)
        service = _service(dbn, root, FaultPlan(crash_before_ack=[3]))
        handle = _stream_handle(service)
        acks = _drive(service, handle, schedule, 0)
        assert [a["seq"] for a in acks] == [0, 1, 2, 3]
        service.drain()

        recovered = _service(dbn, root)
        stream = recovered.recovery_report.streams[0]
        assert stream.recovered_seqs == [3]
        assert 3 in stream.applied_seqs
        assert stream.dropped_unacked == 0
        handle = _stream_handle(recovered)
        assert handle.next_seq == 4  # seq 3 is not re-served
        # The recovered posterior is the one the client was acked.
        want = oracle_marginal(dbn, schedule, 3)
        got = handle.session.posterior(0, t=3)
        np.testing.assert_allclose(got, want, atol=ATOL, rtol=0.0)
        recovered.drain()

    def test_recovery_is_idempotent(self, tmp_path):
        """Recovering an already-recovered root replays nothing new and
        leaves the posterior untouched (duplicate replay is a no-op:
        the post-replay rotation folded the state into the snapshot)."""
        root = str(tmp_path / "root")
        dbn = build_demo_dbn(7)
        schedule = build_schedule(7, 5)
        service = _service(dbn, root, FaultPlan(crash_after_journal_append=[4]))
        handle = _stream_handle(service)
        _drive(service, handle, schedule, 0)
        service.drain()

        first = _service(dbn, root)
        assert first.recovery_report.replayed_ticks > 0
        want = first._handle("s").session.posterior(0, t=4)
        first.drain()

        second = _service(dbn, root)
        assert second.recovery_report.replayed_ticks == 0
        got = second._handle("s").session.posterior(0, t=4)
        # Restore-from-snapshot reorders float reductions vs. the first
        # recovery's replay; agreement far inside the 1e-9 contract.
        np.testing.assert_allclose(got, want, atol=1e-12, rtol=0)
        second.drain()

    def test_recovery_survives_window_rolls(self, tmp_path):
        """Enough ticks to rotate segments mid-stream: the snapshot
        chain, not the full history, carries recovery."""
        root = str(tmp_path / "root")
        dbn = build_demo_dbn(9)
        schedule = build_schedule(9, 11)
        service = _service(dbn, root, FaultPlan(crash_after_journal_append=[9]))
        handle = _stream_handle(service)
        acks = _drive(service, handle, schedule, 0)
        assert handle.window_rolls > 0  # the snapshot chain was exercised
        service.drain()

        recovered = _service(dbn, root)
        stream = recovered.recovery_report.streams[0]
        handle = _stream_handle(recovered)
        acks += _drive(recovered, handle, schedule, handle.next_seq)
        recovered.drain()
        assert {a["seq"] for a in acks} | set(stream.recovered_seqs) == set(
            range(len(schedule))
        )
        assert verify_acks(dbn, schedule, acks, atol=ATOL) == []

    def test_drain_report_counts_recovery(self, tmp_path):
        root = str(tmp_path / "root")
        dbn = build_demo_dbn(3)
        schedule = build_schedule(3, 4)
        service = _service(dbn, root, FaultPlan(crash_after_journal_append=[2]))
        handle = _stream_handle(service)
        _drive(service, handle, schedule, 0)
        service.drain()

        recovered = _service(dbn, root)
        report = recovered.drain()
        assert report.recoveries == 1
        assert report.replayed_ticks > 0
        assert "recovered" in report.format()

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50),
        ticks=st.integers(min_value=2, max_value=8),
        crash_kind=st.sampled_from(["after-append", "before-ack", "torn"]),
        crash_at=st.integers(min_value=0, max_value=7),
        keep=st.integers(min_value=1, max_value=40),
    )
    def test_any_crash_point_recovers_to_the_oracle(
        self, tmp_path_factory, seed, ticks, crash_kind, crash_at, keep
    ):
        """Property: for any schedule and any single crash point, the
        crash-and-recover run acks every tick exactly once with the
        same posteriors (1e-9) as the uninterrupted oracle."""
        crash_at = crash_at % ticks
        if crash_kind == "after-append":
            plan = FaultPlan(crash_after_journal_append=[crash_at])
        elif crash_kind == "before-ack":
            plan = FaultPlan(crash_before_ack=[crash_at])
        else:
            plan = FaultPlan(torn_append={crash_at: keep})
        root = str(
            tmp_path_factory.mktemp("crash")
            / f"{seed}-{ticks}-{crash_kind}-{crash_at}"
        )
        dbn = build_demo_dbn(seed)
        schedule = build_schedule(seed, ticks)

        service = _service(dbn, root, plan)
        handle = _stream_handle(service)
        acks = _drive(service, handle, schedule, 0)
        assert service.crashed
        service.drain()

        recovered = _service(dbn, root)
        stream = recovered.recovery_report.streams[0]
        handle = _stream_handle(recovered)
        acks += _drive(recovered, handle, schedule, handle.next_seq)
        assert not recovered.crashed
        recovered.drain()

        seqs = [a["seq"] for a in acks]
        assert sorted(seqs) == sorted(set(seqs))
        # A torn tick was never durable, so it is re-served and acked
        # normally; a durable-but-unacked tick is applied by replay and
        # never re-acked.  Either way client acks plus internal
        # recoveries cover the schedule with no double delivery.
        assert set(seqs) | set(stream.recovered_seqs) == set(range(ticks))
        assert verify_acks(dbn, schedule, acks, atol=ATOL) == []


# --------------------------------------------------------------------- #
# Model store / registry recovery
# --------------------------------------------------------------------- #


class TestRegistryRecovery:
    def _network(self, seed=21):
        from repro.bn.generation import random_network

        return random_network(
            10, cardinality=2, max_parents=2, edge_probability=0.7, seed=seed
        )

    def test_fresh_registry_adopts_durable_artifacts(self, tmp_path):
        from repro.registry import ModelRegistry

        root = str(tmp_path / "root")
        network = self._network()
        cold = ModelRegistry(durable_root=root)
        cold.register("m", network=network)
        baseline = cold.acquire("m").baseline
        cold.close()

        warm = ModelRegistry(durable_root=root)
        warm.register("m", network=network)
        assert warm.stats()["recovered_models"] == 1
        assert warm.model_recoveries[0].adopted
        # Bit-identical baseline: the warm pool rehydrates the exact
        # calibrated state the cold compile produced.
        assert warm.acquire("m").baseline == baseline
        warm.close()

    def test_corrupt_checkpoint_falls_back_cold(self, tmp_path):
        from repro.registry import ModelRegistry

        root = str(tmp_path / "root")
        network = self._network()
        cold = ModelRegistry(durable_root=root)
        cold.register("m", network=network)
        expected = cold.acquire("m").baseline
        cold.close()

        store = DurableModelStore(root)
        ckpt = os.path.join(store.dir, store.manifest()["m"]["checkpoint"])
        with open(ckpt, "r+b") as handle:
            handle.seek(100)
            handle.write(b"\x00" * 64)

        fresh = ModelRegistry(durable_root=root)
        fresh.register("m", network=network)
        assert fresh.stats()["recovered_models"] == 0
        assert not fresh.model_recoveries[0].adopted
        # Cold recompile still serves, and overwrites the bad artifact.
        assert fresh.acquire("m").baseline == expected
        fresh.close()
        healed = ModelRegistry(durable_root=root)
        healed.register("m", network=network)
        assert healed.stats()["recovered_models"] == 1
        healed.close()

    def test_store_slug_is_filesystem_safe_and_collision_proof(self, tmp_path):
        from repro.durability.store import _slug

        assert _slug("plain-id_0.9") == "plain-id_0.9"
        assert "/" not in _slug("../../etc/passwd")
        assert _slug("a/b") != _slug("a_b")
        assert _slug("x" * 200) != _slug("x" * 201)  # truncation-proof


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


class TestRecoverCli:
    def test_stream_demo_then_recover(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "root")
        assert main(
            ["stream-demo", "--streams", "1", "--ticks", "4",
             "--window", "4", "--durable-root", root]
        ) == 0
        capsys.readouterr()
        assert main(["recover", root]) == 0
        out = capsys.readouterr().out
        assert "streams recovered" in out
        assert "ticks replayed" in out

    def test_recover_empty_root(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["recover", str(tmp_path / "nothing")]) == 0
        assert "nothing durable" in capsys.readouterr().out
