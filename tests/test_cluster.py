"""Distributed-memory (cluster) baseline: partitioning and simulation."""

import numpy as np
import pytest

from repro.jt.generation import paper_tree, synthetic_tree
from repro.jt.rerooting import all_clique_costs, reroot_optimally
from repro.simcore.cluster import (
    GIGE_CLUSTER,
    ClusterPolicy,
    ClusterProfile,
    count_cut_edges,
    partition_tree,
)
from repro.simcore.policies import CollaborativePolicy
from repro.simcore.profiles import XEON
from repro.tasks.dag import build_task_graph


@pytest.fixture(scope="module")
def workload():
    tree = synthetic_tree(
        64, clique_width=12, states=2, avg_children=3, seed=99
    )
    tree, _, _ = reroot_optimally(tree)
    return tree, build_task_graph(tree)


class TestPartitioning:
    def test_covers_all_cliques(self, workload):
        tree, _ = workload
        assignment = partition_tree(tree, 4)
        assert len(assignment) == tree.num_cliques
        assert set(assignment) <= set(range(4))

    def test_single_part(self, workload):
        tree, _ = workload
        assert set(partition_tree(tree, 1)) == {0}

    def test_load_roughly_balanced(self, workload):
        tree, _ = workload
        parts = 4
        assignment = partition_tree(tree, parts)
        costs = all_clique_costs(tree)
        loads = [0.0] * parts
        for clique, part in enumerate(assignment):
            loads[part] += costs[clique]
        # Contiguity sacrifices perfect balance but no part should be
        # more than ~3x the mean.
        mean = sum(loads) / parts
        assert max(loads) < 3.5 * mean

    def test_cut_edges_are_a_minority(self, workload):
        tree, _ = workload
        assignment = partition_tree(tree, 8)
        assert count_cut_edges(tree, assignment) < tree.num_cliques // 2

    def test_invalid_parts_rejected(self, workload):
        tree, _ = workload
        with pytest.raises(ValueError):
            partition_tree(tree, 0)


class TestClusterProfile:
    def test_message_cost_has_latency_floor(self):
        assert GIGE_CLUSTER.message_seconds(0) == GIGE_CLUSTER.net_latency

    def test_message_cost_grows_with_size(self):
        small = GIGE_CLUSTER.message_seconds(10)
        big = GIGE_CLUSTER.message_seconds(10_000)
        assert big > small

    def test_compute_seconds(self):
        assert GIGE_CLUSTER.compute_seconds(2.0e9) == pytest.approx(1.0)


class TestClusterPolicy:
    def test_single_node_equals_serial_work(self, workload):
        tree, graph = workload
        result = ClusterPolicy().simulate(graph, tree, 1)
        expected = sum(
            GIGE_CLUSTER.compute_seconds(t.weight) for t in graph.tasks
        )
        assert result.makespan == pytest.approx(expected)

    def test_executes_every_task(self, workload):
        tree, graph = workload
        result = ClusterPolicy().simulate(graph, tree, 4)
        assert result.tasks_executed == graph.num_tasks

    def test_scales_but_below_shared_memory(self):
        tree, _, _ = reroot_optimally(paper_tree(1))
        graph = build_task_graph(tree)
        cluster = ClusterPolicy()
        base = cluster.simulate(graph, tree, 1).makespan
        cluster_speedup = base / cluster.simulate(graph, tree, 8).makespan
        shared = CollaborativePolicy()
        shared_base = shared.simulate(graph, XEON, 1).makespan
        shared_speedup = (
            shared_base / shared.simulate(graph, XEON, 8).makespan
        )
        assert cluster_speedup > 2.0  # distribution does help...
        # ...but communication keeps it clearly below shared memory.
        assert cluster_speedup < shared_speedup - 1.0

    def test_zero_cost_network_removes_the_gap(self, workload):
        tree, graph = workload
        free_net = ClusterProfile(
            name="infinite network",
            flops_per_second=GIGE_CLUSTER.flops_per_second,
            net_latency=0.0,
            net_bandwidth_bytes=float("inf"),
        )
        slow = ClusterPolicy(GIGE_CLUSTER).simulate(graph, tree, 8)
        fast = ClusterPolicy(free_net).simulate(graph, tree, 8)
        assert fast.makespan < slow.makespan

    def test_explicit_assignment_accepted(self, workload):
        tree, graph = workload
        assignment = [0] * tree.num_cliques
        result = ClusterPolicy().simulate(graph, tree, 2, assignment)
        # Everything on node 0: serial makespan, node 1 idle.
        assert result.compute_time[1] == 0.0

    def test_bad_assignment_rejected(self, workload):
        tree, graph = workload
        with pytest.raises(ValueError, match="beyond"):
            ClusterPolicy().simulate(
                graph, tree, 2, [5] * tree.num_cliques
            )
        with pytest.raises(ValueError, match="cover"):
            ClusterPolicy().simulate(graph, tree, 2, [0])

    def test_speedup_curve_helper(self, workload):
        tree, graph = workload
        curve = ClusterPolicy().speedup_curve(graph, tree, [1, 2, 4])
        assert curve[0] == pytest.approx(1.0)
        assert curve[-1] > 1.0
