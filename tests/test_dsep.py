"""d-separation: hand-built structures plus numeric independence checks."""

import numpy as np
import pytest

from repro.bn.dsep import d_separated, markov_blanket, reachable
from repro.bn.generation import random_network
from repro.bn.network import BayesianNetwork
from repro.potential.primitives import marginalize


def _structure(edges, n):
    bn = BayesianNetwork([2] * n)
    for a, b in edges:
        bn.add_edge(a, b)
    return bn


class TestCanonicalStructures:
    def test_chain_blocked_by_middle(self):
        bn = _structure([(0, 1), (1, 2)], 3)
        assert not d_separated(bn, {0}, {2})
        assert d_separated(bn, {0}, {2}, {1})

    def test_fork_blocked_by_root(self):
        bn = _structure([(1, 0), (1, 2)], 3)
        assert not d_separated(bn, {0}, {2})
        assert d_separated(bn, {0}, {2}, {1})

    def test_collider_opens_when_observed(self):
        bn = _structure([(0, 1), (2, 1)], 3)
        assert d_separated(bn, {0}, {2})
        assert not d_separated(bn, {0}, {2}, {1})

    def test_collider_opens_via_descendant(self):
        bn = _structure([(0, 1), (2, 1), (1, 3)], 4)
        assert d_separated(bn, {0}, {2})
        assert not d_separated(bn, {0}, {2}, {3})

    def test_disconnected_variables_are_separated(self):
        bn = _structure([], 2)
        assert d_separated(bn, {0}, {1})

    def test_overlapping_sets_not_separated(self):
        bn = _structure([(0, 1)], 2)
        assert not d_separated(bn, {0}, {0})

    def test_observed_query_variable_rejected(self):
        bn = _structure([(0, 1)], 2)
        with pytest.raises(ValueError):
            d_separated(bn, {0}, {1}, {0})

    def test_reachable_excludes_observed(self):
        bn = _structure([(0, 1), (1, 2)], 3)
        assert 1 not in reachable(bn, 0, {1})

    def test_reachable_source_observed_rejected(self):
        bn = _structure([(0, 1)], 2)
        with pytest.raises(ValueError):
            reachable(bn, 0, {0})


class TestSoundness:
    """d-separation must imply numeric conditional independence."""

    @pytest.mark.parametrize("seed", range(5))
    def test_dsep_implies_independence(self, seed):
        bn = random_network(
            7, cardinality=2, max_parents=2, edge_probability=0.7, seed=seed
        )
        joint = bn.joint_table()
        rng = np.random.default_rng(seed)
        for _ in range(10):
            x, y = rng.choice(7, size=2, replace=False)
            others = [v for v in range(7) if v not in (x, y)]
            z = [
                v for v in others if rng.random() < 0.4
            ]
            if not d_separated(bn, {int(x)}, {int(y)}, set(z)):
                continue
            # Check P(x, y | z) = P(x | z) P(y | z) for every z config.
            scope = [int(x), int(y)] + z
            marg = marginalize(joint, scope)
            values = marg.aligned_to(scope).values
            flat_z = values.reshape(2, 2, -1)
            for k in range(flat_z.shape[2]):
                block = flat_z[:, :, k]
                total = block.sum()
                if total < 1e-12:
                    continue
                p = block / total
                outer = p.sum(axis=1, keepdims=True) @ p.sum(
                    axis=0, keepdims=True
                )
                assert np.allclose(p, outer, atol=1e-9)


class TestMarkovBlanket:
    def test_blanket_contents(self):
        bn = _structure([(0, 2), (1, 2), (2, 3), (4, 3)], 5)
        # Blanket of 2: parents {0, 1}, child {3}, co-parent {4}.
        assert markov_blanket(bn, 2) == {0, 1, 3, 4}

    def test_blanket_dseparates_rest(self):
        bn = random_network(
            8, max_parents=2, edge_probability=0.8, seed=3
        )
        for v in range(8):
            blanket = markov_blanket(bn, v)
            rest = set(range(8)) - blanket - {v}
            if rest:
                assert d_separated(bn, {v}, rest, blanket)
