"""Most-probable-explanation queries vs brute-force enumeration."""

import numpy as np
import pytest

from repro.bn.generation import chain_network, random_network
from repro.inference.engine import InferenceEngine
from repro.inference.mpe import max_propagate, mpe_bruteforce
from repro.jt.build import junction_tree_from_network
from repro.potential.primitives import max_marginalize
from repro.potential.table import PotentialTable


class TestMaxMarginalize:
    def test_takes_max_over_dropped_axes(self):
        t = PotentialTable([0, 1], [2, 2], np.array([[1, 5], [3, 2]]))
        m = max_marginalize(t, [0])
        assert np.array_equal(m.values, np.array([5, 3]))

    def test_full_scope_is_identity(self):
        rng = np.random.default_rng(0)
        t = PotentialTable.random([0, 1], [2, 3], rng)
        assert np.allclose(max_marginalize(t, [0, 1]).values, t.values)

    def test_empty_scope_gives_global_max(self):
        t = PotentialTable([0, 1], [2, 2], np.array([[1, 5], [3, 2]]))
        m = max_marginalize(t, [])
        assert float(m.values) == 5.0

    def test_unknown_variable_rejected(self):
        t = PotentialTable([0], [2])
        with pytest.raises(ValueError, match="unknown"):
            max_marginalize(t, [9])

    def test_respects_target_order(self):
        rng = np.random.default_rng(1)
        t = PotentialTable.random([0, 1, 2], [2, 3, 2], rng)
        a = max_marginalize(t, [2, 1])
        b = max_marginalize(t, [1, 2])
        assert np.allclose(a.values, np.transpose(b.values))


class TestMaxPropagate:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bruteforce_probability(self, seed):
        bn = random_network(
            8, cardinality=2, max_parents=3, edge_probability=0.8, seed=seed
        )
        jt = junction_tree_from_network(bn)
        assignment, prob = max_propagate(jt)
        _, expected_prob = mpe_bruteforce(bn.joint_table())
        assert np.isclose(prob, expected_prob)

    @pytest.mark.parametrize("seed", range(6))
    def test_assignment_attains_reported_probability(self, seed):
        bn = random_network(
            8, cardinality=2, max_parents=3, edge_probability=0.8, seed=seed
        )
        jt = junction_tree_from_network(bn)
        assignment, prob = max_propagate(jt)
        joint = bn.joint_table()
        value = joint.values[
            tuple(assignment[v] for v in joint.variables)
        ]
        assert np.isclose(value, prob)

    def test_with_evidence(self):
        bn = random_network(
            7, cardinality=2, max_parents=2, edge_probability=0.8, seed=10
        )
        jt = junction_tree_from_network(bn)
        evidence = {0: 1, 3: 0}
        assignment, prob = max_propagate(jt, evidence)
        _, expected_prob = mpe_bruteforce(bn.joint_table(), evidence)
        assert np.isclose(prob, expected_prob)
        assert assignment[0] == 1
        assert assignment[3] == 0

    def test_multistate_variables(self):
        bn = random_network(
            6, cardinality=3, max_parents=2, edge_probability=0.8, seed=11
        )
        jt = junction_tree_from_network(bn)
        assignment, prob = max_propagate(jt)
        brute_assignment, expected = mpe_bruteforce(bn.joint_table())
        assert np.isclose(prob, expected)
        joint = bn.joint_table()
        value = joint.values[tuple(assignment[v] for v in joint.variables)]
        assert np.isclose(value, expected)

    def test_covers_all_variables(self):
        bn = random_network(
            9, max_parents=3, edge_probability=0.7, seed=12
        )
        jt = junction_tree_from_network(bn)
        assignment, _ = max_propagate(jt)
        assert set(assignment) == set(range(9))

    def test_chain_network_viterbi(self):
        bn = chain_network(10, seed=13)
        jt = junction_tree_from_network(bn)
        assignment, prob = max_propagate(jt, {0: 1})
        _, expected = mpe_bruteforce(bn.joint_table(), {0: 1})
        assert np.isclose(prob, expected)


class TestEngineMpe:
    def test_engine_mpe_matches_bruteforce(self):
        bn = random_network(
            8, max_parents=2, edge_probability=0.8, seed=14
        )
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({1: 0})
        assignment, prob = engine.mpe()
        _, expected = mpe_bruteforce(bn.joint_table(), {1: 0})
        assert np.isclose(prob, expected)
        assert assignment[1] == 0

    def test_engine_mpe_validates_evidence(self):
        bn = random_network(6, seed=15)
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({0: 9})
        with pytest.raises(ValueError):
            engine.mpe()
