"""Unit tests for :class:`repro.potential.table.PotentialTable`."""

import numpy as np
import pytest

from repro.potential.table import PotentialTable, common_scope


class TestConstruction:
    def test_default_values_are_ones(self):
        t = PotentialTable([0, 1], [2, 3])
        assert t.values.shape == (2, 3)
        assert np.all(t.values == 1.0)

    def test_flat_values_are_reshaped(self):
        t = PotentialTable([0, 1], [2, 2], np.arange(4))
        assert t.values.shape == (2, 2)
        assert t.values[1, 0] == 2

    def test_scalar_scope(self):
        t = PotentialTable([], [], np.array(3.5))
        assert t.size == 1
        assert t.width == 0
        assert float(t.values) == 3.5

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PotentialTable([1, 1], [2, 2])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cardinalities"):
            PotentialTable([0, 1], [2])

    def test_bad_cardinality_rejected(self):
        with pytest.raises(ValueError, match="cardinalities"):
            PotentialTable([0], [0])

    def test_wrong_value_count_rejected(self):
        with pytest.raises(ValueError, match="entries"):
            PotentialTable([0], [2], np.arange(3))

    def test_size_and_width(self):
        t = PotentialTable([3, 5, 9], [2, 3, 4])
        assert t.size == 24
        assert t.width == 3

    def test_card_of(self):
        t = PotentialTable([3, 5], [2, 3])
        assert t.card_of(5) == 3
        with pytest.raises(ValueError):
            t.card_of(99)

    def test_scope_cards(self):
        t = PotentialTable([3, 5], [2, 3])
        assert t.scope_cards() == {3: 2, 5: 3}

    def test_repr_mentions_scope(self):
        assert "3:2" in repr(PotentialTable([3], [2]))


class TestAlignment:
    def test_aligned_to_permutes_axes(self):
        values = np.arange(6).reshape(2, 3)
        t = PotentialTable([0, 1], [2, 3], values)
        a = t.aligned_to([1, 0])
        assert a.variables == (1, 0)
        assert a.cardinalities == (3, 2)
        assert np.array_equal(a.values, values.T)

    def test_aligned_to_same_order_returns_self(self):
        t = PotentialTable([0, 1], [2, 2])
        assert t.aligned_to([0, 1]) is t

    def test_aligned_to_rejects_different_scope(self):
        t = PotentialTable([0, 1], [2, 2])
        with pytest.raises(ValueError, match="different variable sets"):
            t.aligned_to([0, 2])

    def test_double_alignment_roundtrip(self):
        rng = np.random.default_rng(0)
        t = PotentialTable.random([0, 1, 2], [2, 3, 4], rng)
        back = t.aligned_to([2, 0, 1]).aligned_to([0, 1, 2])
        assert np.allclose(back.values, t.values)


class TestReduce:
    def test_reduce_zeroes_inconsistent_entries(self):
        t = PotentialTable([0, 1], [2, 2], np.array([[1, 2], [3, 4]]))
        r = t.reduce({0: 1})
        assert np.array_equal(r.values, np.array([[0, 0], [3, 4]]))

    def test_reduce_keeps_scope(self):
        t = PotentialTable([0, 1], [2, 2])
        r = t.reduce({1: 0})
        assert r.variables == (0, 1)
        assert r.cardinalities == (2, 2)

    def test_reduce_ignores_foreign_variables(self):
        t = PotentialTable([0], [2], np.array([1.0, 2.0]))
        r = t.reduce({5: 1})
        assert np.array_equal(r.values, t.values)

    def test_reduce_rejects_out_of_range_state(self):
        t = PotentialTable([0], [2])
        with pytest.raises(ValueError, match="out of range"):
            t.reduce({0: 2})

    def test_reduce_multiple_variables(self):
        t = PotentialTable([0, 1], [2, 2], np.ones((2, 2)))
        r = t.reduce({0: 0, 1: 1})
        expected = np.zeros((2, 2))
        expected[0, 1] = 1.0
        assert np.array_equal(r.values, expected)

    def test_reduce_does_not_mutate_original(self):
        t = PotentialTable([0], [2], np.array([1.0, 2.0]))
        t.reduce({0: 0})
        assert np.array_equal(t.values, np.array([1.0, 2.0]))


class TestArithmetic:
    def test_normalize_sums_to_one(self):
        t = PotentialTable([0], [4], np.array([1.0, 1.0, 1.0, 1.0]))
        assert np.allclose(t.normalize().values, 0.25)

    def test_normalize_zero_table_is_noop(self):
        t = PotentialTable([0], [2], np.zeros(2))
        n = t.normalize()
        assert np.array_equal(n.values, np.zeros(2))

    def test_total(self):
        t = PotentialTable([0, 1], [2, 2], np.arange(4))
        assert t.total() == 6.0

    def test_allclose_cross_order(self):
        rng = np.random.default_rng(1)
        t = PotentialTable.random([0, 1], [2, 3], rng)
        assert t.allclose(t.aligned_to([1, 0]))

    def test_allclose_different_scope_false(self):
        a = PotentialTable([0], [2])
        b = PotentialTable([1], [2])
        assert not a.allclose(b)

    def test_allclose_different_values_false(self):
        a = PotentialTable([0], [2], np.array([1.0, 2.0]))
        b = PotentialTable([0], [2], np.array([1.0, 2.5]))
        assert not a.allclose(b)


class TestCopyAndRandom:
    def test_copy_is_deep(self):
        t = PotentialTable([0], [2], np.array([1.0, 2.0]))
        c = t.copy()
        c.values[0] = 99
        assert t.values[0] == 1.0

    def test_random_in_bounds(self, rng):
        t = PotentialTable.random([0, 1], [3, 3], rng, low=0.5, high=0.9)
        assert np.all(t.values >= 0.5)
        assert np.all(t.values < 0.9)

    def test_ones_constructor(self):
        t = PotentialTable.ones([4], [3])
        assert np.all(t.values == 1.0)


class TestCommonScope:
    def test_union_order_first_seen(self):
        a = PotentialTable([0, 2], [2, 4])
        b = PotentialTable([2, 1], [4, 3])
        variables, cards = common_scope([a, b])
        assert variables == (0, 2, 1)
        assert cards == (2, 4, 3)

    def test_inconsistent_cardinality_rejected(self):
        a = PotentialTable([0], [2])
        b = PotentialTable([0], [3])
        with pytest.raises(ValueError, match="inconsistent"):
            common_scope([a, b])

    def test_empty_input(self):
        assert common_scope([]) == ((), ())
