"""Unit tests for the four node-level primitives."""

import numpy as np
import pytest

from repro.potential.primitives import (
    PrimitiveKind,
    divide,
    extend,
    marginalize,
    multiply,
    primitive_flops,
)
from repro.potential.table import PotentialTable


def _random(variables, cards, seed=0):
    return PotentialTable.random(
        variables, cards, np.random.default_rng(seed)
    )


class TestMarginalize:
    def test_sums_out_dropped_variables(self):
        t = PotentialTable([0, 1], [2, 2], np.array([[1, 2], [3, 4]]))
        m = marginalize(t, [0])
        assert m.variables == (0,)
        assert np.array_equal(m.values, np.array([3, 7]))

    def test_respects_target_order(self):
        t = _random([0, 1, 2], [2, 3, 4])
        a = marginalize(t, [2, 0])
        b = marginalize(t, [0, 2])
        assert a.variables == (2, 0)
        assert np.allclose(a.values, b.values.T)

    def test_marginalize_to_full_scope_is_identity(self):
        t = _random([0, 1], [2, 3])
        m = marginalize(t, [0, 1])
        assert np.allclose(m.values, t.values)

    def test_marginalize_to_empty_scope_gives_total(self):
        t = _random([0, 1], [2, 3])
        m = marginalize(t, [])
        assert m.width == 0
        assert np.isclose(float(m.values), t.total())

    def test_unknown_variable_rejected(self):
        t = _random([0], [2])
        with pytest.raises(ValueError, match="unknown variables"):
            marginalize(t, [5])

    def test_preserves_total_mass(self):
        t = _random([0, 1, 2], [2, 2, 3], seed=3)
        assert np.isclose(marginalize(t, [1]).total(), t.total())


class TestExtend:
    def test_broadcasts_new_variables(self):
        t = PotentialTable([0], [2], np.array([1.0, 2.0]))
        e = extend(t, [0, 1], [2, 3])
        assert e.cardinalities == (2, 3)
        assert np.array_equal(e.values, np.array([[1, 1, 1], [2, 2, 2]]))

    def test_extension_order_independent_of_source(self):
        t = _random([0, 1], [2, 3])
        e = extend(t, [1, 2, 0], [3, 4, 2])
        # Marginalizing back must recover the original (up to scale 4).
        back = marginalize(e, [0, 1])
        assert np.allclose(back.values, t.values * 4)

    def test_extend_to_same_scope_is_identity(self):
        t = _random([0, 1], [2, 3])
        e = extend(t, [0, 1], [2, 3])
        assert np.allclose(e.values, t.values)

    def test_missing_source_variable_rejected(self):
        t = _random([0, 1], [2, 2])
        with pytest.raises(ValueError, match="missing variables"):
            extend(t, [0, 2], [2, 2])

    def test_cardinality_mismatch_rejected(self):
        t = _random([0], [2])
        with pytest.raises(ValueError, match="cardinality mismatch"):
            extend(t, [0, 1], [3, 2])

    def test_extend_scalar(self):
        t = PotentialTable([], [], np.array(2.0))
        e = extend(t, [7], [3])
        assert np.array_equal(e.values, np.array([2.0, 2.0, 2.0]))


class TestMultiply:
    def test_elementwise_on_same_scope(self):
        a = PotentialTable([0], [2], np.array([2.0, 3.0]))
        b = PotentialTable([0], [2], np.array([5.0, 7.0]))
        assert np.array_equal(multiply(a, b).values, np.array([10.0, 21.0]))

    def test_subset_scope_is_extended(self):
        a = PotentialTable([0, 1], [2, 2], np.ones((2, 2)))
        b = PotentialTable([1], [2], np.array([3.0, 4.0]))
        m = multiply(a, b)
        assert np.array_equal(m.values, np.array([[3, 4], [3, 4]]))

    def test_misaligned_axes_are_aligned(self):
        a = _random([0, 1], [2, 3], seed=1)
        b = _random([1, 0], [3, 2], seed=2)
        m = multiply(a, b)
        assert np.allclose(m.values, a.values * b.values.T)

    def test_superset_scope_rejected(self):
        a = PotentialTable([0], [2])
        b = PotentialTable([0, 1], [2, 2])
        with pytest.raises(ValueError, match="not a subset"):
            multiply(a, b)

    def test_result_keeps_a_scope_order(self):
        a = _random([3, 1], [2, 2])
        b = _random([1], [2])
        assert multiply(a, b).variables == (3, 1)


class TestDivide:
    def test_elementwise_ratio(self):
        a = PotentialTable([0], [2], np.array([6.0, 8.0]))
        b = PotentialTable([0], [2], np.array([2.0, 4.0]))
        assert np.array_equal(divide(a, b).values, np.array([3.0, 2.0]))

    def test_zero_over_zero_is_zero(self):
        a = PotentialTable([0], [2], np.array([0.0, 8.0]))
        b = PotentialTable([0], [2], np.array([0.0, 4.0]))
        assert np.array_equal(divide(a, b).values, np.array([0.0, 2.0]))

    def test_nonzero_over_zero_is_zero_by_convention(self):
        # Cannot happen in valid propagation, but must not produce inf/nan.
        a = PotentialTable([0], [2], np.array([3.0, 8.0]))
        b = PotentialTable([0], [2], np.array([0.0, 4.0]))
        out = divide(a, b).values
        assert np.all(np.isfinite(out))
        assert out[0] == 0.0

    def test_scope_mismatch_rejected(self):
        a = PotentialTable([0], [2])
        b = PotentialTable([1], [2])
        with pytest.raises(ValueError, match="scopes differ"):
            divide(a, b)

    def test_axis_order_aligned(self):
        a = _random([0, 1], [2, 3], seed=4)
        b = _random([1, 0], [3, 2], seed=5)
        d = divide(a, b)
        assert np.allclose(d.values, a.values / b.values.T)

    def test_divide_multiply_roundtrip(self):
        a = _random([0, 1], [2, 3], seed=6)
        b = _random([0, 1], [2, 3], seed=7)
        round_trip = multiply(divide(a, b), b)
        assert np.allclose(round_trip.values, a.values)


class TestEq1Propagation:
    """End-to-end Eq. 1 check on a hand-built two-clique tree."""

    def test_message_passing_matches_direct_computation(self):
        rng = np.random.default_rng(9)
        psi_y = PotentialTable.random([0, 1], [2, 2], rng)  # clique Y
        psi_x = PotentialTable.random([1, 2], [2, 2], rng)  # clique X
        sep_old = PotentialTable.ones([1], [2])
        sep_new = marginalize(psi_y, [1])
        ratio = divide(sep_new, sep_old)
        psi_x_new = multiply(psi_x, extend(ratio, [1, 2], [2, 2]))
        # Direct: joint = psi_x * psi_y, marginalized onto {1, 2}.
        joint = multiply(
            extend(psi_x, [0, 1, 2], [2, 2, 2]),
            extend(psi_y, [0, 1, 2], [2, 2, 2]),
        )
        direct = marginalize(joint, [1, 2])
        assert np.allclose(psi_x_new.values, direct.values)


class TestPrimitiveFlops:
    def test_marginalize_counts_input(self):
        assert primitive_flops(PrimitiveKind.MARGINALIZE, 100, 10) == 100

    def test_extend_counts_output(self):
        assert primitive_flops(PrimitiveKind.EXTEND, 10, 100) == 100

    def test_multiply_divide_count_output(self):
        assert primitive_flops(PrimitiveKind.MULTIPLY, 100, 100) == 100
        assert primitive_flops(PrimitiveKind.DIVIDE, 50, 50) == 50

    def test_combine_counts_output(self):
        assert primitive_flops(PrimitiveKind.COMBINE, 0, 64) == 64

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            primitive_flops("nonsense", 1, 1)
