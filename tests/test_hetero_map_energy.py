"""Cell-like heterogeneous policy, marginal MAP, and energy accounting."""

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.inference.map_query import marginal_map, marginal_map_bruteforce
from repro.jt.build import junction_tree_from_network
from repro.jt.generation import synthetic_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore.hetero import CELL_BE, CellPolicy, HeteroSpec
from repro.simcore.policies import CentralizedPolicy, CollaborativePolicy
from repro.simcore.profiles import XEON
from repro.tasks.dag import build_task_graph


@pytest.fixture(scope="module")
def graph():
    tree = synthetic_tree(
        48, clique_width=12, states=2, avg_children=3, seed=123
    )
    tree, _, _ = reroot_optimally(tree)
    return build_task_graph(tree)


class TestCellPolicy:
    def test_fast_workers_beat_homogeneous_centralized(self, graph):
        """Related work in context: centralized scheduling pays off on a
        Cell-like chip (fast workers, cheap dispatch) even though it loses
        on a homogeneous 8-core (Section 3's argument)."""
        cell = CellPolicy(CELL_BE).simulate(graph, XEON)
        centralized = CentralizedPolicy().simulate(graph, XEON, 8)
        assert cell.makespan < centralized.makespan

    def test_collaborative_still_wins_on_homogeneous(self, graph):
        slow_workers = HeteroSpec(
            worker_count=7, worker_speedup=1.0, dispatch_seconds=40e-6
        )
        hetero = CellPolicy(slow_workers).simulate(graph, XEON)
        collaborative = CollaborativePolicy().simulate(graph, XEON, 8)
        assert collaborative.makespan < hetero.makespan

    def test_core_accounting_includes_scheduler(self, graph):
        result = CellPolicy(CELL_BE).simulate(graph, XEON)
        assert result.num_cores == 9

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            HeteroSpec(worker_count=0, worker_speedup=1.0, dispatch_seconds=0)
        with pytest.raises(ValueError):
            HeteroSpec(worker_count=2, worker_speedup=0.0, dispatch_seconds=0)
        with pytest.raises(ValueError):
            HeteroSpec(worker_count=2, worker_speedup=1.0, dispatch_seconds=-1)


class TestMarginalMap:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bruteforce(self, seed):
        bn = random_network(
            8, max_parents=2, edge_probability=0.8, seed=seed
        )
        jt = junction_tree_from_network(bn)
        assignment, score = marginal_map(jt, [0, 4])
        brute_assignment, brute_score = marginal_map_bruteforce(
            bn.joint_table(), [0, 4]
        )
        assert np.isclose(score, brute_score)
        assert assignment == brute_assignment or np.isclose(
            score, brute_score
        )

    def test_with_evidence(self):
        bn = random_network(7, max_parents=2, edge_probability=0.8, seed=9)
        jt = junction_tree_from_network(bn)
        evidence = {1: 1}
        assignment, score = marginal_map(jt, [3, 5], evidence)
        _, expected = marginal_map_bruteforce(
            bn.joint_table(), [3, 5], evidence
        )
        assert np.isclose(score, expected)
        assert set(assignment) == {3, 5}

    def test_differs_from_mpe_restriction_in_general(self):
        # Marginal MAP is NOT simply the MPE restricted to the MAP set;
        # check our implementation agrees with the sum-then-max oracle
        # even when the two disagree (find such a case among seeds).
        from repro.inference.mpe import max_propagate

        for seed in range(30):
            bn = random_network(
                6, max_parents=2, edge_probability=0.8, seed=200 + seed
            )
            jt = junction_tree_from_network(bn)
            mm, _ = marginal_map(jt, [0, 2])
            mpe, _ = max_propagate(jt)
            if (mm[0], mm[2]) != (mpe[0], mpe[2]):
                return  # found a separating example; implementations differ
        pytest.skip("no separating example found in seed range")

    def test_validation(self):
        bn = random_network(5, seed=0)
        jt = junction_tree_from_network(bn)
        with pytest.raises(ValueError):
            marginal_map(jt, [])
        with pytest.raises(ValueError):
            marginal_map(jt, [0, 0])
        with pytest.raises(ValueError):
            marginal_map(jt, [0], {0: 1})


class TestEnergy:
    def test_energy_nonnegative_and_scales(self, graph):
        result = CollaborativePolicy().simulate(graph, XEON, 4)
        low = result.energy_joules(active_watts=10, idle_watts=2)
        high = result.energy_joules(active_watts=20, idle_watts=2)
        assert 0 < low < high

    def test_idle_cores_draw_idle_power(self, graph):
        result = CollaborativePolicy().simulate(graph, XEON, 8)
        zero_idle = result.energy_joules(active_watts=10, idle_watts=0)
        with_idle = result.energy_joules(active_watts=10, idle_watts=5)
        assert with_idle > zero_idle

    def test_edp_consistent(self, graph):
        result = CollaborativePolicy().simulate(graph, XEON, 4)
        assert result.energy_delay_product() == pytest.approx(
            result.energy_joules() * result.makespan
        )

    def test_negative_power_rejected(self, graph):
        result = CollaborativePolicy().simulate(graph, XEON, 2)
        with pytest.raises(ValueError):
            result.energy_joules(active_watts=-1)

    def test_parallel_saves_energy_via_idle_reduction(self, graph):
        """More cores finish sooner: busy energy is ~constant, idle
        energy shrinks with the makespan tail, so EDP improves."""
        serial = CollaborativePolicy().simulate(graph, XEON, 1)
        parallel = CollaborativePolicy().simulate(graph, XEON, 8)
        assert (
            parallel.energy_delay_product()
            < serial.energy_delay_product()
        )
