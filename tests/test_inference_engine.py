"""End-to-end tests for the InferenceEngine public API."""

import numpy as np
import pytest

from repro.bn.generation import chain_network, random_network
from repro.inference.engine import InferenceEngine
from repro.inference.evidence import Evidence
from repro.jt.generation import synthetic_tree
from repro.sched.collaborative import CollaborativeExecutor


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    def test_prior_marginals(self, seed):
        bn = random_network(
            9, cardinality=2, max_parents=3, edge_probability=0.8, seed=seed
        )
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        for v in range(bn.num_variables):
            assert np.allclose(
                engine.marginal(v), bn.marginal_bruteforce(v)
            ), f"seed {seed} variable {v}"

    @pytest.mark.parametrize("seed", range(5))
    def test_posterior_marginals(self, seed):
        bn = random_network(
            9, cardinality=2, max_parents=3, edge_probability=0.8, seed=seed
        )
        evidence = {1: 1, 5: 0}
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence(evidence)
        engine.propagate()
        for v in range(bn.num_variables):
            if v in evidence:
                continue
            assert np.allclose(
                engine.marginal(v), bn.marginal_bruteforce(v, evidence)
            )

    def test_evidence_variable_marginal_is_point_mass(self):
        bn = random_network(8, max_parents=2, edge_probability=0.8, seed=3)
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({2: 1})
        engine.propagate()
        m = engine.marginal(2)
        assert np.allclose(m, [0.0, 1.0])

    def test_multistate_network(self):
        bn = random_network(
            7, cardinality=3, max_parents=2, edge_probability=0.8, seed=4
        )
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({0: 2})
        engine.propagate()
        for v in range(1, bn.num_variables):
            assert np.allclose(
                engine.marginal(v), bn.marginal_bruteforce(v, {0: 2})
            )

    def test_likelihood_matches_bruteforce(self):
        bn = random_network(8, max_parents=3, edge_probability=0.8, seed=5)
        evidence = {0: 1, 3: 0}
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence(evidence)
        engine.propagate()
        joint = bn.joint_table().reduce(evidence)
        assert np.isclose(engine.likelihood(), joint.total())

    def test_chain_network_forward_filtering(self):
        bn = chain_network(12, seed=6)
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({0: 1})
        engine.propagate()
        assert np.allclose(
            engine.marginal(11), bn.marginal_bruteforce(11, {0: 1})
        )


class TestRerootingIntegration:
    def test_reroot_changes_nothing_numerically(self):
        bn = random_network(10, max_parents=3, edge_probability=0.8, seed=7)
        with_r = InferenceEngine.from_network(bn, reroot=True)
        without = InferenceEngine.from_network(bn, reroot=False)
        with_r.set_evidence({2: 0})
        without.set_evidence({2: 0})
        with_r.propagate()
        without.propagate()
        for v in range(bn.num_variables):
            assert np.allclose(with_r.marginal(v), without.marginal(v))

    def test_reroot_never_increases_critical_path(self):
        bn = random_network(12, max_parents=3, edge_probability=0.7, seed=8)
        with_r = InferenceEngine.from_network(bn, reroot=True)
        without = InferenceEngine.from_network(bn, reroot=False)
        assert with_r.critical_path_weight <= without.critical_path_weight + 1e-9


class TestEngineApi:
    def test_requires_potentials(self):
        bare = synthetic_tree(5, clique_width=3, seed=0)
        with pytest.raises(ValueError, match="potentials"):
            InferenceEngine(bare)

    def test_marginal_before_propagate_raises(self):
        bn = random_network(6, seed=9)
        engine = InferenceEngine.from_network(bn)
        with pytest.raises(RuntimeError, match="propagate"):
            engine.marginal(0)

    def test_setting_evidence_invalidates_results(self):
        # Changing the findings after propagate() must never serve the old
        # posterior: the engine transparently repropagates on query.
        bn = random_network(6, max_parents=2, edge_probability=0.8, seed=10)
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        engine.observe(0, 1)
        assert np.allclose(
            engine.marginal(1), bn.marginal_bruteforce(1, {0: 1}), atol=1e-12
        )

    def test_observe_chaining(self):
        bn = random_network(6, max_parents=2, edge_probability=0.8, seed=11)
        engine = InferenceEngine.from_network(bn)
        engine.observe(0, 1).observe(2, 0)
        engine.propagate()
        assert np.allclose(
            engine.marginal(4), bn.marginal_bruteforce(4, {0: 1, 2: 0})
        )

    def test_evidence_object_accepted(self):
        bn = random_network(6, max_parents=2, edge_probability=0.8, seed=12)
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence(Evidence({1: 0}))
        engine.propagate()
        assert np.allclose(
            engine.marginal(3), bn.marginal_bruteforce(3, {1: 0})
        )

    def test_invalid_evidence_rejected_at_propagate(self):
        bn = random_network(6, seed=13)
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({0: 5})
        with pytest.raises(ValueError, match="out of range"):
            engine.propagate()

    def test_unknown_evidence_variable_rejected(self):
        bn = random_network(6, seed=14)
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({99: 0})
        with pytest.raises(ValueError, match="does not exist"):
            engine.propagate()

    def test_parallel_executor_through_engine(self):
        bn = random_network(9, max_parents=3, edge_probability=0.8, seed=15)
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({1: 1})
        engine.propagate(
            CollaborativeExecutor(num_threads=4, partition_threshold=8)
        )
        assert np.allclose(
            engine.marginal(5), bn.marginal_bruteforce(5, {1: 1})
        )
        assert engine.last_stats.num_threads == 4

    def test_clique_marginal_through_engine(self):
        bn = random_network(8, max_parents=2, edge_probability=0.8, seed=16)
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        cm = engine.clique_marginal(0)
        assert np.isclose(cm.total(), 1.0)

    def test_repr(self):
        bn = random_network(6, seed=17)
        engine = InferenceEngine.from_network(bn)
        assert "InferenceEngine" in repr(engine)

    def test_synthetic_tree_engine(self):
        tree = synthetic_tree(14, clique_width=3, seed=18)
        tree.initialize_potentials(np.random.default_rng(18))
        engine = InferenceEngine(tree)
        engine.propagate()
        var = tree.cliques[2].variables[0]
        m = engine.marginal(var)
        assert np.isclose(m.sum(), 1.0)
