"""Tests for SimGraph and Partition-module expansion."""

import numpy as np
import pytest

from repro.jt.generation import synthetic_tree
from repro.potential.primitives import PrimitiveKind
from repro.simcore.simgraph import SimGraph, build_sim_graph
from repro.tasks.dag import build_task_graph
from repro.tasks.task import COLLECT, TaskGraph


def _small_graph():
    g = TaskGraph()
    a = g.add_task(PrimitiveKind.MARGINALIZE, COLLECT, (0, 1), 0, 64, 8)
    b = g.add_task(PrimitiveKind.DIVIDE, COLLECT, (0, 1), 0, 8, 8, deps=[a])
    c = g.add_task(PrimitiveKind.EXTEND, COLLECT, (0, 1), 0, 8, 64, deps=[b])
    d = g.add_task(
        PrimitiveKind.MULTIPLY, COLLECT, (0, 1), 0, 64, 64, deps=[c]
    )
    return g


class TestSimGraph:
    def test_add_and_adjacency(self):
        sim = SimGraph()
        a = sim.add(1.0)
        b = sim.add(2.0, [a])
        assert sim.succs[a] == [b]
        assert sim.deps[b] == [a]
        assert sim.roots() == [a]

    def test_total_work_and_critical_path(self):
        sim = SimGraph()
        a = sim.add(3.0)
        b = sim.add(4.0)
        c = sim.add(5.0, [a, b])
        assert sim.total_work() == 12.0
        assert sim.critical_path() == 9.0

    def test_levels(self):
        sim = SimGraph()
        a = sim.add(1.0)
        b = sim.add(1.0)
        c = sim.add(1.0, [a])
        levels = sim.levels()
        assert sorted(levels[0]) == [a, b]
        assert levels[1] == [c]

    def test_topological_order(self):
        sim = SimGraph()
        a = sim.add(1.0)
        b = sim.add(1.0, [a])
        order = sim.topological_order()
        assert order.index(a) < order.index(b)

    def test_empty_graph(self):
        sim = SimGraph()
        assert sim.levels() == []
        assert sim.critical_path() == 0.0


class TestBuildSimGraph:
    def test_no_threshold_is_one_to_one(self):
        g = _small_graph()
        sim = build_sim_graph(g)
        assert sim.num_nodes == g.num_tasks
        assert np.isclose(sim.total_work(), g.total_work())

    def test_partitioning_expands_large_tasks(self):
        g = _small_graph()
        sim = build_sim_graph(g, partition_threshold=16)
        # EXTEND and MULTIPLY split into 4 chunks + combine; MARGINALIZE
        # (input 64, output 8) is capped at sqrt(64/8) = 2 chunks; DIVIDE
        # (size 8) stays whole.
        assert sim.num_nodes == (2 + 1) + 1 + (4 + 1) + (4 + 1)

    def test_partitioned_work_conserved_up_to_combines(self):
        g = _small_graph()
        sim = build_sim_graph(g, partition_threshold=16)
        # MARGINALIZE's combiner sums its 2 partial tables (2 * 8); the
        # EXTEND and MULTIPLY combiners are in-place (bookkeeping = chunks).
        combine_work = 2 * 8 + 4 + 4
        assert np.isclose(sim.total_work(), g.total_work() + combine_work)

    def test_partitioning_rescues_structure_starved_trees(self):
        """A chain of big cliques has no structural parallelism: only the
        Partition module lets 8 cores help.  (On bushy trees with small
        tables partitioning adds overhead instead — the ablation benchmark
        quantifies that trade-off.)"""
        from repro.simcore.policies import CollaborativePolicy
        from repro.simcore.profiles import XEON

        tree = synthetic_tree(
            10, clique_width=18, width_jitter=0, avg_children=1, seed=0
        )
        g = build_task_graph(tree)
        plain = CollaborativePolicy(partition_threshold=None).simulate(
            g, XEON, 8
        )
        split = CollaborativePolicy(partition_threshold=1 << 14).simulate(
            g, XEON, 8
        )
        assert split.makespan < plain.makespan / 2

    def test_max_chunks_bounds_expansion(self):
        g = _small_graph()
        sim = build_sim_graph(g, partition_threshold=1, max_chunks=2)
        # Every task splits into at most 2 chunks + combine.
        assert sim.num_nodes <= g.num_tasks * 3

    def test_combine_inherits_successors(self):
        g = _small_graph()
        sim = build_sim_graph(g, partition_threshold=16)
        # The MARGINALIZE (input 64) splits; its combine node must feed the
        # unsplit DIVIDE node, which is the node with exactly one
        # dependency and weight 8.
        divide_nodes = [
            i
            for i, w in enumerate(sim.weights)
            if w == 8.0 and len(sim.deps[i]) == 1
        ]
        assert divide_nodes
        combine = sim.deps[divide_nodes[0]][0]
        assert len(sim.deps[combine]) == 2  # the two marginalize chunks

    def test_real_tree_expansion_is_valid(self):
        tree = synthetic_tree(25, clique_width=5, seed=1)
        g = build_task_graph(tree)
        sim = build_sim_graph(g, partition_threshold=8)
        order = sim.topological_order()
        assert len(order) == sim.num_nodes
