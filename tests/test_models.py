"""Model zoo: structural checks and known posterior values."""

import numpy as np
import pytest

from repro.inference.engine import InferenceEngine
from repro.models import asia, cancer, car_start, sprinkler, student


ALL_MODELS = [asia, sprinkler, cancer, student, car_start]


class TestStructure:
    @pytest.mark.parametrize("builder", ALL_MODELS)
    def test_all_cpts_set_and_named(self, builder):
        bn, names = builder()
        assert bn.has_all_cpts()
        assert set(names) == set(range(bn.num_variables))

    @pytest.mark.parametrize("builder", ALL_MODELS)
    def test_joint_is_distribution(self, builder):
        bn, _ = builder()
        assert np.isclose(bn.joint_table().total(), 1.0)

    @pytest.mark.parametrize("builder", ALL_MODELS)
    def test_engine_runs_end_to_end(self, builder):
        bn, _ = builder()
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        for v in range(bn.num_variables):
            assert np.allclose(engine.marginal(v), bn.marginal_bruteforce(v))


class TestKnownValues:
    def test_asia_prior_dyspnoea(self):
        bn, _ = asia()
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        # Classic figure: P(dysp = yes) ~ 0.436.
        assert engine.marginal(7)[1] == pytest.approx(0.436, abs=0.001)

    def test_asia_smoker_with_positive_xray(self):
        bn, _ = asia()
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({2: 1, 6: 1})  # smoker, abnormal x-ray
        engine.propagate()
        # Lung cancer becomes the leading explanation.
        p_lung = engine.marginal(3)[1]
        p_tub = engine.marginal(1)[1]
        assert p_lung > 0.3
        assert p_lung > p_tub

    def test_sprinkler_rain_explains_wet_grass(self):
        bn, _ = sprinkler()
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({3: 1})  # wet grass
        engine.propagate()
        p_rain_wet = engine.marginal(2)[1]
        engine.set_evidence({3: 1, 1: 1})  # wet grass and sprinkler on
        engine.propagate()
        p_rain_explained = engine.marginal(2)[1]
        # Explaining away: knowing the sprinkler ran lowers P(rain).
        assert p_rain_explained < p_rain_wet

    def test_sprinkler_known_posterior(self):
        bn, _ = sprinkler()
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({3: 1})
        engine.propagate()
        # Standard textbook value: P(rain | wet grass) ~ 0.708.
        assert engine.marginal(2)[1] == pytest.approx(0.708, abs=0.002)

    def test_cancer_rare_disease(self):
        bn, _ = cancer()
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        assert engine.marginal(2)[1] < 0.03  # cancer is rare a priori
        engine.set_evidence({3: 1})  # positive x-ray
        engine.propagate()
        assert engine.marginal(2)[1] > 0.05  # x-ray raises it strongly

    def test_student_grade_shifts_with_intelligence(self):
        bn, _ = student()
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({1: 1})  # intelligent
        engine.propagate()
        smart = engine.marginal(2)
        engine.set_evidence({1: 0})
        engine.propagate()
        plain = engine.marginal(2)
        # Intelligence shifts grade mass toward the best grade (state 0).
        assert smart[0] > plain[0]

    def test_car_fails_to_start_diagnosis(self):
        bn, _ = car_start()
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        p_battery_prior = engine.marginal(1)[0]  # P(battery not ok)
        engine.set_evidence({7: 0})  # engine does not start
        engine.propagate()
        p_battery_failed = engine.marginal(1)[0]
        assert p_battery_failed > p_battery_prior
        # Observing the lights are on partially exonerates the battery.
        engine.set_evidence({7: 0, 8: 1})
        engine.propagate()
        p_battery_lights = engine.marginal(1)[0]
        assert p_battery_lights < p_battery_failed
