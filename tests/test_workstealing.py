"""Work-stealing executor: equivalence and behaviour."""

import numpy as np
import pytest

from repro.jt.generation import synthetic_tree
from repro.sched.serial import SerialExecutor
from repro.sched.workstealing import WorkStealingExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState


@pytest.fixture
def tree():
    t = synthetic_tree(18, clique_width=4, states=2, avg_children=3, seed=61)
    t.initialize_potentials(np.random.default_rng(61))
    return t


def _run(tree, executor, evidence=None):
    graph = build_task_graph(tree)
    state = PropagationState(tree, evidence)
    stats = executor.run(graph, state)
    return state, stats


class TestEquivalence:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_matches_serial(self, tree, threads):
        serial, _ = _run(tree, SerialExecutor())
        stolen, _ = _run(tree, WorkStealingExecutor(num_threads=threads))
        for i in range(tree.num_cliques):
            assert np.allclose(
                serial.potentials[i].values, stolen.potentials[i].values
            )

    @pytest.mark.parametrize("delta", [2, 4])
    def test_partitioned_matches_serial(self, tree, delta):
        serial, _ = _run(tree, SerialExecutor())
        stolen, stats = _run(
            tree,
            WorkStealingExecutor(num_threads=4, partition_threshold=delta),
        )
        for i in range(tree.num_cliques):
            assert np.allclose(
                serial.potentials[i].values, stolen.potentials[i].values
            )
        assert stats.tasks_partitioned > 0

    def test_with_evidence(self, tree):
        var = tree.cliques[2].variables[0]
        serial, _ = _run(tree, SerialExecutor(), {var: 1})
        stolen, _ = _run(
            tree, WorkStealingExecutor(num_threads=3), {var: 1}
        )
        for i in range(tree.num_cliques):
            assert np.allclose(
                serial.potentials[i].values, stolen.potentials[i].values
            )


class TestBehaviour:
    def test_all_tasks_accounted(self, tree):
        graph = build_task_graph(tree)
        stats = WorkStealingExecutor(num_threads=4).run(
            graph, PropagationState(tree)
        )
        assert stats.tasks_executed == graph.num_tasks
        assert sum(stats.tasks_per_thread) == graph.num_tasks

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            WorkStealingExecutor(num_threads=0)
        with pytest.raises(ValueError):
            WorkStealingExecutor(partition_threshold=0)
        with pytest.raises(ValueError):
            WorkStealingExecutor(max_chunks=1)

    def test_exception_propagates(self, tree):
        graph = build_task_graph(tree)

        class Broken:
            def __getattr__(self, name):
                raise RuntimeError("broken state")

        with pytest.raises(RuntimeError, match="broken state"):
            WorkStealingExecutor(num_threads=2).run(graph, Broken())

    def test_single_thread_never_steals(self, tree):
        graph = build_task_graph(tree)
        stats = WorkStealingExecutor(num_threads=1).run(
            graph, PropagationState(tree)
        )
        assert stats.tasks_per_thread == [graph.num_tasks]
