"""Forward sampling, likelihood weighting, and parameter learning."""

import numpy as np
import pytest

from repro.bn.generation import chain_network, random_network
from repro.bn.learning import fit_cpts, log_likelihood
from repro.bn.network import BayesianNetwork
from repro.bn.sampling import (
    empirical_marginal,
    forward_sample,
    likelihood_weighting,
)
from repro.inference.engine import InferenceEngine
from repro.potential.table import PotentialTable


class TestForwardSampling:
    def test_shape_and_range(self):
        bn = random_network(8, cardinality=3, seed=1)
        samples = forward_sample(bn, 50, seed=1)
        assert samples.shape == (50, 8)
        assert samples.min() >= 0
        assert samples.max() < 3

    def test_zero_samples(self):
        bn = random_network(4, seed=2)
        assert forward_sample(bn, 0, seed=0).shape == (0, 4)

    def test_empirical_marginals_approach_exact(self):
        bn = random_network(
            6, max_parents=2, edge_probability=0.8, seed=3
        )
        samples = forward_sample(bn, 4000, seed=3)
        for v in range(6):
            exact = bn.marginal_bruteforce(v)
            observed = empirical_marginal(samples, v, 2)
            assert np.allclose(observed, exact, atol=0.05)

    def test_deterministic_with_seed(self):
        bn = random_network(5, seed=4)
        a = forward_sample(bn, 10, seed=77)
        b = forward_sample(bn, 10, seed=77)
        assert np.array_equal(a, b)

    def test_requires_cpts(self):
        bn = BayesianNetwork([2, 2])
        with pytest.raises(ValueError, match="CPTs"):
            forward_sample(bn, 1)

    def test_negative_count_rejected(self):
        bn = random_network(3, seed=5)
        with pytest.raises(ValueError):
            forward_sample(bn, -1)


class TestLikelihoodWeighting:
    def test_approaches_exact_posterior(self):
        bn = random_network(
            7, max_parents=2, edge_probability=0.8, seed=6
        )
        evidence = {0: 1, 4: 0}
        estimate = likelihood_weighting(
            bn, target=5, evidence=evidence, num_samples=6000, seed=6
        )
        exact = bn.marginal_bruteforce(5, evidence)
        assert np.allclose(estimate, exact, atol=0.06)

    def test_agrees_with_junction_tree_engine(self):
        bn = random_network(
            8, max_parents=2, edge_probability=0.7, seed=7
        )
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({1: 1})
        engine.propagate()
        estimate = likelihood_weighting(
            bn, target=6, evidence={1: 1}, num_samples=6000, seed=7
        )
        assert np.allclose(estimate, engine.marginal(6), atol=0.06)

    def test_target_in_evidence_returns_point_mass(self):
        bn = random_network(5, seed=8)
        result = likelihood_weighting(bn, 2, {2: 1}, num_samples=10, seed=0)
        assert np.allclose(result, [0.0, 1.0])

    def test_invalid_sample_count(self):
        bn = random_network(4, seed=9)
        with pytest.raises(ValueError):
            likelihood_weighting(bn, 0, num_samples=0)


class TestLearning:
    def test_sample_fit_roundtrip_recovers_cpts(self):
        truth = chain_network(5, seed=10)
        data = forward_sample(truth, 8000, seed=10)
        learned = BayesianNetwork([2] * 5)
        for a, b in truth.edges():
            learned.add_edge(a, b)
        fit_cpts(learned, data, alpha=1.0)
        for v in range(5):
            want = truth.cpt(v)
            got = learned.cpt(v).aligned_to(want.variables)
            assert np.allclose(got.values, want.values, atol=0.06)

    def test_fitted_network_is_valid_for_inference(self):
        truth = random_network(
            6, max_parents=2, edge_probability=0.8, seed=11
        )
        data = forward_sample(truth, 3000, seed=11)
        learned = BayesianNetwork([2] * 6)
        for a, b in truth.edges():
            learned.add_edge(a, b)
        fit_cpts(learned, data)
        engine = InferenceEngine.from_network(learned)
        engine.propagate()
        assert np.isclose(engine.marginal(3).sum(), 1.0)

    def test_smoothing_handles_unseen_configurations(self):
        bn = BayesianNetwork([2, 2])
        bn.add_edge(0, 1)
        # Data never shows variable 0 in state 1.
        data = np.array([[0, 0], [0, 1], [0, 0]])
        fit_cpts(bn, data, alpha=1.0)
        row = bn.cpt(1).aligned_to((0, 1)).values[1]
        assert np.allclose(row, [0.5, 0.5])

    def test_alpha_zero_pure_mle(self):
        bn = BayesianNetwork([2])
        data = np.array([[0], [0], [0], [1]])
        fit_cpts(bn, data, alpha=0.0)
        assert np.allclose(bn.cpt(0).values, [0.75, 0.25])

    def test_bad_data_shapes_rejected(self):
        bn = BayesianNetwork([2, 2])
        with pytest.raises(ValueError, match="data must be"):
            fit_cpts(bn, np.zeros((3, 5), dtype=int))
        with pytest.raises(ValueError, match="out-of-range"):
            fit_cpts(bn, np.array([[0, 5]]))
        with pytest.raises(ValueError, match="alpha"):
            fit_cpts(bn, np.zeros((1, 2), dtype=int), alpha=-1)

    def test_log_likelihood_prefers_true_model(self):
        truth = chain_network(4, seed=12)
        data = forward_sample(truth, 2000, seed=12)
        ll_truth = log_likelihood(truth, data)
        other = chain_network(4, seed=99)
        ll_other = log_likelihood(other, data)
        assert ll_truth > ll_other

    def test_log_likelihood_minus_inf_on_impossible_data(self):
        bn = BayesianNetwork([2])
        bn.set_cpt(0, PotentialTable([0], [2], np.array([1.0, 0.0])))
        assert log_likelihood(bn, np.array([[1]])) == float("-inf")
