"""Tests for the observability subsystem (repro.obs).

Covers the tracer hot path, executor instrumentation (traced runs stay
numerically identical to untraced ones and cover >= 95% of measured busy
time), the Chrome-trace export/validate/load round-trip, derived
metrics, and the simcore calibration report.
"""

import json
import threading

import numpy as np
import pytest

from repro.inference.engine import InferenceEngine
from repro.inference.propagation import propagate_reference
from repro.jt.generation import synthetic_tree
from repro.obs import (
    CAT_EXECUTE,
    PropagationTrace,
    Span,
    Tracer,
    TimedLock,
    ascii_gantt,
    chrome_trace,
    observed_critical_path,
    sim_trace_to_chrome,
    validate_chrome_trace,
)
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.process import ProcessSharedMemoryExecutor
from repro.sched.resilient import ResilientExecutor
from repro.sched.serial import SerialExecutor
from repro.sched.workstealing import WorkStealingExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState


def _workload(num_cliques=24, clique_width=6, seed=11):
    tree = synthetic_tree(
        num_cliques, clique_width=clique_width, states=2, avg_children=3,
        seed=seed,
    )
    tree.initialize_potentials(np.random.default_rng(seed))
    return tree, build_task_graph(tree)


def _complete_event_count(trace):
    """Spans the exporter renders as Chrome ``X`` (complete) events."""
    return sum(
        1 for s in trace.spans if s.duration_ns > 0 and s.cat != "ipc"
    )


def _traced_run(executor, tree, graph):
    tracer = Tracer()
    state = PropagationState(tree)
    stats = executor.run(graph, state, tracer=tracer)
    trace = tracer.finalize(
        graph=graph, stats=stats, executor=type(executor).__name__
    )
    return trace, stats, state


# --------------------------------------------------------------------- #
# Tracer primitives
# --------------------------------------------------------------------- #


class TestTracer:
    def test_buffer_is_singleton_per_worker(self):
        tracer = Tracer()
        assert tracer.buffer(3) is tracer.buffer(3)
        assert tracer.buffer(3) is not tracer.buffer(4)

    def test_bind_sets_thread_current(self):
        tracer = Tracer()
        buf = tracer.bind(1)
        assert tracer.current() is buf

    def test_unbound_thread_charges_control_row(self):
        tracer = Tracer()
        seen = {}

        def probe():
            seen["worker"] = tracer.current().worker

        t = threading.Thread(target=probe)
        t.start()
        t.join()
        assert seen["worker"] == -1  # CONTROL_ROW

    def test_finalize_without_graph_keeps_untagged_spans(self):
        tracer = Tracer()
        buf = tracer.bind(0)
        t0 = tracer.origin_ns
        buf.task_span("task", 5, t0 + 100, t0 + 300)
        trace = tracer.finalize()
        (span,) = trace.spans
        assert span.tid == 5
        assert span.duration_ns == 200
        assert span.kind is None

    def test_slow_lock_threshold_gates_individual_spans(self):
        tracer = Tracer(slow_lock_ns=1_000)
        buf = tracer.bind(0)
        buf.lock_wait("GL", 500)      # below threshold: counter only
        buf.lock_wait("GL", 5_000)    # above: counter + span
        trace = tracer.finalize()
        assert trace.lock_wait_ns["GL"] == 5_500
        lock_spans = [s for s in trace.spans if s.cat == "lock"]
        assert len(lock_spans) == 1


class TestTimedLock:
    def test_mutual_exclusion_and_wait_accounting(self):
        tracer = Tracer(slow_lock_ns=1)
        tracer.bind(0)
        lock = TimedLock(tracer, "GL")
        hits = []

        with lock:
            t = threading.Thread(
                target=lambda: (tracer.bind(1), lock.acquire(),
                                hits.append(1), lock.release())
            )
            t.start()
            t.join(timeout=0.05)
            assert not hits  # blocked while held
        t.join()
        assert hits == [1]
        # The contended acquire was charged to the waiter's buffer.
        assert tracer.buffer(1).lock_wait_ns.get("GL", 0) > 0

    def test_uncontended_acquire_records_nothing(self):
        tracer = Tracer()
        tracer.bind(0)
        lock = TimedLock(tracer, "LL")
        with lock:
            pass
        assert tracer.buffer(0).lock_wait_ns == {}


# --------------------------------------------------------------------- #
# Executor instrumentation
# --------------------------------------------------------------------- #


EXECUTORS = [
    ("serial", lambda: SerialExecutor()),
    (
        "collaborative",
        lambda: CollaborativeExecutor(num_threads=2, partition_threshold=256),
    ),
    (
        "workstealing",
        lambda: WorkStealingExecutor(num_threads=2, partition_threshold=256),
    ),
]


class TestTracedExecutors:
    @pytest.mark.parametrize("name,make", EXECUTORS)
    def test_traced_matches_untraced_and_covers_busy(self, name, make):
        tree, graph = _workload()
        ref = PropagationState(tree)
        make().run(graph, ref)

        trace, stats, state = _traced_run(make(), tree, graph)
        for i in range(tree.num_cliques):
            np.testing.assert_allclose(
                state.potentials[i].values,
                ref.potentials[i].values,
                rtol=1e-9,
                atol=1e-12,
            )
        assert stats.tasks_executed == graph.num_tasks
        assert trace.coverage(stats) >= 0.95
        assert trace.executor == type(make()).__name__
        # Every execute span is tagged from the graph.
        for span in trace.execute_spans():
            assert span.tid >= 0
            assert span.kind or span.role in ("combine", "inline")

    def test_traced_collaborative_records_lock_categories(self):
        tree, graph = _workload()
        trace, _, _ = _traced_run(
            CollaborativeExecutor(num_threads=2, partition_threshold=256),
            tree,
            graph,
        )
        assert "GL" in trace.lock_wait_ns or "LL" in trace.lock_wait_ns or (
            # Uncontended runs may record no waits at all — the categories
            # appear only when a lock actually blocked.
            trace.lock_wait_ns == {}
        )
        assert trace.queue_samples  # fetch-time queue-depth samples

    def test_traced_workstealing_counts_steals(self):
        tree, graph = _workload(num_cliques=32)
        trace, _, _ = _traced_run(
            WorkStealingExecutor(num_threads=2, partition_threshold=256),
            tree,
            graph,
        )
        # steals counter exists when any steal happened; spans always do.
        assert trace.execute_spans()
        assert all(s.start_ns >= 0 for s in trace.spans)

    def test_untraced_run_unchanged(self):
        tree, graph = _workload()
        stats = SerialExecutor().run(graph, PropagationState(tree))
        assert stats.tasks_executed == graph.num_tasks

    def test_resilient_executor_forwards_tracer(self):
        tree, graph = _workload()
        trace, stats, _ = _traced_run(
            ResilientExecutor(SerialExecutor()), tree, graph
        )
        assert trace.coverage(stats) >= 0.95


class TestTracedProcessExecutor:
    def test_process_trace_merges_worker_rows(self):
        tree, graph = _workload(num_cliques=16, clique_width=8)
        executor = ProcessSharedMemoryExecutor(
            num_workers=2, partition_threshold=4096, inline_threshold=64
        )
        ref = propagate_reference(tree, {})
        trace, stats, state = _traced_run(executor, tree, graph)
        for i in range(tree.num_cliques):
            np.testing.assert_allclose(
                state.potentials[i].values, ref[i].values, rtol=1e-9
            )
        assert trace.coverage(stats) >= 0.95
        # Worker spans carry the executing process pid and land on the
        # dispatched slots' rows; dispatch round-trips land on the ipc row.
        dispatched = [
            s for s in trace.execute_spans() if s.role != "inline"
        ]
        assert dispatched
        assert all(s.pid is not None for s in dispatched)
        assert any(s.cat == "ipc" for s in trace.spans)
        assert trace.counters.get("dispatches", 0) >= len(dispatched) / 2

    def test_acceptance_256_clique_tree(self):
        # ISSUE acceptance: traced 256-clique process run -> valid Chrome
        # JSON whose spans cover >= 95% of per-worker busy time.
        tree, graph = _workload(num_cliques=256, clique_width=5, seed=3)
        executor = ProcessSharedMemoryExecutor(
            num_workers=2, partition_threshold=4096, inline_threshold=32
        )
        trace, stats, _ = _traced_run(executor, tree, graph)
        assert trace.coverage(stats) >= 0.95
        counts = validate_chrome_trace(trace.to_chrome())
        # X events = spans with duration on worker rows; IPC round-trips
        # export as b/e async pairs and zero-length markers as instants.
        assert counts["spans"] == _complete_event_count(trace)


# --------------------------------------------------------------------- #
# Export / validate / load round-trip
# --------------------------------------------------------------------- #


class TestChromeExport:
    @pytest.fixture(scope="class")
    def traced(self):
        tree, graph = _workload()
        return _traced_run(
            CollaborativeExecutor(num_threads=2, partition_threshold=256),
            tree,
            graph,
        )

    def test_events_carry_required_keys(self, traced):
        trace, _, _ = traced
        doc = chrome_trace(trace)
        assert doc["displayTimeUnit"] == "ms"
        for event in doc["traceEvents"]:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event, event

    def test_validate_counts(self, traced):
        trace, _, _ = traced
        counts = validate_chrome_trace(trace.to_chrome())
        assert counts["spans"] == _complete_event_count(trace)
        assert counts["rows"] >= len(trace.workers())

    def test_validate_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "ts": 1, "pid": 1}]}
            )

    def test_validate_rejects_negative_duration(self):
        bad = {
            "traceEvents": [
                {
                    "ph": "X", "ts": 5, "dur": -2, "pid": 1, "tid": 0,
                    "name": "t",
                }
            ]
        }
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)

    def test_save_load_roundtrip(self, traced, tmp_path):
        trace, _, _ = traced
        path = tmp_path / "trace.json"
        trace.save(path)
        validate_chrome_trace(path)
        loaded = PropagationTrace.load(path)
        assert loaded.executor == trace.executor
        assert loaded.num_workers == trace.num_workers
        assert loaded.num_spans == trace.num_spans
        assert len(loaded.tasks) == len(trace.tasks)
        assert loaded.lock_wait_ns == trace.lock_wait_ns
        # Execute spans survive with their tags (timestamps to µs).
        orig = sorted(
            (s.tid, s.role, s.kind) for s in trace.execute_spans()
        )
        back = sorted(
            (s.tid, s.role, s.kind) for s in loaded.execute_spans()
        )
        assert orig == back
        # Derived products work from the loaded file alone.
        assert sum(loaded.metrics().busy_seconds.values()) > 0
        assert loaded.calibrate().predicted_makespan > 0

    def test_ascii_gantt_rows(self, traced):
        trace, _, _ = traced
        rows = ascii_gantt(trace, width=40)
        assert any("#" in row for row in rows)
        assert len(rows) >= len(trace.workers())

    def test_sim_trace_export(self):
        from repro.simcore.machine import Machine
        from repro.simcore.policies import CollaborativePolicy
        from repro.simcore.profiles import XEON

        tree, graph = _workload(num_cliques=12)
        result = Machine(XEON, 4).run(
            CollaborativePolicy(), graph, record_trace=True
        )
        doc = sim_trace_to_chrome(result.trace)
        validate_chrome_trace(doc)


# --------------------------------------------------------------------- #
# Metrics and calibration
# --------------------------------------------------------------------- #


class TestMetrics:
    @pytest.fixture(scope="class")
    def traced(self):
        tree, graph = _workload(num_cliques=32, clique_width=7)
        return _traced_run(
            CollaborativeExecutor(num_threads=2, partition_threshold=1024),
            tree,
            graph,
        )

    def test_per_primitive_accounting(self, traced):
        trace, stats, _ = traced
        m = trace.metrics()
        assert set(m.per_primitive) >= {
            "marginalize", "divide", "extend", "multiply",
        }
        assert m.total_execute_seconds == pytest.approx(
            sum(trace.busy_ns().values()) * 1e-9
        )
        assert m.total_flops > 0
        assert m.wall_seconds == pytest.approx(trace.wall_seconds)
        assert 0 < m.parallel_efficiency <= 1.0

    def test_observed_critical_path_bounds(self, traced):
        trace, _, _ = traced
        cp_seconds, cp_tasks = observed_critical_path(trace)
        assert cp_tasks
        durations = {}
        for s in trace.execute_spans():
            durations[s.tid] = durations.get(s.tid, 0) + s.duration_ns
        # Critical path is at least the heaviest task, at most the sum.
        assert cp_seconds >= max(durations.values()) * 1e-9 * 0.999
        assert cp_seconds <= sum(durations.values()) * 1e-9 * 1.001
        # It is a real dependency chain.
        deps = {t.tid: set(t.deps) for t in trace.tasks}
        for a, b in zip(cp_tasks, cp_tasks[1:]):
            assert a in deps[b]

    def test_format_renders(self, traced):
        trace, _, _ = traced
        text = trace.metrics().format()
        assert "wall time" in text
        assert "per primitive" in text


class TestCalibration:
    def test_report_structure(self):
        tree, graph = _workload(num_cliques=32, clique_width=7)
        trace, stats, _ = _traced_run(
            CollaborativeExecutor(num_threads=2, partition_threshold=1024),
            tree,
            graph,
        )
        report = trace.calibrate()
        assert report.num_workers == 2
        assert report.fitted_flops_per_second > 0
        assert report.predicted_makespan > 0
        assert report.measured_makespan == pytest.approx(trace.wall_seconds)
        text = report.format()
        assert "measured" in text and "predicted" in text
        assert f"{report.makespan_error * 100:+.1f}%" in text

    def test_calibrate_without_tasks_raises(self):
        with pytest.raises(ValueError):
            PropagationTrace(spans=[Span("x", CAT_EXECUTE, 0, 0, 10)]).calibrate()


# --------------------------------------------------------------------- #
# Engine integration
# --------------------------------------------------------------------- #


class TestEngineTracing:
    def test_propagate_trace_true_records(self):
        tree, _ = _workload(num_cliques=12)
        engine = InferenceEngine(tree, reroot=False)
        engine.propagate(trace=True)
        assert engine.last_trace is not None
        assert engine.last_trace.executor == "SerialExecutor"
        assert engine.last_trace.coverage(engine.last_stats) >= 0.95

    def test_propagate_trace_path_writes_json(self, tmp_path):
        tree, _ = _workload(num_cliques=12)
        engine = InferenceEngine(tree, reroot=False)
        path = tmp_path / "engine_trace.json"
        engine.propagate(trace=str(path))
        counts = validate_chrome_trace(path)
        assert counts["spans"] > 0
        data = json.loads(path.read_text())
        assert data["repro"]["executor"] == "SerialExecutor"

    def test_propagate_accepts_prepared_tracer(self):
        tree, _ = _workload(num_cliques=12)
        engine = InferenceEngine(tree, reroot=False)
        tracer = Tracer(slow_lock_ns=50_000)
        engine.propagate(trace=tracer)
        assert engine.last_trace.num_spans > 0

    def test_legacy_executor_without_tracer_param_still_runs(self):
        class LegacyExecutor:
            def run(self, graph, state):
                return SerialExecutor().run(graph, state)

        tree, _ = _workload(num_cliques=12)
        engine = InferenceEngine(tree, reroot=False)
        engine.propagate(LegacyExecutor(), trace=True)
        # Untraced executor -> empty but well-formed trace.
        assert engine.last_trace is not None
        assert engine.last_trace.spans == []

    def test_untraced_propagate_leaves_no_trace(self):
        tree, _ = _workload(num_cliques=12)
        engine = InferenceEngine(tree, reroot=False)
        engine.propagate()
        assert engine.last_trace is None
