"""Tests for the shared Partition-module planning rules."""

import pytest

from repro.potential.primitives import PrimitiveKind
from repro.tasks.partition_plan import combine_flops, plan_partition
from repro.tasks.task import COLLECT, Task


def _task(kind, input_size, output_size):
    return Task(0, kind, COLLECT, (0, 1), 0, input_size, output_size)


class TestPlanPartition:
    def test_disabled_returns_none(self):
        t = _task(PrimitiveKind.MULTIPLY, 1000, 1000)
        assert plan_partition(t, None) is None

    def test_below_threshold_returns_none(self):
        t = _task(PrimitiveKind.MULTIPLY, 100, 100)
        assert plan_partition(t, 100) is None

    def test_multiply_splits_by_output(self):
        t = _task(PrimitiveKind.MULTIPLY, 1024, 1024)
        ranges = plan_partition(t, 256)
        assert ranges is not None
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 1024
        assert len(ranges) == 4

    def test_max_chunks_respected(self):
        t = _task(PrimitiveKind.EXTEND, 64, 1 << 20)
        ranges = plan_partition(t, 64, max_chunks=8)
        assert len(ranges) == 8

    def test_marginalize_skipped_when_output_comparable(self):
        # input only 2x the output: the add-combine would eat the gain.
        t = _task(PrimitiveKind.MARGINALIZE, 2048, 1024)
        assert plan_partition(t, 256) is None

    def test_marginalize_chunks_near_sqrt_ratio(self):
        t = _task(PrimitiveKind.MARGINALIZE, 1 << 20, 1 << 10)
        ranges = plan_partition(t, 1 << 10)
        # sqrt(2^20 / 2^10) = 32 chunks (also the max_chunks default).
        assert len(ranges) == 32

    def test_marginalize_small_ratio_capped(self):
        t = _task(PrimitiveKind.MARGINALIZE, 1 << 12, 1 << 8)
        ranges = plan_partition(t, 1 << 8)
        # sqrt(4096/256) = 4 chunks even though size/delta = 16.
        assert len(ranges) == 4

    def test_ranges_cover_partition_size_exactly(self):
        t = _task(PrimitiveKind.DIVIDE, 777, 777)
        ranges = plan_partition(t, 100)
        covered = sum(hi - lo for lo, hi in ranges)
        assert covered == 777


class TestCombineFlops:
    def test_marginalize_combine_scales_with_chunks(self):
        t = _task(PrimitiveKind.MARGINALIZE, 1 << 16, 64)
        assert combine_flops(t, 8) == 8 * 64

    def test_concat_combine_is_bookkeeping(self):
        t = _task(PrimitiveKind.MULTIPLY, 1 << 16, 1 << 16)
        assert combine_flops(t, 8) == 8.0
