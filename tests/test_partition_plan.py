"""Tests for the shared Partition-module planning rules.

Besides the example-based planning tests, this module carries Hypothesis
property tests for the chunked primitives: any chunk plan must cover the
flat index space exactly once, and reassembling the chunks (combiner
semantics) must reproduce the unpartitioned primitive bit-for-bit within
floating-point tolerance.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.potential.partition import (
    add_partials_into,
    chunk_ranges,
    divide_chunk_into,
    extend_chunk_into,
    marginalize_chunk,
    multiply_chunk_into,
)
from repro.potential.primitives import (
    PrimitiveKind,
    divide,
    extend,
    marginalize,
    multiply,
)
from repro.potential.table import PotentialTable
from repro.tasks.partition_plan import combine_flops, plan_partition
from repro.tasks.task import COLLECT, Task


def _task(kind, input_size, output_size):
    return Task(0, kind, COLLECT, (0, 1), 0, input_size, output_size)


class TestPlanPartition:
    def test_disabled_returns_none(self):
        t = _task(PrimitiveKind.MULTIPLY, 1000, 1000)
        assert plan_partition(t, None) is None

    def test_below_threshold_returns_none(self):
        t = _task(PrimitiveKind.MULTIPLY, 100, 100)
        assert plan_partition(t, 100) is None

    def test_multiply_splits_by_output(self):
        t = _task(PrimitiveKind.MULTIPLY, 1024, 1024)
        ranges = plan_partition(t, 256)
        assert ranges is not None
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 1024
        assert len(ranges) == 4

    def test_max_chunks_respected(self):
        t = _task(PrimitiveKind.EXTEND, 64, 1 << 20)
        ranges = plan_partition(t, 64, max_chunks=8)
        assert len(ranges) == 8

    def test_marginalize_skipped_when_output_comparable(self):
        # input only 2x the output: the add-combine would eat the gain.
        t = _task(PrimitiveKind.MARGINALIZE, 2048, 1024)
        assert plan_partition(t, 256) is None

    def test_marginalize_chunks_near_sqrt_ratio(self):
        t = _task(PrimitiveKind.MARGINALIZE, 1 << 20, 1 << 10)
        ranges = plan_partition(t, 1 << 10)
        # sqrt(2^20 / 2^10) = 32 chunks (also the max_chunks default).
        assert len(ranges) == 32

    def test_marginalize_small_ratio_capped(self):
        t = _task(PrimitiveKind.MARGINALIZE, 1 << 12, 1 << 8)
        ranges = plan_partition(t, 1 << 8)
        # sqrt(4096/256) = 4 chunks even though size/delta = 16.
        assert len(ranges) == 4

    def test_ranges_cover_partition_size_exactly(self):
        t = _task(PrimitiveKind.DIVIDE, 777, 777)
        ranges = plan_partition(t, 100)
        covered = sum(hi - lo for lo, hi in ranges)
        assert covered == 777


class TestCombineFlops:
    def test_marginalize_combine_scales_with_chunks(self):
        t = _task(PrimitiveKind.MARGINALIZE, 1 << 16, 64)
        assert combine_flops(t, 8) == 8 * 64

    def test_concat_combine_is_bookkeeping(self):
        t = _task(PrimitiveKind.MULTIPLY, 1 << 16, 1 << 16)
        assert combine_flops(t, 8) == 8.0


# --------------------------------------------------------------------- #
# Property tests: chunk plans and chunked-primitive round-trips
# --------------------------------------------------------------------- #


@st.composite
def _scoped_table(draw, max_vars=4, max_card=4):
    """A small random potential table with distinct variable labels."""
    n = draw(st.integers(1, max_vars))
    labels = tuple(draw(st.permutations(range(8)))[:n])
    cards = tuple(draw(st.integers(2, max_card)) for _ in range(n))
    seed = draw(st.integers(0, 2**16 - 1))
    values = np.random.default_rng(seed).uniform(0.1, 2.0, int(np.prod(cards)))
    return PotentialTable(labels, cards, values)


@given(
    kind=st.sampled_from(list(PrimitiveKind)),
    input_size=st.integers(1, 1 << 16),
    output_size=st.integers(1, 1 << 16),
    delta=st.integers(1, 1 << 12),
    max_chunks=st.integers(2, 64),
)
def test_plan_ranges_cover_partition_space_exactly_once(
    kind, input_size, output_size, delta, max_chunks
):
    task = _task(kind, input_size, output_size)
    ranges = plan_partition(task, delta, max_chunks=max_chunks)
    if ranges is None:
        return
    assert 2 <= len(ranges) <= max_chunks
    assert ranges[0][0] == 0
    assert ranges[-1][1] == task.partition_size
    for (lo, hi), (nlo, _) in zip(ranges, ranges[1:]):
        assert lo < hi
        assert hi == nlo, "ranges must tile contiguously without overlap"
    assert all(lo < hi for lo, hi in ranges)


@given(data=st.data())
def test_chunked_marginalize_reassembles_to_primitive(data):
    table = data.draw(_scoped_table())
    k = data.draw(st.integers(0, len(table.variables)))
    onto = tuple(data.draw(st.permutations(table.variables)))[:k]
    max_chunk = data.draw(st.integers(1, table.size))
    expected = marginalize(table, onto)
    parts = [
        marginalize_chunk(table, onto, lo, hi).values.reshape(-1)
        for lo, hi in chunk_ranges(table.size, max_chunk)
    ]
    out = np.empty(expected.size)
    add_partials_into(out, parts)
    np.testing.assert_allclose(
        out, expected.values.reshape(-1), rtol=1e-12, atol=0
    )


@given(data=st.data())
def test_chunked_extend_reassembles_to_primitive(data):
    table = data.draw(_scoped_table(max_vars=3, max_card=3))
    extra_n = data.draw(st.integers(0, 2))
    extra = [
        (8 + i, data.draw(st.integers(2, 3))) for i in range(extra_n)
    ]
    combined = list(zip(table.variables, table.cardinalities)) + extra
    perm = data.draw(st.permutations(combined))
    sup_vars = tuple(v for v, _ in perm)
    sup_cards = tuple(c for _, c in perm)
    expected = extend(table, sup_vars, sup_cards)
    max_chunk = data.draw(st.integers(1, expected.size))
    out = np.empty(expected.size)
    for lo, hi in chunk_ranges(expected.size, max_chunk):
        extend_chunk_into(out, table, sup_vars, sup_cards, lo, hi)
    np.testing.assert_allclose(out, expected.values.reshape(-1), rtol=0)


@given(data=st.data())
def test_chunked_multiply_reassembles_to_primitive(data):
    a = data.draw(_scoped_table())
    k = data.draw(st.integers(1, len(a.variables)))
    sub_vars = tuple(data.draw(st.permutations(a.variables)))[:k]
    sub_cards = tuple(a.card_of(v) for v in sub_vars)
    seed = data.draw(st.integers(0, 2**16 - 1))
    b = PotentialTable(
        sub_vars,
        sub_cards,
        np.random.default_rng(seed).uniform(0.1, 2.0, int(np.prod(sub_cards))),
    )
    expected = multiply(a, b)
    b_extended = extend(b, a.variables, a.cardinalities)
    out = a.values.reshape(-1).copy()
    max_chunk = data.draw(st.integers(1, a.size))
    for lo, hi in chunk_ranges(a.size, max_chunk):
        multiply_chunk_into(out, b_extended.values.reshape(-1), lo, hi)
    np.testing.assert_allclose(out, expected.values.reshape(-1), rtol=1e-15)


@given(data=st.data())
def test_chunked_divide_reassembles_to_primitive(data):
    num = data.draw(_scoped_table())
    seed = data.draw(st.integers(0, 2**16 - 1))
    rng = np.random.default_rng(seed)
    den_values = rng.uniform(0.1, 2.0, num.size)
    # Zero out a random subset of denominator entries to exercise 0/0 = 0.
    zero_mask = rng.random(num.size) < 0.25
    den_values[zero_mask] = 0.0
    den = PotentialTable(num.variables, num.cardinalities, den_values)
    expected = divide(num, den)
    out = np.empty(num.size)
    max_chunk = data.draw(st.integers(1, num.size))
    for lo, hi in chunk_ranges(num.size, max_chunk):
        divide_chunk_into(
            out, num.values.reshape(-1), den.values.reshape(-1), lo, hi
        )
    np.testing.assert_allclose(out, expected.values.reshape(-1), rtol=0)
