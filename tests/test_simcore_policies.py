"""Tests for the multicore simulator's scheduling policies."""

import numpy as np
import pytest

from repro.jt.generation import synthetic_tree, template_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore.policies import (
    CentralizedPolicy,
    CollaborativePolicy,
    DataParallelPolicy,
    LevelParallelPolicy,
    OpenMPPolicy,
    SerialPolicy,
)
from repro.simcore.profiles import IBM_P655, OPTERON, XEON
from repro.simcore.simgraph import build_sim_graph
from repro.tasks.dag import build_task_graph


@pytest.fixture(scope="module")
def graph():
    tree = synthetic_tree(
        64, clique_width=14, states=2, avg_children=3, seed=50
    )
    tree, _, _ = reroot_optimally(tree)
    return build_task_graph(tree)


class TestSerialPolicy:
    def test_makespan_equals_total_duration(self, graph):
        result = SerialPolicy().simulate(graph, XEON)
        sim = build_sim_graph(graph)
        expected = sum(XEON.duration(w, 1) for w in sim.weights)
        assert np.isclose(result.makespan, expected)

    def test_single_core_fields(self, graph):
        result = SerialPolicy().simulate(graph, XEON)
        assert result.num_cores == 1
        assert result.sched_ratio() == 0.0
        assert result.utilization() == pytest.approx(1.0)


class TestCollaborativePolicy:
    def test_speedup_monotone_in_cores(self, graph):
        pol = CollaborativePolicy()
        times = [pol.simulate(graph, XEON, p).makespan for p in (1, 2, 4, 8)]
        for a, b in zip(times, times[1:]):
            assert b < a

    def test_near_linear_at_8_cores(self, graph):
        pol = CollaborativePolicy()
        base = pol.simulate(graph, XEON, 1).makespan
        fast = pol.simulate(graph, XEON, 8).makespan
        assert base / fast > 4.5

    def test_makespan_bounds(self, graph):
        """Greedy schedule lies between span and work/P lower bounds."""
        pol = CollaborativePolicy()
        for p in (2, 4, 8):
            result = pol.simulate(graph, XEON, p)
            sim = build_sim_graph(
                graph, pol.partition_threshold, pol.max_chunks
            )
            work = sum(XEON.duration(w, p) for w in sim.weights)
            span = XEON.duration(sim.critical_path(), p)
            assert result.makespan >= max(span, work / p) * 0.999
            assert result.makespan <= work + 1e-9

    def test_load_balance_is_tight(self, graph):
        result = CollaborativePolicy().simulate(graph, XEON, 8)
        assert result.load_imbalance() < 1.5

    def test_sched_ratio_small(self, graph):
        # The paper's < 0.9 % bound holds on JT1-sized tables and is
        # asserted by the Fig. 8 benchmark; this medium tree has much
        # smaller tasks, so only a loose bound applies here.
        result = CollaborativePolicy().simulate(graph, XEON, 8)
        assert result.sched_ratio() < 0.25

    def test_partitioning_disabled_still_runs(self, graph):
        pol = CollaborativePolicy(partition_threshold=None)
        result = pol.simulate(graph, XEON, 4)
        assert result.tasks_executed == graph.num_tasks

    def test_compute_time_conserved(self, graph):
        """Total per-core compute equals the partitioned graph's work."""
        pol = CollaborativePolicy()
        result = pol.simulate(graph, XEON, 4)
        sim = build_sim_graph(graph, pol.partition_threshold, pol.max_chunks)
        work = sum(XEON.duration(w, 4) for w in sim.weights)
        assert np.isclose(result.total_compute(), work)


class TestBaselinePolicies:
    def test_openmp_saturates_below_collaborative(self, graph):
        omp = OpenMPPolicy()
        collab = CollaborativePolicy()
        omp_speedup = (
            omp.simulate(graph, XEON, 1).makespan
            / omp.simulate(graph, XEON, 8).makespan
        )
        collab_speedup = (
            collab.simulate(graph, XEON, 1).makespan
            / collab.simulate(graph, XEON, 8).makespan
        )
        assert collab_speedup > 1.5 * omp_speedup

    def test_data_parallel_saturates(self, graph):
        pol = DataParallelPolicy()
        s4 = (
            pol.simulate(graph, XEON, 1).makespan
            / pol.simulate(graph, XEON, 4).makespan
        )
        s8 = (
            pol.simulate(graph, XEON, 1).makespan
            / pol.simulate(graph, XEON, 8).makespan
        )
        # Same-table streaming cap: going 4 -> 8 cores barely helps.
        assert s8 < s4 * 1.5

    def test_level_parallel_valid_and_slower_than_collaborative(self, graph):
        lvl = LevelParallelPolicy().simulate(graph, XEON, 8)
        collab = CollaborativePolicy().simulate(graph, XEON, 8)
        assert lvl.makespan > collab.makespan

    def test_openmp_single_core_close_to_serial(self, graph):
        omp = OpenMPPolicy().simulate(graph, XEON, 1).makespan
        serial = SerialPolicy().simulate(graph, XEON).makespan
        assert omp == pytest.approx(serial, rel=0.01)


class TestCentralizedPolicy:
    def test_execution_time_rises_past_saturation(self):
        tree = template_tree(3, num_cliques=128, clique_width=20)
        graph = build_task_graph(tree)
        pol = CentralizedPolicy()
        times = {
            p: pol.simulate(graph, IBM_P655, p).makespan
            for p in (1, 2, 4, 8, 16)
        }
        assert times[4] < times[1]
        # Coordination dominates well past the knee: more processors now
        # make execution *slower*, the paper's Fig. 6 observation.
        assert times[8] > times[4]
        assert times[16] > times[8]

    def test_single_core_includes_dispatch(self, graph):
        pnl = CentralizedPolicy().simulate(graph, IBM_P655, 1).makespan
        serial = SerialPolicy().simulate(graph, IBM_P655).makespan
        assert pnl > serial


class TestPlatformProfiles:
    def test_memory_scale_grows(self):
        assert XEON.memory_scale(8) > XEON.memory_scale(1) == 1.0

    def test_lock_contention_grows(self):
        assert XEON.lock_overhead(8) > XEON.lock_overhead(1)

    def test_task_sched_overhead_single_core_has_no_locks(self):
        assert XEON.task_sched_overhead(1) == XEON.sched_overhead

    def test_streamed_duration_caps(self):
        unlimited = XEON.streamed_duration(1e9, 100, 8)
        expected = 1e9 / XEON.flops_per_second / XEON.stream_cap
        assert unlimited == pytest.approx(
            expected * XEON.memory_scale(8)
        )

    def test_streamed_duration_static_is_slower(self):
        dynamic = XEON.streamed_duration(1e9, 8, 8, static=False)
        static = XEON.streamed_duration(1e9, 8, 8, static=True)
        assert static > dynamic

    def test_dispatch_latency_grows_with_cores_and_size(self):
        small = IBM_P655.dispatch_latency(2, 0.001)
        big = IBM_P655.dispatch_latency(8, 0.001)
        assert big > small
        sized = IBM_P655.dispatch_latency(8, 0.1)
        assert sized > big

    def test_opteron_slower_than_xeon(self):
        assert OPTERON.flops_per_second < XEON.flops_per_second


class TestSimResultMetrics:
    def test_speedup_over(self, graph):
        pol = CollaborativePolicy()
        base = pol.simulate(graph, XEON, 1)
        fast = pol.simulate(graph, XEON, 8)
        assert fast.speedup_over(base) == pytest.approx(
            base.makespan / fast.makespan
        )

    def test_utilization_in_unit_interval(self, graph):
        result = CollaborativePolicy().simulate(graph, XEON, 8)
        assert 0.0 < result.utilization() <= 1.0
