"""Tests for the synthetic junction-tree generators."""

import numpy as np
import pytest

from repro.jt.generation import (
    PAPER_TREES,
    paper_tree,
    parameter_sweep_tree,
    synthetic_tree,
    template_tree,
)
from repro.jt.validate import check_running_intersection, check_tree_structure


class TestTemplateTree:
    @pytest.mark.parametrize("b", [1, 2, 4, 8])
    def test_structure_matches_figure4(self, b):
        tree = template_tree(b, num_cliques=101, clique_width=5)
        check_tree_structure(tree)
        check_running_intersection(tree)
        junction = tree.num_cliques - 1
        # The junction clique joins branch 0 (its parent chain) with the
        # other b branches (its children).
        assert len(tree.children[junction]) == b
        # The original root is the far end of branch 0: a chain head.
        assert tree.root == 0
        assert len(tree.children[0]) == 1

    def test_clique_count_exact(self):
        tree = template_tree(3, num_cliques=57, clique_width=4)
        assert tree.num_cliques == 57

    def test_uniform_widths(self):
        tree = template_tree(2, num_cliques=31, clique_width=6)
        assert all(c.width == 6 for c in tree.cliques)

    def test_branch_lengths_balanced(self):
        tree = template_tree(3, num_cliques=41, clique_width=4)
        junction = tree.num_cliques - 1
        # Depth of the deepest leaf under each branch differs by at most 1.
        depths = [tree.depth_of(leaf) for leaf in tree.leaves()]
        assert max(depths) - min(depths) <= 2

    def test_too_few_cliques_rejected(self):
        with pytest.raises(ValueError, match="at least"):
            template_tree(8, num_cliques=5)

    def test_bad_branch_count_rejected(self):
        with pytest.raises(ValueError):
            template_tree(0)

    def test_paper_default_dimensions(self):
        tree = template_tree(1)
        assert tree.num_cliques == 512
        assert all(c.width == 15 for c in tree.cliques)
        assert all(set(c.cardinalities) == {2} for c in tree.cliques)


class TestSyntheticTree:
    def test_clique_count(self):
        tree = synthetic_tree(40, clique_width=4, seed=0)
        assert tree.num_cliques == 40

    def test_structure_valid(self):
        for seed in range(4):
            tree = synthetic_tree(
                50, clique_width=5, avg_children=3, seed=seed
            )
            check_tree_structure(tree)
            check_running_intersection(tree)

    def test_widths_within_jitter(self):
        tree = synthetic_tree(
            60, clique_width=10, width_jitter=2, seed=1
        )
        widths = [c.width for c in tree.cliques]
        assert all(8 <= w <= 12 for w in widths)

    def test_zero_jitter_gives_uniform_widths(self):
        tree = synthetic_tree(30, clique_width=6, width_jitter=0, seed=2)
        assert all(c.width == 6 for c in tree.cliques)

    def test_states_respected(self):
        tree = synthetic_tree(20, clique_width=4, states=3, seed=3)
        assert all(set(c.cardinalities) == {3} for c in tree.cliques)

    def test_seed_reproducibility(self):
        a = synthetic_tree(30, clique_width=5, seed=5)
        b = synthetic_tree(30, clique_width=5, seed=5)
        assert a.parent == b.parent
        assert [c.variables for c in a.cliques] == [
            c.variables for c in b.cliques
        ]

    def test_avg_children_influences_depth(self):
        bushy = synthetic_tree(100, clique_width=4, avg_children=6, seed=6)
        lanky = synthetic_tree(100, clique_width=4, avg_children=1, seed=6)
        bushy_depth = max(bushy.depth_of(i) for i in bushy.leaves())
        lanky_depth = max(lanky.depth_of(i) for i in lanky.leaves())
        assert bushy_depth < lanky_depth

    def test_separator_width_override(self):
        tree = synthetic_tree(
            20, clique_width=5, separator_width=2, width_jitter=0, seed=7
        )
        for child in range(tree.num_cliques):
            parent = tree.parent[child]
            if parent is not None:
                assert len(tree.separator(child, parent)) <= 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            synthetic_tree(0, clique_width=4)
        with pytest.raises(ValueError):
            synthetic_tree(5, clique_width=0)
        with pytest.raises(ValueError):
            synthetic_tree(5, clique_width=4, width_jitter=9)


class TestPaperTrees:
    @pytest.mark.parametrize("which", [1, 2, 3])
    def test_parameters_match_section7(self, which):
        n, w, r, k = PAPER_TREES[which]
        tree = paper_tree(which)
        assert tree.num_cliques == n
        widths = [c.width for c in tree.cliques]
        assert abs(sum(widths) / len(widths) - w) <= w * 0.25
        assert all(set(c.cardinalities) == {r} for c in tree.cliques)

    def test_unknown_tree_rejected(self):
        with pytest.raises(ValueError):
            paper_tree(4)

    def test_sweep_tree_defaults_are_jt1(self):
        tree = parameter_sweep_tree()
        assert tree.num_cliques == 512
