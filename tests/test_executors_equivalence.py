"""All executors must produce identical calibrated potentials."""

import numpy as np
import pytest

from repro.jt.generation import synthetic_tree, template_tree
from repro.sched.baselines import DataParallelExecutor, LevelParallelExecutor
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.serial import SerialExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState


def _run(tree, executor, evidence=None):
    graph = build_task_graph(tree)
    state = PropagationState(tree, evidence)
    stats = executor.run(graph, state)
    return state, stats


@pytest.fixture
def tree():
    t = synthetic_tree(16, clique_width=4, states=2, avg_children=3, seed=33)
    t.initialize_potentials(np.random.default_rng(33))
    return t


@pytest.fixture
def reference(tree):
    state, _ = _run(tree, SerialExecutor())
    return state


def _assert_same_potentials(tree, a, b):
    for i in range(tree.num_cliques):
        assert np.allclose(
            a.potentials[i].values, b.potentials[i].values
        ), f"clique {i} differs"


class TestCollaborativeEquivalence:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_matches_serial(self, tree, reference, threads):
        state, _ = _run(tree, CollaborativeExecutor(num_threads=threads))
        _assert_same_potentials(tree, reference, state)

    @pytest.mark.parametrize("delta", [1, 4, 16, 64])
    def test_partitioning_preserves_results(self, tree, reference, delta):
        state, stats = _run(
            tree,
            CollaborativeExecutor(num_threads=4, partition_threshold=delta),
        )
        _assert_same_potentials(tree, reference, state)
        if delta <= 8:
            assert stats.tasks_partitioned > 0

    @pytest.mark.parametrize(
        "allocation", ["min-workload", "round-robin", "random"]
    )
    def test_allocation_heuristics_equivalent(self, tree, reference, allocation):
        state, _ = _run(
            tree, CollaborativeExecutor(num_threads=3, allocation=allocation)
        )
        _assert_same_potentials(tree, reference, state)

    @pytest.mark.parametrize("fetch", ["fifo", "largest-first"])
    def test_fetch_policies_equivalent(self, tree, reference, fetch):
        state, _ = _run(tree, CollaborativeExecutor(num_threads=3, fetch=fetch))
        _assert_same_potentials(tree, reference, state)

    def test_with_evidence(self, tree):
        var = tree.cliques[4].variables[1]
        serial, _ = _run(tree, SerialExecutor(), {var: 1})
        collab, _ = _run(
            tree,
            CollaborativeExecutor(num_threads=4, partition_threshold=4),
            {var: 1},
        )
        _assert_same_potentials(tree, serial, collab)

    def test_repeated_runs_are_deterministic(self, tree):
        a, _ = _run(tree, CollaborativeExecutor(num_threads=4))
        b, _ = _run(tree, CollaborativeExecutor(num_threads=4))
        _assert_same_potentials(tree, a, b)


class TestBaselineEquivalence:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_level_parallel_matches_serial(self, tree, reference, threads):
        state, _ = _run(tree, LevelParallelExecutor(num_threads=threads))
        _assert_same_potentials(tree, reference, state)

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_data_parallel_matches_serial(self, tree, reference, threads):
        state, _ = _run(tree, DataParallelExecutor(num_threads=threads))
        _assert_same_potentials(tree, reference, state)

    def test_template_tree_all_executors(self):
        tree = template_tree(2, num_cliques=25, clique_width=4)
        tree.initialize_potentials(np.random.default_rng(1))
        serial, _ = _run(tree, SerialExecutor())
        for executor in (
            CollaborativeExecutor(num_threads=4, partition_threshold=4),
            LevelParallelExecutor(num_threads=4),
            DataParallelExecutor(num_threads=4),
        ):
            state, _ = _run(tree, executor)
            _assert_same_potentials(tree, serial, state)


class TestExecutorValidation:
    def test_bad_thread_count_rejected(self):
        with pytest.raises(ValueError):
            CollaborativeExecutor(num_threads=0)
        with pytest.raises(ValueError):
            LevelParallelExecutor(num_threads=0)
        with pytest.raises(ValueError):
            DataParallelExecutor(num_threads=-1)

    def test_bad_partition_threshold_rejected(self):
        with pytest.raises(ValueError):
            CollaborativeExecutor(partition_threshold=0)

    def test_bad_allocation_rejected(self):
        with pytest.raises(ValueError, match="allocation"):
            CollaborativeExecutor(allocation="clairvoyant")

    def test_bad_fetch_rejected(self):
        with pytest.raises(ValueError, match="fetch"):
            CollaborativeExecutor(fetch="psychic")


class TestCollaborativeStats:
    def test_all_tasks_accounted(self, tree):
        graph = build_task_graph(tree)
        state = PropagationState(tree)
        stats = CollaborativeExecutor(num_threads=4).run(graph, state)
        assert stats.tasks_executed == graph.num_tasks
        assert sum(stats.tasks_per_thread) == graph.num_tasks

    def test_partition_stats(self, tree):
        graph = build_task_graph(tree)
        state = PropagationState(tree)
        stats = CollaborativeExecutor(
            num_threads=4, partition_threshold=4
        ).run(graph, state)
        assert stats.tasks_partitioned > 0
        assert stats.chunks_executed > stats.tasks_partitioned

    def test_worker_exception_propagates(self, tree):
        graph = build_task_graph(tree)

        class Broken:
            def __getattr__(self, name):
                raise RuntimeError("broken state")

        with pytest.raises(RuntimeError, match="broken state"):
            CollaborativeExecutor(num_threads=2).run(graph, Broken())

    def test_sched_ratio_between_zero_and_one(self, tree):
        graph = build_task_graph(tree)
        state = PropagationState(tree)
        stats = CollaborativeExecutor(num_threads=2).run(graph, state)
        assert 0.0 <= stats.sched_ratio() <= 1.0
        assert stats.load_imbalance() >= 1.0
