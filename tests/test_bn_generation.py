"""Tests for random network generators."""

import numpy as np
import pytest

from repro.bn.generation import chain_network, naive_bayes_network, random_network


class TestRandomNetwork:
    def test_size_and_cpts(self):
        bn = random_network(12, cardinality=3, seed=0)
        assert bn.num_variables == 12
        assert bn.cardinalities == (3,) * 12
        assert bn.has_all_cpts()

    def test_acyclic_by_construction(self):
        bn = random_network(30, max_parents=5, edge_probability=0.9, seed=1)
        order = bn.topological_order()
        assert len(order) == 30

    def test_max_parents_respected(self):
        bn = random_network(25, max_parents=2, edge_probability=1.0, seed=2)
        assert all(len(bn.parents(v)) <= 2 for v in range(25))

    def test_seed_reproducibility(self):
        a = random_network(15, seed=99)
        b = random_network(15, seed=99)
        assert a.edges() == b.edges()
        for v in range(15):
            assert np.allclose(a.cpt(v).values, b.cpt(v).values)

    def test_different_seeds_differ(self):
        a = random_network(15, edge_probability=0.5, seed=1)
        b = random_network(15, edge_probability=0.5, seed=2)
        assert a.edges() != b.edges() or not np.allclose(
            a.cpt(0).values, b.cpt(0).values
        )

    def test_zero_edge_probability_gives_empty_graph(self):
        bn = random_network(10, edge_probability=0.0, seed=0)
        assert bn.edges() == []

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_network(0)
        with pytest.raises(ValueError):
            random_network(5, max_parents=-1)
        with pytest.raises(ValueError):
            random_network(5, edge_probability=1.5)


class TestChainNetwork:
    def test_structure(self):
        bn = chain_network(6, seed=0)
        assert bn.edges() == [(v, v + 1) for v in range(5)]

    def test_single_node(self):
        bn = chain_network(1, seed=0)
        assert bn.edges() == []
        assert bn.has_all_cpts()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            chain_network(0)


class TestNaiveBayes:
    def test_structure(self):
        bn = naive_bayes_network(4, seed=0)
        assert bn.num_variables == 5
        assert sorted(bn.children(0)) == [1, 2, 3, 4]
        for f in range(1, 5):
            assert bn.parents(f) == (0,)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            naive_bayes_network(0)
