"""Property-based round-trips: serialization and log-domain propagation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bn.generation import random_network
from repro.inference.propagation import (
    marginal_from_potentials,
    propagate_reference,
)
from repro.io.json_io import (
    network_from_dict,
    network_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.jt.build import junction_tree_from_network
from repro.jt.generation import synthetic_tree
from repro.potential.logspace import (
    LogTable,
    log_marginal,
    propagate_reference_log,
)
from repro.potential.primitives import marginalize
from repro.potential.table import PotentialTable


@st.composite
def networks(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=2, max_value=10))
    card = draw(st.integers(min_value=2, max_value=3))
    prob = draw(st.floats(min_value=0.0, max_value=1.0))
    return random_network(
        n, cardinality=card, max_parents=3, edge_probability=prob, seed=seed
    )


@given(networks())
@settings(max_examples=30, deadline=None)
def test_network_roundtrip_preserves_everything(bn):
    twin = network_from_dict(network_to_dict(bn))
    assert twin.cardinalities == bn.cardinalities
    assert sorted(twin.edges()) == sorted(bn.edges())
    for v in range(bn.num_variables):
        original = bn.cpt(v)
        assert np.allclose(
            twin.cpt(v).aligned_to(original.variables).values,
            original.values,
        )


@given(networks())
@settings(max_examples=25, deadline=None)
def test_tree_roundtrip_preserves_inference(bn):
    jt = junction_tree_from_network(bn)
    twin = tree_from_dict(tree_to_dict(jt))
    original = propagate_reference(jt)
    restored = propagate_reference(twin)
    for v in range(bn.num_variables):
        assert np.allclose(
            marginal_from_potentials(jt, original, v),
            marginal_from_potentials(twin, restored, v),
        )


@given(networks(), st.data())
@settings(max_examples=25, deadline=None)
def test_log_propagation_matches_linear(bn, data):
    jt = junction_tree_from_network(bn)
    evidence = {}
    if data.draw(st.booleans()):
        var = data.draw(
            st.integers(min_value=0, max_value=bn.num_variables - 1)
        )
        state = data.draw(
            st.integers(min_value=0, max_value=bn.cardinalities[var] - 1)
        )
        evidence[var] = state
    linear = propagate_reference(jt, evidence)
    logdomain = propagate_reference_log(jt, evidence)
    if linear[jt.root].total() == 0:
        return  # zero-probability evidence: posteriors undefined
    for v in range(bn.num_variables):
        if v in evidence:
            continue
        assert np.allclose(
            log_marginal(jt, logdomain, v),
            marginal_from_potentials(jt, linear, v),
            atol=1e-9,
        )


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    variables = draw(
        st.lists(
            st.integers(min_value=0, max_value=6),
            min_size=n, max_size=n, unique=True,
        )
    )
    cards = draw(
        st.lists(
            st.integers(min_value=2, max_value=3), min_size=n, max_size=n
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return PotentialTable.random(
        variables, cards, np.random.default_rng(seed), low=0.01, high=3.0
    )


@given(tables(), st.data())
@settings(max_examples=40, deadline=None)
def test_log_marginalize_matches_linear_everywhere(table, data):
    keep = data.draw(st.lists(st.sampled_from(table.variables), unique=True))
    log = LogTable.from_linear(table).marginalize(tuple(keep))
    lin = marginalize(table, tuple(keep))
    assert np.allclose(np.exp(log.logs), lin.values, rtol=1e-9)


@given(tables())
@settings(max_examples=40, deadline=None)
def test_log_total_matches_linear(table):
    log = LogTable.from_linear(table)
    assert np.isclose(np.exp(log.log_total()), table.total())
