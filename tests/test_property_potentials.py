"""Property-based tests (hypothesis) for potential-table invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.potential.partition import chunk_ranges, extend_chunk, marginalize_chunk
from repro.potential.primitives import divide, extend, marginalize, multiply
from repro.potential.table import PotentialTable


@st.composite
def scopes(draw, max_vars=4, max_card=4):
    """A random scope: variable ids with cardinalities."""
    n = draw(st.integers(min_value=1, max_value=max_vars))
    variables = draw(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    cards = draw(
        st.lists(
            st.integers(min_value=2, max_value=max_card),
            min_size=n,
            max_size=n,
        )
    )
    return tuple(variables), tuple(cards)


@st.composite
def tables(draw, max_vars=4, max_card=4):
    variables, cards = draw(scopes(max_vars, max_card))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return PotentialTable.random(
        variables, cards, np.random.default_rng(seed), low=0.1, high=2.0
    )


@given(tables(), st.data())
@settings(max_examples=60, deadline=None)
def test_marginalization_preserves_mass(table, data):
    keep = data.draw(
        st.lists(st.sampled_from(table.variables), unique=True)
    )
    marg = marginalize(table, keep)
    assert np.isclose(marg.total(), table.total())


@given(tables(), st.data())
@settings(max_examples=60, deadline=None)
def test_extend_then_marginalize_roundtrip(table, data):
    """Extending by fresh variables then summing them out scales by their size."""
    extra = data.draw(
        st.lists(
            st.integers(min_value=20, max_value=25), unique=True, max_size=2
        )
    )
    cards = data.draw(
        st.lists(
            st.integers(min_value=2, max_value=3),
            min_size=len(extra),
            max_size=len(extra),
        )
    )
    target_vars = table.variables + tuple(extra)
    target_cards = table.cardinalities + tuple(cards)
    scale = int(np.prod(cards)) if cards else 1
    extended = extend(table, target_vars, target_cards)
    back = marginalize(extended, table.variables)
    assert np.allclose(back.values, table.values * scale)


@given(tables(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_divide_multiply_roundtrip(table, seed):
    other = PotentialTable.random(
        table.variables,
        table.cardinalities,
        np.random.default_rng(seed),
        low=0.1,
        high=2.0,
    )
    assert np.allclose(
        multiply(divide(table, other), other).values, table.values
    )


@given(tables(), st.data())
@settings(max_examples=60, deadline=None)
def test_alignment_invariance_of_marginalization(table, data):
    """Marginalizing an axis-permuted table gives the same answer."""
    perm = data.draw(st.permutations(table.variables))
    keep = data.draw(st.lists(st.sampled_from(table.variables), unique=True))
    a = marginalize(table, keep)
    b = marginalize(table.aligned_to(perm), keep)
    assert np.allclose(a.values, b.values)


@given(tables(max_vars=3), st.integers(min_value=1, max_value=7))
@settings(max_examples=60, deadline=None)
def test_chunked_marginalization_matches_whole(table, max_chunk):
    keep = table.variables[::2]
    whole = marginalize(table, keep)
    acc = np.zeros(whole.size)
    for lo, hi in chunk_ranges(table.size, max_chunk):
        acc += marginalize_chunk(table, keep, lo, hi).values.reshape(-1)
    assert np.allclose(acc, whole.values.reshape(-1))


@given(tables(max_vars=3), st.integers(min_value=1, max_value=7))
@settings(max_examples=60, deadline=None)
def test_chunked_extension_matches_whole(table, max_chunk):
    target_vars = table.variables + (30,)
    target_cards = table.cardinalities + (3,)
    whole = extend(table, target_vars, target_cards)
    parts = [
        extend_chunk(table, target_vars, target_cards, lo, hi)
        for lo, hi in chunk_ranges(whole.size, max_chunk)
    ]
    assert np.allclose(np.concatenate(parts), whole.values.reshape(-1))


@given(tables())
@settings(max_examples=60, deadline=None)
def test_normalize_is_idempotent(table):
    once = table.normalize()
    twice = once.normalize()
    assert np.allclose(once.values, twice.values)
    assert np.isclose(once.total(), 1.0)


@given(tables(), st.data())
@settings(max_examples=60, deadline=None)
def test_reduce_then_marginalize_selects_slice(table, data):
    var = data.draw(st.sampled_from(table.variables))
    state = data.draw(
        st.integers(min_value=0, max_value=table.card_of(var) - 1)
    )
    reduced = table.reduce({var: state})
    marg = marginalize(reduced, (var,))
    expected = np.zeros(table.card_of(var))
    expected[state] = marginalize(table, (var,)).values[state]
    assert np.allclose(marg.values, expected)
