"""Differential batch-vs-serial exactness suite.

The batching contract is absolute: column ``i`` of a batched propagation
equals a fresh single-case serial run of case ``i`` at 1e-9 — for every
evidence mix (empty, all-hard, all-soft, mixed), every batch size
(including B=1 and B much larger than the serve tier's queue depth), and
every executor that accepts batched states.  The serial single-case run
is the oracle; nothing here is compared against another batched run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.inference.engine import InferenceEngine
from repro.jt.generation import synthetic_tree
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.faults import TaskExecutionError
from repro.sched.process import ProcessSharedMemoryExecutor
from repro.sched.serial import SerialExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState

RTOL = 1e-9
ATOL = 1e-12

# Executors exercised on batched states.  The collaborative tier gets a
# tiny partition threshold so the batched *chunked* execution path
# (batch-major flat index space) is exercised, not just whole-task numpy.
BATCH_EXECUTORS = [
    ("serial", lambda: SerialExecutor()),
    (
        "collaborative",
        lambda: CollaborativeExecutor(num_threads=3, partition_threshold=16),
    ),
]


def _tree(seed, num_cliques=10, width=3, states=2, children=2):
    tree = synthetic_tree(
        num_cliques,
        clique_width=width,
        states=states,
        avg_children=children,
        seed=seed,
    )
    tree.initialize_potentials(np.random.default_rng(seed))
    return tree


def _tree_variables(tree):
    variables = set()
    for clique in tree.cliques:
        variables.update(clique.variables)
    return sorted(variables)


def _card_of(tree, var):
    return next(c.card_of(var) for c in tree.cliques if var in c.variables)


def _random_cases(tree, rng, batch, mode):
    """One evidence batch: ``(hard, soft)`` per case, in the given mode."""
    variables = _tree_variables(tree)
    cases = []
    for _ in range(batch):
        hard, soft = {}, {}
        if mode == "empty":
            pass
        elif mode == "hard":
            for var in rng.choice(variables, size=2, replace=False):
                var = int(var)
                hard[var] = int(rng.integers(_card_of(tree, var)))
        elif mode == "soft":
            for var in rng.choice(variables, size=2, replace=False):
                var = int(var)
                soft[var] = rng.uniform(0.2, 1.0, size=_card_of(tree, var))
        elif mode == "mixed":
            picks = rng.choice(variables, size=3, replace=False)
            hard[int(picks[0])] = int(rng.integers(_card_of(tree, int(picks[0]))))
            soft[int(picks[1])] = rng.uniform(
                0.2, 1.0, size=_card_of(tree, int(picks[1]))
            )
            if rng.integers(2):
                hard[int(picks[2])] = int(
                    rng.integers(_card_of(tree, int(picks[2])))
                )
        else:  # pragma: no cover - guard against typo'd parametrization
            raise ValueError(mode)
        cases.append((hard, soft))
    return cases


def _serial_oracles(tree, cases):
    graph = build_task_graph(tree)
    oracles = []
    for hard, soft in cases:
        state = PropagationState(tree, hard, soft_evidence=soft)
        SerialExecutor().run(graph, state)
        oracles.append(state)
    return oracles


def _assert_batch_matches(tree, batched, oracles, label):
    assert batched.batch == len(oracles)
    variables = _tree_variables(tree)
    likelihoods = batched.likelihood()
    for i, oracle in enumerate(oracles):
        for c in range(tree.num_cliques):
            ref = oracle.potentials[c]
            got = batched.potentials[c].case(i).aligned_to(ref.variables)
            np.testing.assert_allclose(
                got.values, ref.values, rtol=RTOL, atol=ATOL,
                err_msg=f"{label}: case {i} clique {c}",
            )
        np.testing.assert_allclose(
            likelihoods[i], oracle.likelihood(), rtol=RTOL, atol=ATOL,
            err_msg=f"{label}: case {i} likelihood",
        )
        for var in variables:
            np.testing.assert_allclose(
                batched.marginal(var)[i], oracle.marginal(var),
                rtol=RTOL, atol=ATOL,
                err_msg=f"{label}: case {i} marginal({var})",
            )


# --------------------------------------------------------------------- #
# State-level differential suite
# --------------------------------------------------------------------- #


class TestBatchedPropagationState:
    @pytest.mark.parametrize("mode", ["empty", "hard", "soft", "mixed"])
    @pytest.mark.parametrize(
        "executor_name,executor_factory", BATCH_EXECUTORS,
        ids=[name for name, _ in BATCH_EXECUTORS],
    )
    def test_batched_column_equals_serial_case(
        self, mode, executor_name, executor_factory
    ):
        tree = _tree(seed=11)
        rng = np.random.default_rng(101)
        cases = _random_cases(tree, rng, batch=5, mode=mode)
        oracles = _serial_oracles(tree, cases)
        batched = PropagationState.batched(tree, cases)
        executor_factory().run(build_task_graph(tree, batch=5), batched)
        _assert_batch_matches(
            tree, batched, oracles, f"{executor_name}/{mode}"
        )

    @pytest.mark.parametrize("batch", [1, 48])
    def test_degenerate_and_oversized_batches(self, batch):
        # B=1 must behave exactly like the single-case path, and a batch
        # far larger than the serve tier's queue depth (max_queue=32 by
        # default) must stay exact — size never trades off correctness.
        tree = _tree(seed=13, num_cliques=6)
        rng = np.random.default_rng(202)
        cases = _random_cases(tree, rng, batch=batch, mode="mixed")
        oracles = _serial_oracles(tree, cases)
        batched = PropagationState.batched(tree, cases)
        SerialExecutor().run(build_task_graph(tree, batch=batch), batched)
        _assert_batch_matches(tree, batched, oracles, f"B={batch}")

    @pytest.mark.parametrize("seed", [31, 32, 33])
    def test_randomized_trees_collaborative(self, seed):
        tree = _tree(seed=seed, num_cliques=12, width=4)
        rng = np.random.default_rng(seed)
        cases = _random_cases(tree, rng, batch=4, mode="mixed")
        oracles = _serial_oracles(tree, cases)
        batched = PropagationState.batched(tree, cases)
        CollaborativeExecutor(num_threads=3, partition_threshold=8).run(
            build_task_graph(tree, batch=4), batched
        )
        _assert_batch_matches(tree, batched, oracles, f"seed={seed}")

    def test_from_cases_stacks_propagated_singles(self):
        tree = _tree(seed=17, num_cliques=6)
        rng = np.random.default_rng(303)
        cases = _random_cases(tree, rng, batch=3, mode="hard")
        oracles = _serial_oracles(tree, cases)
        stacked = PropagationState.from_cases(oracles)
        fresh = PropagationState.batched(tree, cases)
        SerialExecutor().run(build_task_graph(tree, batch=3), fresh)
        for c in range(tree.num_cliques):
            np.testing.assert_allclose(
                stacked.potentials[c].values,
                fresh.potentials[c].values,
                rtol=RTOL, atol=ATOL,
            )

    def test_impossible_case_stays_zero_without_corrupting_others(self):
        # One batch column carries contradictory evidence (zero mass);
        # its posteriors are all-zero, the other columns stay exact.
        tree = _tree(seed=19, num_cliques=5)
        rng = np.random.default_rng(404)
        var = _tree_variables(tree)[0]
        card = _card_of(tree, var)
        near_zero_soft = {var: np.full(card, 1e-300)}
        cases = [
            ({}, {}),
            ({}, near_zero_soft),
            _random_cases(tree, rng, 1, "hard")[0],
        ]
        oracles = _serial_oracles(tree, cases)
        batched = PropagationState.batched(tree, cases)
        SerialExecutor().run(build_task_graph(tree, batch=3), batched)
        _assert_batch_matches(tree, batched, oracles, "near-zero-mass")

    def test_process_executor_refuses_batched_state(self):
        tree = _tree(seed=23, num_cliques=4)
        cases = [({}, {}), ({}, {})]
        batched = PropagationState.batched(tree, cases)
        executor = ProcessSharedMemoryExecutor(num_workers=1)
        with pytest.raises(TaskExecutionError):
            executor.run(build_task_graph(tree, batch=2), batched)

    def test_incremental_refuses_batched_previous_state(self):
        tree = _tree(seed=23, num_cliques=4)
        batched = PropagationState.batched(tree, [({}, {})])
        with pytest.raises(ValueError):
            PropagationState.incremental(batched, evidence={})


# --------------------------------------------------------------------- #
# Engine-level differential suite
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def batch_network():
    return random_network(
        12, cardinality=2, max_parents=3, edge_probability=0.7, seed=77
    )


class TestEngineBatchAPI:
    @pytest.mark.parametrize(
        "executor_name,executor_factory", BATCH_EXECUTORS,
        ids=[name for name, _ in BATCH_EXECUTORS],
    )
    def test_query_batch_matches_fresh_single_engines(
        self, batch_network, executor_name, executor_factory
    ):
        rng = np.random.default_rng(55)
        deltas = [
            {},
            {0: 1},
            {1: 0, 3: 1},
            {2: rng.uniform(0.2, 1.0, size=2)},
            {0: 0, 4: rng.uniform(0.2, 1.0, size=2)},
        ]
        engine = InferenceEngine.from_network(batch_network)
        answers = engine.query_batch(deltas, executor=executor_factory())
        assert len(answers) == len(deltas)
        for delta, answer in zip(deltas, answers):
            oracle = InferenceEngine.from_network(batch_network)
            exact = oracle.query(delta)
            assert set(answer) == set(exact)
            for var in exact:
                np.testing.assert_allclose(
                    answer[var], exact[var], rtol=RTOL, atol=ATOL,
                    err_msg=f"{executor_name}: delta={delta} var={var}",
                )

    def test_propagate_batch_shapes_and_exactness(self, batch_network):
        engine = InferenceEngine.from_network(batch_network)
        deltas = [{}, {0: 1}, {5: 0}]
        state = engine.propagate_batch(deltas)
        assert state.batch == 3
        assert state.likelihood().shape == (3,)
        assert state.marginal(2).shape[0] == 3
        for i, delta in enumerate(deltas):
            oracle = InferenceEngine.from_network(batch_network)
            exact = oracle.query(delta, vars=[2])
            np.testing.assert_allclose(
                state.marginal(2)[i], exact[2], rtol=RTOL, atol=ATOL
            )

    def test_process_tier_falls_back_per_case(self, batch_network):
        # An executor that refuses batched states still serves the batch
        # API: the engine runs each case separately and stacks results.
        engine = InferenceEngine.from_network(batch_network)
        executor = ProcessSharedMemoryExecutor(num_workers=2)
        deltas = [{}, {0: 1}]
        answers = engine.query_batch(deltas, executor=executor)
        for delta, answer in zip(deltas, answers):
            oracle = InferenceEngine.from_network(batch_network)
            exact = oracle.query(delta)
            for var in exact:
                np.testing.assert_allclose(
                    answer[var], exact[var], rtol=RTOL, atol=ATOL
                )

    def test_single_case_machinery_untouched_by_batch(self, batch_network):
        engine = InferenceEngine.from_network(batch_network)
        engine.set_evidence({0: 1})
        engine.propagate()
        before = engine.marginal(3).copy()
        engine.query_batch([{}, {1: 0}, {4: 1}])
        assert engine._state.batch is None
        np.testing.assert_allclose(engine.marginal(3), before, atol=0)

    def test_empty_batch(self, batch_network):
        engine = InferenceEngine.from_network(batch_network)
        assert engine.query_batch([]) == []
        with pytest.raises(ValueError):
            engine.propagate_batch([])


# --------------------------------------------------------------------- #
# Satellite fix: per-case cache keying
# --------------------------------------------------------------------- #


class TestBatchCacheKeying:
    def test_single_query_hits_cache_after_batch_warmup(self, batch_network):
        engine = InferenceEngine.from_network(batch_network)
        deltas = [{0: 1}, {1: 0, 3: 1}, {}]
        warm = engine.query_batch(deltas)
        hits, misses = engine.cache.hits, engine.cache.misses
        # The same findings as batch case 0, now as a plain single query:
        # every marginal must come out of the cache (no new misses).
        single = engine.query({0: 1})
        assert engine.cache.misses == misses
        assert engine.cache.hits > hits
        for var, values in single.items():
            np.testing.assert_allclose(
                values, warm[0][var], rtol=0, atol=0
            )

    def test_batch_skips_fully_cached_cases(self, batch_network):
        engine = InferenceEngine.from_network(batch_network)
        first = engine.query_batch([{2: 1}])
        hits = engine.cache.hits
        # Same case again plus one new one: the repeated case is answered
        # entirely from cache and only the new case propagates — and both
        # answers are still exact.
        again = engine.query_batch([{2: 1}, {6: 0}])
        assert engine.cache.hits > hits
        for var in first[0]:
            np.testing.assert_allclose(again[0][var], first[0][var], atol=0)
        oracle = InferenceEngine.from_network(batch_network)
        exact = oracle.query({6: 0})
        for var in exact:
            np.testing.assert_allclose(
                again[1][var], exact[var], rtol=RTOL, atol=ATOL
            )

    def test_likelihood_cached_per_case(self, batch_network):
        from repro.inference.evidence import Evidence

        engine = InferenceEngine.from_network(batch_network)
        engine.query_batch([{0: 1}, {}])
        oracle = InferenceEngine.from_network(batch_network)
        oracle.set_evidence({0: 1})
        oracle.propagate()
        sig = Evidence({0: 1}).signature()
        cached = engine.cache.get_likelihood(sig)
        assert cached is not None
        np.testing.assert_allclose(cached, oracle.likelihood(), rtol=RTOL)
