"""Fault-injection, crash-recovery, and degradation-cascade tests.

Covers the fault-tolerant execution layer end to end:

* :class:`~repro.sched.faults.FaultPlan` one-shot semantics and validation.
* :class:`~repro.sched.faults.TaskExecutionError` attribution + pickling
  (``concurrent.futures`` round-trips worker exceptions through pickle).
* The numerical health guard (:func:`~repro.sched.faults.scan_tables`).
* :class:`~repro.sched.process.ProcessSharedMemoryExecutor` recovery:
  SIGKILLed workers (injected and external), per-task deadlines, bounded
  retries, with results asserted against the serial oracle to 1e-9.
* :class:`~repro.sched.resilient.ResilientExecutor`: the degradation
  cascade, NaN quarantine, and the log-space underflow rescue.
* The simulator's fault hooks (``sim_kill_core`` / ``sim_delay_task``).

Pool creation is expensive; the number of process-executor ``run()``
calls is kept deliberately small.
"""

import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest

from repro.jt.generation import synthetic_tree
from repro.potential.table import PotentialTable
from repro.sched.faults import (
    FaultPlan,
    HealthReport,
    TaskExecutionError,
    check_state_health,
    corrupt_array,
    scan_tables,
)
from repro.sched.process import ProcessSharedMemoryExecutor
from repro.sched.resilient import DegradationRecord, ResilientExecutor
from repro.sched.serial import SerialExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState


def _workload(num_cliques=8, width=3, states=2, seed=11, evidence=None):
    tree = synthetic_tree(
        num_cliques, clique_width=width, states=states, avg_children=2,
        seed=seed,
    )
    tree.initialize_potentials(np.random.default_rng(seed))
    graph = build_task_graph(tree)
    reference = PropagationState(tree, evidence)
    SerialExecutor().run(graph, reference)
    return tree, graph, reference


def _assert_matches(tree, reference, state):
    for i in range(tree.num_cliques):
        np.testing.assert_allclose(
            state.potentials[i].values,
            reference.potentials[i].values,
            rtol=1e-9,
            atol=1e-12,
        )
    assert np.isclose(state.likelihood(), reference.likelihood(), rtol=1e-9)


# --------------------------------------------------------------------- #
# FaultPlan
# --------------------------------------------------------------------- #


class TestFaultPlan:
    def test_faults_are_one_shot(self):
        plan = FaultPlan(
            kill_before_dispatch={3: 1},
            delay_task={7: 0.5},
            corrupt_task={2: "nan"},
            sim_kill_core={4: 0},
            sim_delay_task={9: 1.0},
        )
        assert plan.take_kill(3) == 1
        assert plan.take_kill(3) is None
        assert plan.take_delay(7) == 0.5
        assert plan.take_delay(7) == 0.0
        assert plan.take_corruption(2) == "nan"
        assert plan.take_corruption(2) is None
        assert plan.take_sim_kill(4) == 0
        assert plan.take_sim_kill(4) is None
        assert plan.take_sim_delay(9) == 1.0
        assert plan.take_sim_delay(9) == 0.0

    def test_unplanned_faults_never_fire(self):
        plan = FaultPlan(delay_task={7: 0.5})
        assert plan.take_kill(0) is None
        assert plan.take_delay(6) == 0.0
        assert plan.take_corruption(7) is None
        assert not plan.take_failure(7)

    def test_failure_budget_counts_down(self):
        plan = FaultPlan(fail_task={5: 2})
        assert plan.take_failure(5)
        assert plan.take_failure(5)
        assert not plan.take_failure(5)

    def test_empty_property(self):
        assert FaultPlan().empty
        assert not FaultPlan(delay_task={0: 1.0}).empty

    def test_validation(self):
        with pytest.raises(ValueError, match="corruption mode"):
            FaultPlan(corrupt_task={0: "gremlins"})
        with pytest.raises(ValueError, match="delay"):
            FaultPlan(delay_task={0: -1.0})
        with pytest.raises(ValueError, match="fail count"):
            FaultPlan(fail_task={0: 0})


class TestTaskExecutionError:
    def test_pickle_round_trip_keeps_attribution(self):
        err = TaskExecutionError(
            "task 3 (divide, collect, edge (1, 2)) failed: boom",
            tid=3, kind="divide", phase="collect", edge=(1, 2), chunk=(0, 8),
        )
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, TaskExecutionError)
        assert clone.tid == 3
        assert clone.kind == "divide"
        assert clone.phase == "collect"
        assert clone.edge == (1, 2)
        assert clone.chunk == (0, 8)
        assert str(clone) == str(err)


class TestCorruptArray:
    def test_modes(self):
        for mode, check in [
            ("nan", lambda a: np.isnan(a).all()),
            ("inf", lambda a: np.isinf(a).all()),
            ("garbage", lambda a: (np.abs(a) == 1e300).all()),
        ]:
            flat = np.ones(6)
            corrupt_array(flat, mode)
            assert check(flat), mode


# --------------------------------------------------------------------- #
# Health guard
# --------------------------------------------------------------------- #


def _table(values):
    values = np.asarray(values, dtype=float)
    return PotentialTable((0,), (values.size,), values)


class TestHealthScan:
    def test_healthy_tables(self):
        report = scan_tables({0: _table([0.5, 0.5]), 1: _table([1.0, 0.0])})
        assert report.healthy
        assert not report.underflowed
        assert report.tables_scanned == 2
        assert "healthy" in report.summary()

    def test_detects_nan_inf_underflow(self):
        report = scan_tables({
            "a": _table([np.nan, 1.0]),
            "b": _table([np.inf, 1.0]),
            "c": _table([0.0, 0.0]),
            "d": _table([0.2, 0.8]),
        })
        assert report.nan_tables == ["a"]
        assert report.inf_tables == ["b"]
        assert report.underflowed_tables == ["c"]
        assert not report.healthy
        assert report.underflowed
        summary = report.summary()
        assert "NaN" in summary and "Inf" in summary and "underflow" in summary

    def test_check_state_health_scans_potentials(self):
        tree, graph, _ = _workload(num_cliques=4, seed=3)
        state = PropagationState(tree)
        SerialExecutor().run(graph, state)
        assert check_state_health(state).healthy

    def test_empty_report_is_healthy(self):
        assert HealthReport().healthy


# --------------------------------------------------------------------- #
# Process-executor crash recovery
# --------------------------------------------------------------------- #


class TestProcessRecovery:
    def test_injected_worker_kill_recovers_and_matches_serial(self):
        tree, graph, reference = _workload(seed=17)
        executor = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            max_retries=2,
            fault_plan=FaultPlan(kill_before_dispatch={2: 0}),
        )
        state = PropagationState(tree)
        stats = executor.run(graph, state)
        _assert_matches(tree, reference, state)
        assert stats.pool_restarts >= 1
        assert stats.workers_restarted >= 1
        kinds = {event.kind for event in stats.fault_events}
        assert "kill" in kinds
        # Replacement workers get their own stats rows past the master's.
        assert len(stats.worker_pids) > executor.num_workers + 1

    def test_external_sigkill_mid_run_recovers(self):
        tree, graph, reference = _workload(seed=29)
        # The delay stretches the run so the external kill lands mid-flight
        # (and switches the executor into resilient eager-spawn mode).
        delayed_tid = graph.tasks[0].tid
        executor = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            max_retries=2,
            fault_plan=FaultPlan(delay_task={delayed_tid: 1.5}),
        )
        state = PropagationState(tree)
        result = {}

        def target():
            result["stats"] = executor.run(graph, state)

        thread = threading.Thread(target=target)
        thread.start()
        deadline = time.monotonic() + 10.0
        killed = False
        while time.monotonic() < deadline:
            pids = executor.worker_pids()
            if pids:
                os.kill(pids[0], signal.SIGKILL)
                killed = True
                break
            time.sleep(0.01)
        thread.join(timeout=60.0)
        assert killed, "never saw a live worker pid to kill"
        assert not thread.is_alive()
        stats = result["stats"]
        _assert_matches(tree, reference, state)
        assert stats.pool_restarts >= 1

    def test_deadline_miss_retries_and_matches_serial(self):
        tree, graph, reference = _workload(seed=41)
        delayed_tid = graph.tasks[1].tid
        executor = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            task_timeout=0.4,
            max_retries=2,
            fault_plan=FaultPlan(delay_task={delayed_tid: 2.0}),
        )
        state = PropagationState(tree)
        stats = executor.run(graph, state)
        _assert_matches(tree, reference, state)
        assert stats.deadline_misses >= 1
        assert stats.retries_total >= 1
        assert stats.pool_restarts >= 1

    def test_injected_failures_consume_retry_budget(self):
        tree, graph, reference = _workload(seed=53)
        failing_tid = graph.tasks[0].tid
        executor = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            max_retries=2,
            retry_backoff=0.0,
            fault_plan=FaultPlan(fail_task={failing_tid: 2}),
        )
        state = PropagationState(tree)
        stats = executor.run(graph, state)
        _assert_matches(tree, reference, state)
        assert stats.retries_total == 2
        assert stats.pool_restarts == 0

    def test_exhausted_retries_raise_with_attribution(self):
        tree, graph, _ = _workload(num_cliques=5, seed=67)
        failing = graph.tasks[0]
        executor = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            max_retries=1,
            retry_backoff=0.0,
            fault_plan=FaultPlan(fail_task={failing.tid: 5}),
        )
        with pytest.raises(TaskExecutionError) as excinfo:
            executor.run(graph, PropagationState(tree))
        assert excinfo.value.tid == failing.tid
        assert f"task {failing.tid}" in str(excinfo.value)
        assert excinfo.value.phase == failing.phase

    def test_fail_fast_without_retry_budget(self):
        tree, graph, _ = _workload(num_cliques=5, seed=71)
        executor = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            fault_plan=FaultPlan(fail_task={graph.tasks[0].tid: 1}),
        )
        with pytest.raises(TaskExecutionError):
            executor.run(graph, PropagationState(tree))

    def test_partitioned_kill_recovers_and_matches_serial(self):
        evidence = {0: 1}
        tree, graph, reference = _workload(
            num_cliques=8, width=4, seed=83, evidence=evidence
        )
        executor = ProcessSharedMemoryExecutor(
            num_workers=2,
            partition_threshold=8,
            inline_threshold=0,
            max_retries=2,
            fault_plan=FaultPlan(kill_before_dispatch={10: 1}),
        )
        state = PropagationState(tree, evidence)
        stats = executor.run(graph, state)
        _assert_matches(tree, reference, state)
        assert stats.pool_restarts >= 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ProcessSharedMemoryExecutor(task_timeout=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            ProcessSharedMemoryExecutor(max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            ProcessSharedMemoryExecutor(retry_backoff=-0.1)
        with pytest.raises(ValueError, match="max_pool_restarts"):
            ProcessSharedMemoryExecutor(max_pool_restarts=-1)


# --------------------------------------------------------------------- #
# ResilientExecutor: cascade, quarantine, log-space rescue
# --------------------------------------------------------------------- #


class _AlwaysRaises:
    """A tier that always fails (stand-in for an unrecoverable executor)."""

    def __init__(self, message="synthetic tier failure"):
        self.message = message

    def run(self, graph, state):
        raise RuntimeError(self.message)


class TestResilientExecutor:
    def test_no_degradation_on_clean_run(self):
        tree, graph, reference = _workload(num_cliques=4, seed=5)
        state = PropagationState(tree)
        stats = ResilientExecutor(SerialExecutor()).run(graph, state)
        _assert_matches(tree, reference, state)
        assert stats.degradations == []
        assert not stats.degraded()
        assert "healthy" in stats.health

    def test_failing_primary_degrades_to_serial(self):
        tree, graph, reference = _workload(num_cliques=4, seed=7)
        state = PropagationState(tree)
        stats = ResilientExecutor(_AlwaysRaises("pool exploded")).run(
            graph, state
        )
        _assert_matches(tree, reference, state)
        assert stats.degraded()
        record = stats.degradations[0]
        assert record.from_executor == "_AlwaysRaises"
        assert record.to_executor == "SerialExecutor"
        assert "pool exploded" in record.reason

    def test_nan_result_is_quarantined_and_rerun(self):
        tree, graph, reference = _workload(seed=13)
        primary = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            fault_plan=FaultPlan(corrupt_task={graph.tasks[0].tid: "nan"}),
        )
        state = PropagationState(tree)
        stats = ResilientExecutor(primary).run(graph, state)
        # The corrupted tier's result never leaks into the final state.
        _assert_matches(tree, reference, state)
        assert stats.degraded()
        assert any("unhealthy" in r.reason for r in stats.degradations)
        assert "healthy" in stats.health

    def test_every_tier_failing_raises(self):
        tree, graph, _ = _workload(num_cliques=4, seed=19)
        resilient = ResilientExecutor(
            _AlwaysRaises("a"), fallbacks=[_AlwaysRaises("b")]
        )
        with pytest.raises(RuntimeError, match="every executor tier failed"):
            resilient.run(graph, PropagationState(tree))

    def test_underflow_triggers_logspace_rescue(self):
        tree, graph, reference = _workload(num_cliques=6, seed=23)
        # Scale every clique potential so the joint underflows float64.
        for i, table in tree.potentials.items():
            tree.potentials[i] = PotentialTable(
                table.variables, table.cardinalities, table.values * 1e-300
            )
        state = PropagationState(tree)
        stats = ResilientExecutor(SerialExecutor()).run(graph, state)
        assert any(r.to_executor == "logspace" for r in stats.degradations)
        assert stats.log_likelihood is not None
        assert np.isfinite(stats.log_likelihood)
        # Rescued normalized marginals match the unscaled reference.
        for i in range(tree.num_cliques):
            np.testing.assert_allclose(
                state.clique_marginal(i).values,
                reference.clique_marginal(i).values,
                rtol=1e-9,
                atol=1e-12,
            )

    def test_logspace_rescue_can_be_disabled(self):
        tree, graph, _ = _workload(num_cliques=4, seed=23)
        for i, table in tree.potentials.items():
            tree.potentials[i] = PotentialTable(
                table.variables, table.cardinalities, table.values * 1e-300
            )
        state = PropagationState(tree)
        stats = ResilientExecutor(
            SerialExecutor(), logspace_fallback=False
        ).run(graph, state)
        assert stats.log_likelihood is None
        assert "underflow" in stats.health

    def test_default_cascade_for_process_primary(self):
        from repro.sched.resilient import default_cascade

        primary = ProcessSharedMemoryExecutor(
            num_workers=3, partition_threshold=16
        )
        tiers = [type(t).__name__ for t in default_cascade(primary)]
        assert tiers == ["CollaborativeExecutor", "SerialExecutor"]
        assert default_cascade(SerialExecutor()) == []

    def test_degradation_record_str(self):
        record = DegradationRecord("A", "B", "because")
        assert str(record) == "A -> B: because"


# --------------------------------------------------------------------- #
# Acceptance: kill + deadline miss, full recovery within 1e-9 of serial
# --------------------------------------------------------------------- #


class TestAcceptance:
    def test_kill_plus_deadline_recovers_within_tolerance(self):
        tree, graph, reference = _workload(seed=97)
        delayed_tid = graph.tasks[2].tid
        primary = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            task_timeout=0.5,
            max_retries=2,
            fault_plan=FaultPlan(
                kill_before_dispatch={1: 0},
                delay_task={delayed_tid: 2.0},
            ),
        )
        state = PropagationState(tree)
        stats = ResilientExecutor(primary).run(graph, state)
        _assert_matches(tree, reference, state)
        assert stats.pool_restarts >= 1
        assert stats.retries_total >= 1
        # Fully recovered in-tier: the cascade never had to step down.
        assert stats.degradations == []

    def test_forced_degradation_is_reported(self):
        tree, graph, reference = _workload(num_cliques=5, seed=101)
        state = PropagationState(tree)
        stats = ResilientExecutor(
            _AlwaysRaises(), fallbacks=[SerialExecutor()]
        ).run(graph, state)
        _assert_matches(tree, reference, state)
        assert len(stats.degradations) == 1


# --------------------------------------------------------------------- #
# Engine integration
# --------------------------------------------------------------------- #


class TestEngineResilience:
    def test_propagate_resilience_flag_wraps_executor(self):
        from repro import InferenceEngine, random_network

        bn = random_network(12, seed=2)
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({0: 1})
        engine.propagate(_AlwaysRaises(), resilience=True)
        assert engine.last_stats.degraded()
        baseline = InferenceEngine.from_network(bn)
        baseline.set_evidence({0: 1})
        baseline.propagate()
        np.testing.assert_allclose(
            engine.marginal(5), baseline.marginal(5), rtol=1e-9
        )

    def test_resilience_kwargs_dict(self):
        from repro import InferenceEngine, random_network

        bn = random_network(10, seed=4)
        engine = InferenceEngine.from_network(bn)
        engine.propagate(resilience={"logspace_fallback": False})
        assert engine.last_stats.degradations == []

    def test_trace_labels_executor_that_completed_the_run(self):
        # A degradation cascade must not leave the trace labeled with the
        # *requested* executor's name and partition threshold.
        from repro import InferenceEngine, random_network

        class _RaisingWithThreshold(_AlwaysRaises):
            partition_threshold = 4096

        bn = random_network(12, seed=2)
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({0: 1})
        engine.propagate(
            _RaisingWithThreshold(), resilience=True, trace=True
        )
        trace = engine.last_trace
        assert engine.last_stats.degraded()
        assert engine.last_stats.completed_executor == "SerialExecutor"
        assert trace.executor == "SerialExecutor"
        assert trace.meta["requested_executor"] == "_RaisingWithThreshold"
        # SerialExecutor has no partition threshold; the requested tier's
        # value must not survive in the metadata.
        assert "partition_threshold" not in trace.meta
        assert any(
            "SerialExecutor" in entry for entry in trace.meta["degradations"]
        )

    def test_trace_labels_survive_clean_resilient_run(self):
        from repro import InferenceEngine, random_network
        from repro.sched.collaborative import CollaborativeExecutor

        bn = random_network(12, seed=6)
        engine = InferenceEngine.from_network(bn)
        executor = CollaborativeExecutor(
            num_threads=2, partition_threshold=512
        )
        engine.propagate(executor, resilience=True, trace=True)
        assert engine.last_stats.degradations == []
        assert engine.last_trace.executor == "CollaborativeExecutor"
        assert engine.last_trace.meta["partition_threshold"] == 512
        assert "requested_executor" not in engine.last_trace.meta


# --------------------------------------------------------------------- #
# Simulator fault hooks
# --------------------------------------------------------------------- #


class TestSimulatorFaults:
    @pytest.fixture(scope="class")
    def graph(self):
        tree = synthetic_tree(
            10, clique_width=3, states=2, avg_children=2, seed=9
        )
        tree.initialize_potentials(np.random.default_rng(9))
        return build_task_graph(tree)

    def test_core_kill_stretches_makespan(self, graph):
        from repro.simcore.machine import Machine
        from repro.simcore.policies import CollaborativePolicy
        from repro.simcore.profiles import XEON

        machine = Machine(XEON, 4)
        base = machine.run(CollaborativePolicy(), graph)
        faulty = machine.run(
            CollaborativePolicy(), graph,
            fault_plan=FaultPlan(sim_kill_core={1: 0}),
        )
        assert faulty.cores_lost == 1
        assert faulty.faults_injected == 1
        assert faulty.makespan >= base.makespan
        # Every task still executes: work reschedules onto survivors.
        assert faulty.tasks_executed == base.tasks_executed

    def test_simulator_never_kills_last_core(self, graph):
        from repro.simcore.machine import Machine
        from repro.simcore.policies import WorkStealingPolicy
        from repro.simcore.profiles import XEON

        machine = Machine(XEON, 2)
        base = machine.run(WorkStealingPolicy(), graph)
        result = machine.run(
            WorkStealingPolicy(), graph,
            fault_plan=FaultPlan(sim_kill_core={0: 0, 1: 1, 2: 0}),
        )
        # Three kills planned, but the simulator refuses to take the last
        # core: only the first lands.
        assert result.cores_lost == 1
        assert result.tasks_executed == base.tasks_executed

    def test_sim_delay_adds_duration(self, graph):
        from repro.simcore.machine import Machine
        from repro.simcore.policies import CollaborativePolicy
        from repro.simcore.profiles import XEON

        machine = Machine(XEON, 2)
        base = machine.run(CollaborativePolicy(), graph)
        faulty = machine.run(
            CollaborativePolicy(), graph,
            fault_plan=FaultPlan(sim_delay_task={0: 0.25}),
        )
        assert faulty.faults_injected == 1
        # Other cores overlap the stall, so the delay is a lower bound on
        # the makespan, not an additive term.
        assert faulty.makespan >= 0.25
        assert faulty.makespan > base.makespan

    def test_fault_free_plan_changes_nothing(self, graph):
        from repro.simcore.machine import Machine
        from repro.simcore.policies import CollaborativePolicy
        from repro.simcore.profiles import XEON

        machine = Machine(XEON, 4)
        base = machine.run(CollaborativePolicy(), graph)
        with_plan = machine.run(
            CollaborativePolicy(), graph, fault_plan=FaultPlan()
        )
        assert with_plan.makespan == base.makespan
        assert with_plan.cores_lost == 0
        assert with_plan.faults_injected == 0


# --------------------------------------------------------------------- #
# Batch-axis faults and batch-aware health scanning
# --------------------------------------------------------------------- #


def _batched_table(rows):
    rows = np.asarray(rows, dtype=float)
    return PotentialTable(
        (0,), (rows.shape[1],), rows, batch=rows.shape[0]
    )


class TestBatchAxisCorruption:
    def test_corrupt_array_single_column(self):
        flat = np.ones((3, 4))
        corrupt_array(flat, "nan", column=1)
        assert np.isnan(flat[1]).all()
        assert np.isfinite(flat[0]).all() and np.isfinite(flat[2]).all()

    def test_tuple_spec_round_trips_through_the_plan(self):
        plan = FaultPlan(corrupt_task={3: ("inf", 2)})
        assert plan.take_corruption(3) == ("inf", 2)
        assert plan.take_corruption(3) is None  # one-shot

    def test_invalid_tuple_specs_are_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_task={1: ("nan", -1)})
        with pytest.raises(ValueError):
            FaultPlan(corrupt_task={1: ("bogus", 0)})

    def test_torn_write_plan_validates(self):
        with pytest.raises(ValueError):
            FaultPlan(torn_write={1: 0})
        plan = FaultPlan(torn_write={4: 2})
        assert plan.take_torn(4) == 2
        assert plan.take_torn(4) is None  # one-shot


class TestBatchAwareHealthScan:
    def test_columns_are_attributed(self):
        clean = [0.2, 0.8]
        report = scan_tables({
            "a": _batched_table([clean, [np.nan, 1.0], clean]),
            "b": _batched_table([[np.inf, 1.0], clean, clean]),
            "c": _batched_table([clean, clean, [0.0, 0.0]]),
        })
        assert not report.healthy
        assert report.nan_columns["a"] == [1]
        assert report.inf_columns["b"] == [0]
        assert report.underflow_columns["c"] == [2]
        assert report.poisoned_columns() == {0, 1, 2}
        assert "batch columns" in report.summary()

    def test_clean_batched_tables_have_no_poisoned_columns(self):
        report = scan_tables({
            "a": _batched_table([[0.2, 0.8], [0.5, 0.5]]),
        })
        assert report.healthy
        assert report.poisoned_columns() == set()

    def test_nan_column_is_not_double_counted_as_underflow(self):
        report = scan_tables({
            "a": _batched_table([[np.nan, np.nan], [0.3, 0.7]]),
        })
        assert report.nan_columns["a"] == [0]
        assert "a" not in report.underflow_columns
        assert report.poisoned_columns() == {0}


class TestBatchedFaultDifferential:
    """Batched propagation under faults vs a serial per-case oracle.

    The process tier refuses batched states and falls back to per-case
    runs, so injected kills and delays land inside individual cases; the
    batch as a whole must still match a fresh serial oracle per case at
    1e-9.
    """

    CASES = [{0: 1}, {1: 0}, {}]

    def _oracle_rows(self, tree, variables):
        from repro.inference.engine import InferenceEngine

        rows = []
        for case in self.CASES:
            oracle = InferenceEngine(tree, reroot=False)
            oracle.set_evidence(case)
            oracle.propagate()
            rows.append({v: oracle.marginal(v) for v in variables})
        return rows

    def test_kill_and_delay_faults_match_serial_oracle(self):
        from repro.inference.engine import InferenceEngine

        tree, _graph, _reference = _workload(num_cliques=8, seed=31)
        engine = InferenceEngine(tree, reroot=False)
        variables = sorted(
            {v for clique in tree.cliques for v in clique.variables}
        )[:6]
        executor = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            max_retries=2,
            fault_plan=FaultPlan(
                kill_before_dispatch={2: 0}, delay_task={1: 0.2}
            ),
        )
        state = engine.propagate_batch(self.CASES, executor=executor)
        assert state.batch == len(self.CASES)
        for i, expected in enumerate(self._oracle_rows(tree, variables)):
            for v in variables:
                np.testing.assert_allclose(
                    state.marginal(v)[i], expected[v],
                    rtol=1e-9, atol=1e-12,
                )

    def test_nan_fault_is_quarantined_by_resilience_and_matches(self):
        from repro.inference.engine import InferenceEngine

        tree, graph, _reference = _workload(num_cliques=8, seed=31)
        engine = InferenceEngine(tree, reroot=False)
        variables = sorted(
            {v for clique in tree.cliques for v in clique.variables}
        )[:6]
        primary = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            fault_plan=FaultPlan(corrupt_task={graph.tasks[0].tid: "nan"}),
        )
        state = engine.propagate_batch(
            self.CASES, executor=ResilientExecutor(primary)
        )
        for i, expected in enumerate(self._oracle_rows(tree, variables)):
            for v in variables:
                np.testing.assert_allclose(
                    state.marginal(v)[i], expected[v],
                    rtol=1e-9, atol=1e-12,
                )
