"""Calibration utilities and the extension scheduling policies."""

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.inference.propagation import propagate_reference
from repro.jt.build import junction_tree_from_network
from repro.jt.calibration import (
    check_calibrated,
    evidence_probability,
    separator_disagreements,
)
from repro.jt.generation import synthetic_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore.policies import CollaborativePolicy, WorkStealingPolicy
from repro.simcore.priority import (
    CriticalPathPolicy,
    upward_ranks,
)
from repro.simcore.profiles import XEON
from repro.simcore.simgraph import SimGraph, build_sim_graph
from repro.tasks.dag import build_task_graph


class TestCalibration:
    def test_propagated_tree_is_calibrated(self):
        bn = random_network(10, max_parents=3, edge_probability=0.8, seed=1)
        jt = junction_tree_from_network(bn)
        potentials = propagate_reference(jt)
        assert separator_disagreements(jt, potentials) == []
        check_calibrated(jt, potentials)

    def test_uncalibrated_tree_detected(self):
        bn = random_network(10, max_parents=3, edge_probability=0.8, seed=2)
        jt = junction_tree_from_network(bn)
        # Raw CPT-initialized potentials are not calibrated.
        raw = {i: jt.potential(i).copy() for i in range(jt.num_cliques)}
        if jt.num_cliques > 1:
            with pytest.raises(ValueError):
                check_calibrated(jt, raw)

    def test_evidence_probability_matches_bruteforce(self):
        bn = random_network(9, max_parents=3, edge_probability=0.8, seed=3)
        jt = junction_tree_from_network(bn)
        evidence = {0: 1, 4: 0}
        potentials = propagate_reference(jt, evidence)
        expected = bn.joint_table().reduce(evidence).total()
        assert np.isclose(
            evidence_probability(jt, potentials), expected
        )

    def test_mass_inconsistency_detected(self):
        bn = random_network(8, max_parents=2, edge_probability=0.8, seed=4)
        jt = junction_tree_from_network(bn)
        potentials = propagate_reference(jt)
        if jt.num_cliques > 1:
            broken = dict(potentials)
            table = broken[0]
            from repro.potential.table import PotentialTable

            broken[0] = PotentialTable(
                table.variables, table.cardinalities, table.values * 3.0
            )
            with pytest.raises(ValueError):
                check_calibrated(jt, broken)


@pytest.fixture(scope="module")
def graph():
    tree = synthetic_tree(
        48, clique_width=12, states=2, avg_children=3, seed=88
    )
    tree, _, _ = reroot_optimally(tree)
    return build_task_graph(tree)


class TestUpwardRanks:
    def test_rank_includes_own_weight(self):
        sim = SimGraph()
        a = sim.add(3.0)
        b = sim.add(5.0, [a])
        ranks = upward_ranks(sim)
        assert ranks[b] == 5.0
        assert ranks[a] == 8.0

    def test_rank_takes_heaviest_chain(self):
        sim = SimGraph()
        a = sim.add(1.0)
        b = sim.add(10.0, [a])
        c = sim.add(2.0, [a])
        ranks = upward_ranks(sim)
        assert ranks[a] == 11.0


class TestCriticalPathPolicy:
    def test_matches_or_beats_fifo(self, graph):
        cp = CriticalPathPolicy("upward-rank")
        fifo = CriticalPathPolicy("fifo")
        for p in (2, 4, 8):
            t_cp = cp.simulate(graph, XEON, p).makespan
            t_fifo = fifo.simulate(graph, XEON, p).makespan
            assert t_cp <= t_fifo * 1.05

    def test_single_core_equals_serial_work(self, graph):
        pol = CriticalPathPolicy()
        result = pol.simulate(graph, XEON, 1)
        sim = build_sim_graph(graph, pol.partition_threshold, pol.max_chunks)
        work = sum(XEON.duration(w, 1) for w in sim.weights)
        overhead = sim.num_nodes * XEON.task_sched_overhead(1)
        assert result.makespan == pytest.approx(work + overhead)

    def test_respects_lower_bounds(self, graph):
        pol = CriticalPathPolicy()
        sim = build_sim_graph(graph, pol.partition_threshold, pol.max_chunks)
        for p in (2, 4, 8):
            result = pol.simulate(graph, XEON, p)
            work = sum(XEON.duration(w, p) for w in sim.weights)
            span = XEON.duration(sim.critical_path(), p)
            assert result.makespan >= max(span, work / p) * 0.999

    def test_bad_priority_rejected(self):
        with pytest.raises(ValueError):
            CriticalPathPolicy("vibes")

    def test_policy_name_carries_priority(self, graph):
        result = CriticalPathPolicy("weight").simulate(graph, XEON, 2)
        assert "weight" in result.policy


class TestWorkStealingPolicy:
    def test_cheaper_overhead_than_collaborative(self, graph):
        ws = WorkStealingPolicy().simulate(graph, XEON, 8)
        collab = CollaborativePolicy().simulate(graph, XEON, 8)
        assert ws.total_sched() < collab.total_sched()

    def test_makespan_not_worse(self, graph):
        ws = WorkStealingPolicy().simulate(graph, XEON, 8)
        collab = CollaborativePolicy().simulate(graph, XEON, 8)
        assert ws.makespan <= collab.makespan * 1.01

    def test_trace_recording(self, graph):
        result = WorkStealingPolicy().simulate(
            graph, XEON, 4, record_trace=True
        )
        assert result.trace is not None
        result.trace.check_no_overlap()
