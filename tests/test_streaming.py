"""Streaming DBN filtering (repro.streaming + repro.serve.streaming).

The contract every test enforces: a FilteringSession's posterior after
each applied tick equals the offline fully-unrolled-network oracle (and,
for HMMs, the classic forward algorithm) to 1e-9; refused ticks leave
the session exactly as it was; the StreamingService never mixes streams
and refuses explicitly (typed) when a queue is full, a deadline passed
or a stream is closed.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.bn.dbn import DynamicBayesianNetwork, make_hmm
from repro.inference.engine import InferenceEngine
from repro.potential.table import PotentialTable
from repro.sched.serial import SerialExecutor
from repro.serve import (
    ServiceClosed,
    StreamClosed,
    StreamingService,
    StreamOverflow,
)
from repro.streaming import FilteringSession, TickDeadline, TickFailed
from repro.streaming.session import _chain_rule_cpds


# --------------------------------------------------------------------- #
# Models and oracles
# --------------------------------------------------------------------- #


def _toy_hmm():
    return make_hmm(
        num_states=2,
        num_observations=2,
        initial=np.array([0.6, 0.4]),
        transition=np.array([[0.7, 0.3], [0.2, 0.8]]),
        emission=np.array([[0.9, 0.1], [0.3, 0.7]]),
    )


def _multivar_dbn(seed=7):
    """k=3 template whose forward interface is {0, 1} (cards 2, 3, 2).

    Exercises everything the HMM cannot: a multi-variable interface
    joint (the boundary pin + chain-rule ghosts), a cross-chain temporal
    edge 0@t -> 1@t+1, and a card-3 variable.
    """
    rng = np.random.default_rng(seed)

    def norm(a, axis):
        return a / a.sum(axis=axis, keepdims=True)

    dbn = DynamicBayesianNetwork([2, 3, 2])
    dbn.add_intra_edge(0, 2)
    dbn.add_intra_edge(1, 2)
    dbn.add_inter_edge(0, 0)
    dbn.add_inter_edge(0, 1)
    dbn.add_inter_edge(1, 1)
    emit = norm(rng.random((2, 3, 2)), 2)
    dbn.set_prior_cpt(0, PotentialTable([0], [2], norm(rng.random(2), 0)))
    dbn.set_prior_cpt(1, PotentialTable([1], [3], norm(rng.random(3), 0)))
    dbn.set_prior_cpt(2, PotentialTable([0, 1, 2], [2, 3, 2], emit))
    dbn.set_transition_cpt(
        0, PotentialTable([3, 0], [2, 2], norm(rng.random((2, 2)), 1))
    )
    dbn.set_transition_cpt(
        1,
        PotentialTable([3, 4, 1], [2, 3, 3], norm(rng.random((2, 3, 3)), 2)),
    )
    dbn.set_transition_cpt(2, PotentialTable([0, 1, 2], [2, 3, 2], emit))
    return dbn


def unrolled_posteriors(dbn, ticks, vars, t=None):
    """The offline oracle: one-shot unrolled network over all ticks."""
    T = max(len(ticks), 1)
    engine = InferenceEngine.from_network(dbn.unroll(T))
    for ti, delta in enumerate(ticks):
        for v, finding in delta.items():
            wid = dbn.variable_at(int(v), ti)
            if isinstance(finding, (int, np.integer)):
                engine.observe(wid, int(finding))
            else:
                engine.observe_soft(wid, finding)
    engine.propagate(incremental=False)
    if t is None:
        t = T - 1
    return {v: engine.marginal(dbn.variable_at(int(v), t)) for v in vars}


def _forward_algorithm(initial, transition, emission, observations):
    """Classic HMM forward pass; ``None`` marks an unobserved tick."""
    alpha = initial.copy()
    if observations and observations[0] is not None:
        alpha = alpha * emission[:, observations[0]]
    for obs in observations[1:]:
        alpha = alpha @ transition
        if obs is not None:
            alpha = alpha * emission[:, obs]
    return alpha / alpha.sum()


# --------------------------------------------------------------------- #
# Test executors
# --------------------------------------------------------------------- #


class FlakyExecutor:
    """Fails the next ``failures`` run() calls, then delegates serial."""

    def __init__(self, failures=0):
        self.failures = failures
        self.inner = SerialExecutor()

    def run(self, graph, state, **kw):
        if self.failures > 0:
            self.failures -= 1
            raise RuntimeError("injected executor fault")
        return self.inner.run(graph, state, **kw)


class GatedExecutor:
    """Blocks run() while the gate is closed (worker-wedging harness)."""

    def __init__(self):
        self.inner = SerialExecutor()
        self.gate = threading.Event()
        self.gate.set()
        self.entered = threading.Event()

    def run(self, graph, state, **kw):
        self.entered.set()
        assert self.gate.wait(60.0)
        return self.inner.run(graph, state, **kw)


# --------------------------------------------------------------------- #
# Chain-rule prior factorization
# --------------------------------------------------------------------- #


class TestChainRuleCpds:
    def test_product_reproduces_joint(self):
        rng = np.random.default_rng(3)
        cards = [2, 3, 2]
        values = rng.random((2, 3, 2))
        values /= values.sum()
        joint = PotentialTable([0, 1, 2], cards, values)
        cpds = _chain_rule_cpds(joint, cards)
        product = cpds[0][:, None, None] * cpds[1][:, :, None] * cpds[2]
        np.testing.assert_allclose(product, values, atol=1e-12)

    def test_zero_context_filled_uniform(self):
        values = np.array([[0.5, 0.5], [0.0, 0.0]])  # P(x0=1) = 0
        joint = PotentialTable([0, 1], [2, 2], values / values.sum())
        cpds = _chain_rule_cpds(joint, [2, 2])
        np.testing.assert_allclose(cpds[1][1], [0.5, 0.5])
        product = cpds[0][:, None] * cpds[1]
        np.testing.assert_allclose(product.sum(), 1.0)
        np.testing.assert_allclose(product[1], 0.0)


# --------------------------------------------------------------------- #
# FilteringSession exactness
# --------------------------------------------------------------------- #


class TestFilteringExactness:
    def test_hmm_matches_forward_algorithm_and_oracle(self):
        dbn = _toy_hmm()
        session = FilteringSession(dbn, window=4, retire=2)
        observations = [0, 1, 1, None, 0, 1, 0, 0, None, 1, 0, 1]
        applied = []
        for obs in observations:
            delta = {} if obs is None else {1: obs}
            result = session.tick(delta)
            applied.append(delta)
            filtered = session.posterior(0)
            forward = _forward_algorithm(
                np.array([0.6, 0.4]),
                np.array([[0.7, 0.3], [0.2, 0.8]]),
                np.array([[0.9, 0.1], [0.3, 0.7]]),
                [d.get(1) for d in applied],
            )
            np.testing.assert_allclose(filtered, forward, atol=1e-9)
            oracle = unrolled_posteriors(dbn, applied, [0])
            np.testing.assert_allclose(filtered, oracle[0], atol=1e-9)
            assert result.t == len(applied) - 1
        assert session.rolls == 4  # 12 ticks, window 4, retire 2

    def test_hmm_soft_evidence_matches_oracle(self):
        dbn = _toy_hmm()
        session = FilteringSession(dbn, window=3, retire=1)
        soft = [
            {1: [0.8, 0.2]},
            {1: [0.1, 0.9]},
            {0: [0.5, 0.5], 1: [0.3, 0.7]},
            {},
            {1: [0.9, 0.1]},
            {1: 1},  # hard and soft ticks interleave
            {1: [0.2, 0.8]},
        ]
        applied = []
        for delta in soft:
            session.tick(delta)
            applied.append(delta)
            got = session.posteriors([0, 1])
            want = unrolled_posteriors(dbn, applied, [0, 1])
            for v in (0, 1):
                np.testing.assert_allclose(got[v], want[v], atol=1e-9)
        assert session.rolls >= 1

    def test_multivariable_interface_matches_oracle(self):
        dbn = _multivar_dbn()
        assert dbn.interface() == [0, 1]
        session = FilteringSession(dbn, window=3, retire=2)
        ticks = [
            {2: 1},
            {2: 0, 1: 2},
            {},
            {2: 1, 0: 0},
            {2: [0.6, 0.4]},
            {2: 0},
            {1: 1, 2: 1},
        ]
        applied = []
        for delta in ticks:
            session.tick(delta)
            applied.append(delta)
            got = session.posteriors([0, 1, 2])
            want = unrolled_posteriors(dbn, applied, [0, 1, 2])
            for v in range(3):
                np.testing.assert_allclose(got[v], want[v], atol=1e-9)
        assert session.rolls >= 2

    def test_in_window_smoothing_matches_oracle(self):
        dbn = _toy_hmm()
        session = FilteringSession(dbn, window=4, retire=2)
        applied = []
        for obs in [0, 1, 0, 0, 1, 1]:
            session.tick({1: obs})
            applied.append({1: obs})
        for t in range(session.earliest, session.t):
            got = session.posterior(0, t)
            want = unrolled_posteriors(dbn, applied, [0], t=t)
            np.testing.assert_allclose(got, want[0], atol=1e-9)

    def test_window_retirement_invariance(self):
        """A roll is evidence-neutral: retained posteriors are unchanged."""
        dbn = _toy_hmm()
        session = FilteringSession(dbn, window=4, retire=2)
        for obs in [0, 1, 1, 0]:
            session.tick({1: obs})
        assert session.rolls == 0
        retained = range(session.base + session.retire, session.t)
        before = {
            t: {v: session.posterior(v, t) for v in (0, 1)} for t in retained
        }
        session.tick({})  # unobserved tick: forces the roll, adds nothing
        assert session.rolls == 1
        for t in retained:
            assert t >= session.earliest
            for v in (0, 1):
                np.testing.assert_allclose(
                    session.posterior(v, t), before[t][v], atol=1e-9
                )

    def test_incremental_matches_full_and_skips_work(self):
        dbn = _multivar_dbn(seed=11)
        fast = FilteringSession(dbn, window=4, retire=2, incremental=True)
        slow = FilteringSession(dbn, window=4, retire=2, incremental=False)
        skipped = 0
        for delta in [{2: 1}, {2: 0}, {1: 1}, {}, {2: 1}, {0: 1, 2: 0}]:
            result = fast.tick(dict(delta))
            slow.tick(dict(delta))
            skipped += result.tasks_skipped
            for v in range(3):
                np.testing.assert_allclose(
                    fast.posterior(v), slow.posterior(v), atol=1e-9
                )
        assert skipped > 0

    def test_window_geometry_validation(self):
        dbn = _toy_hmm()
        with pytest.raises(ValueError):
            FilteringSession(dbn, window=1)
        with pytest.raises(ValueError):
            FilteringSession(dbn, window=4, retire=0)
        with pytest.raises(ValueError):
            FilteringSession(dbn, window=4, retire=5)
        session = FilteringSession(dbn, window=4)
        assert session.retire == 2
        with pytest.raises(ValueError):
            session.posterior(0, t=4)  # beyond the window


# --------------------------------------------------------------------- #
# Tick transactionality
# --------------------------------------------------------------------- #


class TestTickTransactionality:
    def test_expired_deadline_is_refused_without_side_effects(self):
        dbn = _toy_hmm()
        session = FilteringSession(dbn, window=4, retire=2)
        session.tick({1: 0})
        before = session.posterior(0)
        with pytest.raises(TickDeadline):
            session.tick({1: 1}, deadline=time.monotonic() - 1.0)
        assert session.t == 1
        np.testing.assert_allclose(session.posterior(0), before, atol=0)
        # The stream keeps filtering exactly for the ticks that applied.
        session.tick({1: 1})
        want = unrolled_posteriors(dbn, [{1: 0}, {1: 1}], [0])
        np.testing.assert_allclose(session.posterior(0), want[0], atol=1e-9)

    def test_executor_fault_rolls_back_and_recovers(self):
        dbn = _toy_hmm()
        executor = FlakyExecutor(failures=0)
        session = FilteringSession(dbn, window=4, retire=2, executor=executor)
        session.tick({1: 0})
        executor.failures = 1
        with pytest.raises(TickFailed):
            session.tick({1: 1})
        assert session.t == 1  # the failed tick did not advance time
        want = unrolled_posteriors(dbn, [{1: 0}], [0])
        np.testing.assert_allclose(session.posterior(0), want[0], atol=1e-9)
        session.tick({1: 1})  # retry applies cleanly
        want = unrolled_posteriors(dbn, [{1: 0}, {1: 1}], [0])
        np.testing.assert_allclose(session.posterior(0), want[0], atol=1e-9)

    def test_repeated_faults_leave_session_dirty_then_recover(self):
        """A fault during the recovery rebuild must not strand a stale
        engine: the session stays marked dirty and the next tick retries
        the resync before propagating."""
        dbn = _toy_hmm()
        executor = FlakyExecutor(failures=0)
        session = FilteringSession(dbn, window=4, retire=2, executor=executor)
        session.tick({1: 0})
        executor.failures = 2  # the tick AND the recovery rebuild fail
        with pytest.raises(TickFailed):
            session.tick({1: 1})
        assert session.engine is None  # dirty, not silently stale
        assert session.t == 1
        session.tick({1: 1})  # entry resync retries, then applies
        want = unrolled_posteriors(dbn, [{1: 0}, {1: 1}], [0])
        np.testing.assert_allclose(session.posterior(0), want[0], atol=1e-9)

    def test_fault_during_roll_rebuild_recovers_exactly(self):
        dbn = _toy_hmm()
        executor = FlakyExecutor(failures=0)
        session = FilteringSession(dbn, window=3, retire=1, executor=executor)
        applied = []
        for obs in [0, 1, 1]:  # fills the window; next tick must roll
            session.tick({1: obs})
            applied.append({1: obs})
        executor.failures = 2  # the roll rebuild AND its resync fail
        with pytest.raises(TickFailed):
            session.tick({1: 0})
        assert session.t == 3  # refused tick never advanced time
        session.tick({1: 0})  # resync + apply
        applied.append({1: 0})
        want = unrolled_posteriors(dbn, applied, [0])
        np.testing.assert_allclose(session.posterior(0), want[0], atol=1e-9)

    def test_unknown_slice_variable_rejected(self):
        session = FilteringSession(_toy_hmm(), window=2)
        with pytest.raises(ValueError):
            session.tick({2: 0})
        assert session.t == 0


# --------------------------------------------------------------------- #
# Template validation (the DBN satellite)
# --------------------------------------------------------------------- #


class TestTemplateValidation:
    def test_duplicate_intra_edge_rejected(self):
        dbn = DynamicBayesianNetwork([2, 2])
        dbn.add_intra_edge(0, 1)
        with pytest.raises(ValueError, match="duplicate intra"):
            dbn.add_intra_edge(0, 1)

    def test_intra_cycle_rejected(self):
        dbn = DynamicBayesianNetwork([2, 2, 2])
        dbn.add_intra_edge(0, 1)
        dbn.add_intra_edge(1, 2)
        with pytest.raises(ValueError, match="cycle"):
            dbn.add_intra_edge(2, 0)
        with pytest.raises(ValueError):
            dbn.add_intra_edge(0, 0)

    def test_duplicate_inter_edge_rejected(self):
        dbn = DynamicBayesianNetwork([2, 2])
        dbn.add_inter_edge(0, 0)  # temporal self-arcs are fine once
        with pytest.raises(ValueError, match="duplicate inter"):
            dbn.add_inter_edge(0, 0)

    def test_prior_scope_outside_slice_rejected(self):
        dbn = DynamicBayesianNetwork([2, 2])
        with pytest.raises(ValueError, match=r"outside \[0, 2\)"):
            dbn.set_prior_cpt(
                0, PotentialTable([2, 0], [2, 2], np.full((2, 2), 0.5))
            )

    def test_transition_scope_outside_template_rejected(self):
        dbn = DynamicBayesianNetwork([2, 2])
        with pytest.raises(ValueError, match=r"outside \[0, 4\)"):
            dbn.set_transition_cpt(
                0, PotentialTable([4, 0], [2, 2], np.full((2, 2), 0.5))
            )

    def test_scope_must_include_the_variable(self):
        dbn = DynamicBayesianNetwork([2, 2])
        with pytest.raises(ValueError, match="does not include"):
            dbn.set_prior_cpt(0, PotentialTable([1], [2], [0.5, 0.5]))

    def test_cardinality_disagreement_rejected(self):
        dbn = DynamicBayesianNetwork([2, 3])
        with pytest.raises(ValueError, match="cardinality"):
            dbn.set_prior_cpt(1, PotentialTable([1], [2], [0.5, 0.5]))
        # Previous-slice ids must match slice_cards too (3 % 2 -> var 1).
        dbn2 = DynamicBayesianNetwork([2, 3])
        with pytest.raises(ValueError, match="cardinality"):
            dbn2.set_transition_cpt(
                1, PotentialTable([3, 1], [2, 3], np.full((2, 3), 1 / 3))
            )

    def test_interface_is_sorted_inter_sources(self):
        dbn = DynamicBayesianNetwork([2, 2, 2])
        dbn.add_inter_edge(2, 0)
        dbn.add_inter_edge(0, 1)
        dbn.add_inter_edge(2, 2)
        assert dbn.interface() == [0, 2]
        assert DynamicBayesianNetwork([2, 2]).interface() == []


# --------------------------------------------------------------------- #
# StreamingService
# --------------------------------------------------------------------- #


class TestStreamingService:
    def test_concurrent_streams_exact_and_isolated(self):
        dbn = _toy_hmm()
        with StreamingService(dbn, window=3, retire=1, workers=2) as service:
            plans = {
                "alpha": [{1: 0}, {1: 1}, {1: 1}, {}, {1: 0}, {1: 1}],
                "beta": [{1: 1}, {1: 0}, {}, {1: 0}, {1: 0}, {1: 1}],
            }
            handles = {
                name: service.subscribe(name=name, query_vars=[0])
                for name in plans
            }
            futures = {name: [] for name in plans}
            for i in range(len(plans["alpha"])):
                for name, ticks in plans.items():
                    futures[name].append(
                        service.push_tick(handles[name], ticks[i])
                    )
            responses = {
                name: [f.result(60.0) for f in fs]
                for name, fs in futures.items()
            }
            report = service.drain()
        # Every streamed posterior matches that stream's offline oracle:
        # exact filtering AND zero cross-stream contamination.
        for name, ticks in plans.items():
            for i, response in enumerate(responses[name]):
                assert response.ok and response.t == i
                assert response.stream == name
                want = unrolled_posteriors(dbn, ticks[: i + 1], [0])
                np.testing.assert_allclose(
                    response.marginals[0], want[0], atol=1e-9
                )
        assert report.streams == 2
        assert report.ticks_ok == 12
        assert report.served_ok == 12
        assert report.window_rolls >= 2
        assert set(report.per_stream) == {"alpha", "beta"}
        assert report.per_stream["alpha"]["ok"] == 6

    def test_overflow_refusal_is_immediate_and_typed(self):
        dbn = _toy_hmm()
        executor = GatedExecutor()
        service = StreamingService(
            dbn,
            window=3,
            workers=1,
            max_pending=2,
            executor_factory=lambda: executor,
        )
        handle = service.subscribe(name="s")
        executor.gate.clear()
        executor.entered.clear()
        first = service.push_tick(handle, {1: 0})
        assert executor.entered.wait(30.0)  # worker wedged on tick 0
        queued = [service.push_tick(handle, {1: 1}) for _ in range(2)]
        refused = [service.push_tick(handle, {1: 1}) for _ in range(3)]
        for future in refused:  # resolved immediately, queue untouched
            response = future.result(0.5)
            assert response.status == "shed"
            assert response.kind == "stream-overflow"
            assert response.marginals == {}
            with pytest.raises(StreamOverflow):
                response.raise_for_status()
        executor.gate.set()
        applied = [{1: 0}, {1: 1}, {1: 1}]
        assert all(f.result(60.0).ok for f in [first] + queued)
        report = service.drain()
        assert report.ticks_ok == 3
        assert report.ticks_overflowed == 3
        assert report.shed == 3
        assert report.per_stream["s"]["overflowed"] == 3
        # Overflowed evidence was never applied: the session equals the
        # oracle over exactly the admitted ticks.
        want = unrolled_posteriors(dbn, applied, [0])
        np.testing.assert_allclose(
            handle.session.posterior(0), want[0], atol=1e-9
        )

    def test_closed_stream_refuses_new_ticks(self):
        dbn = _toy_hmm()
        with StreamingService(dbn, window=2, workers=1) as service:
            handle = service.subscribe(name="s")
            assert service.push_tick(handle, {1: 0}).result(60.0).ok
            service.close_stream(handle)
            response = service.push_tick(handle, {1: 1}).result(0.5)
            assert response.status == "shed"
            assert response.kind == "stream-closed"
            with pytest.raises(StreamClosed):
                response.raise_for_status()

    def test_queued_deadline_refused_without_application(self):
        dbn = _toy_hmm()
        executor = GatedExecutor()
        service = StreamingService(
            dbn,
            window=3,
            workers=1,
            executor_factory=lambda: executor,
        )
        handle = service.subscribe(name="s")
        executor.gate.clear()
        executor.entered.clear()
        first = service.push_tick(handle, {1: 0})
        assert executor.entered.wait(30.0)
        stale = service.push_tick(handle, {1: 1}, deadline=0.02)
        time.sleep(0.1)  # the queued tick's deadline expires while wedged
        executor.gate.set()
        assert first.result(60.0).ok
        response = stale.result(60.0)
        assert response.status == "deadline"
        report = service.drain()
        assert report.ticks_deadline == 1
        assert report.deadline_missed == 1
        want = unrolled_posteriors(dbn, [{1: 0}], [0])
        np.testing.assert_allclose(
            handle.session.posterior(0), want[0], atol=1e-9
        )

    def test_faulty_stream_refuses_and_recovers(self):
        dbn = _toy_hmm()
        executor = FlakyExecutor(failures=0)
        service = StreamingService(
            dbn, window=3, workers=1, executor_factory=lambda: executor
        )
        handle = service.subscribe(name="s")
        assert service.push_tick(handle, {1: 0}).result(60.0).ok
        executor.failures = 1
        failed = service.push_tick(handle, {1: 1}).result(60.0)
        assert failed.status == "failed"
        assert failed.error and "injected executor fault" in failed.error
        ok = service.push_tick(handle, {1: 1}).result(60.0)
        assert ok.ok and ok.t == 1  # failed tick never advanced time
        report = service.drain()
        assert report.ticks_failed == 1
        want = unrolled_posteriors(dbn, [{1: 0}, {1: 1}], [0])
        np.testing.assert_allclose(ok.marginals[0], want[0], atol=1e-9)

    def test_updates_feed_ends_after_close(self):
        dbn = _toy_hmm()
        with StreamingService(dbn, window=2, workers=1) as service:
            handle = service.subscribe(name="s", query_vars=[0])
            futures = [
                service.push_tick(handle, {1: i % 2}) for i in range(3)
            ]
            for future in futures:
                future.result(60.0)
            service.close_stream(handle)
            got = list(service.updates(handle, timeout=30.0))
        assert [r.t for r in got] == [0, 1, 2]
        assert all(r.ok for r in got)
        with pytest.raises(TimeoutError):
            fresh = StreamingService(dbn, window=2, workers=1)
            try:
                h2 = fresh.subscribe(name="quiet")
                next(iter(fresh.updates(h2, timeout=0.05)))
            finally:
                fresh.drain()

    def test_drain_is_idempotent_and_closes_admission(self):
        dbn = _toy_hmm()
        service = StreamingService(dbn, window=2, workers=1)
        handle = service.subscribe(name="s")
        service.push_tick(handle, {1: 0}).result(60.0)
        report = service.drain()
        assert service.drain() is report
        with pytest.raises(ServiceClosed):
            service.push_tick(handle, {1: 1})
        with pytest.raises(ServiceClosed):
            service.subscribe(name="late")
        text = report.format()
        assert "streams" in text and "s" in text
        payload = report.to_dict()
        assert payload["streams"] == 1
        assert payload["ticks_ok"] == 1
        assert payload["per_stream"]["s"]["ok"] == 1

    def test_duplicate_stream_name_rejected(self):
        with StreamingService(_toy_hmm(), window=2, workers=1) as service:
            service.subscribe(name="s")
            with pytest.raises(ValueError):
                service.subscribe(name="s")
            auto = service.subscribe()
            assert auto.name.startswith("stream-")
