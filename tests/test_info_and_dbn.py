"""Information measures and dynamic Bayesian networks."""

import numpy as np
import pytest

from repro.bn.dbn import DynamicBayesianNetwork, make_hmm
from repro.inference.engine import InferenceEngine
from repro.potential.info import (
    entropy,
    jensen_shannon,
    kl_divergence,
    mutual_information,
)
from repro.potential.table import PotentialTable


class TestEntropy:
    def test_uniform_is_log_n(self):
        t = PotentialTable([0], [4], np.full(4, 0.25))
        assert entropy(t) == pytest.approx(np.log(4))

    def test_point_mass_is_zero(self):
        t = PotentialTable([0], [3], np.array([0.0, 1.0, 0.0]))
        assert entropy(t) == 0.0

    def test_unnormalized_input_handled(self):
        a = PotentialTable([0], [2], np.array([1.0, 1.0]))
        b = PotentialTable([0], [2], np.array([10.0, 10.0]))
        assert entropy(a) == pytest.approx(entropy(b))


class TestKl:
    def test_zero_for_identical(self):
        rng = np.random.default_rng(0)
        t = PotentialTable.random([0, 1], [2, 3], rng)
        assert kl_divergence(t, t) == pytest.approx(0.0)

    def test_positive_for_different(self):
        p = PotentialTable([0], [2], np.array([0.9, 0.1]))
        q = PotentialTable([0], [2], np.array([0.5, 0.5]))
        assert kl_divergence(p, q) > 0

    def test_infinite_off_support(self):
        p = PotentialTable([0], [2], np.array([0.5, 0.5]))
        q = PotentialTable([0], [2], np.array([1.0, 0.0]))
        assert kl_divergence(p, q) == float("inf")

    def test_alignment_across_axis_orders(self):
        rng = np.random.default_rng(1)
        p = PotentialTable.random([0, 1], [2, 3], rng)
        assert kl_divergence(p, p.aligned_to([1, 0])) == pytest.approx(0.0)

    def test_scope_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kl_divergence(
                PotentialTable([0], [2]), PotentialTable([1], [2])
            )


class TestMutualInformation:
    def test_independent_variables_zero(self):
        p = np.outer([0.3, 0.7], [0.6, 0.4])
        t = PotentialTable([0, 1], [2, 2], p)
        assert mutual_information(t, [0], [1]) == pytest.approx(0.0, abs=1e-12)

    def test_identical_variables_full_entropy(self):
        joint = np.diag([0.5, 0.5])
        t = PotentialTable([0, 1], [2, 2], joint)
        assert mutual_information(t, [0], [1]) == pytest.approx(np.log(2))

    def test_extra_variables_marginalized(self):
        rng = np.random.default_rng(2)
        t = PotentialTable.random([0, 1, 2], [2, 2, 2], rng)
        direct = mutual_information(t, [0], [1])
        from repro.potential.primitives import marginalize

        reduced = marginalize(t, (0, 1))
        assert direct == pytest.approx(
            mutual_information(reduced, [0], [1])
        )

    def test_overlapping_groups_rejected(self):
        t = PotentialTable([0, 1], [2, 2])
        with pytest.raises(ValueError):
            mutual_information(t, [0], [0, 1])

    def test_js_symmetric_and_finite(self):
        p = PotentialTable([0], [2], np.array([1.0, 0.0]))
        q = PotentialTable([0], [2], np.array([0.0, 1.0]))
        js = jensen_shannon(p, q)
        assert js == pytest.approx(jensen_shannon(q, p))
        assert np.isfinite(js)
        assert js == pytest.approx(np.log(2))


def _toy_hmm():
    return make_hmm(
        num_states=2,
        num_observations=2,
        initial=np.array([0.6, 0.4]),
        transition=np.array([[0.7, 0.3], [0.2, 0.8]]),
        emission=np.array([[0.9, 0.1], [0.3, 0.7]]),
    )


def _forward_algorithm(initial, transition, emission, observations):
    """Classic HMM forward pass, the independent oracle."""
    alpha = initial * emission[:, observations[0]]
    for obs in observations[1:]:
        alpha = (alpha @ transition) * emission[:, obs]
    return alpha / alpha.sum()


class TestDbn:
    def test_unrolled_sizes(self):
        dbn = _toy_hmm()
        bn = dbn.unroll(5)
        assert bn.num_variables == 10
        assert bn.has_all_cpts()

    def test_unrolled_joint_is_distribution(self):
        bn = _toy_hmm().unroll(3)
        assert np.isclose(bn.joint_table().total(), 1.0)

    def test_filtering_matches_forward_algorithm(self):
        initial = np.array([0.6, 0.4])
        transition = np.array([[0.7, 0.3], [0.2, 0.8]])
        emission = np.array([[0.9, 0.1], [0.3, 0.7]])
        dbn = make_hmm(2, 2, initial, transition, emission)
        observations = [0, 1, 1, 0, 1]
        T = len(observations)
        bn = dbn.unroll(T)
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence(
            {dbn.variable_at(1, t): observations[t] for t in range(T)}
        )
        engine.propagate()
        got = engine.marginal(dbn.variable_at(0, T - 1))
        want = _forward_algorithm(initial, transition, emission, observations)
        assert np.allclose(got, want)

    def test_smoothing_uses_future_evidence(self):
        dbn = _toy_hmm()
        bn = dbn.unroll(4)
        engine = InferenceEngine.from_network(bn)
        # Posterior of the state at t=1 given only past evidence...
        engine.set_evidence({dbn.variable_at(1, 0): 0})
        engine.propagate()
        filtered = engine.marginal(dbn.variable_at(0, 1))
        # ...shifts when future observations arrive (smoothing).
        engine.set_evidence(
            {dbn.variable_at(1, 0): 0, dbn.variable_at(1, 3): 1}
        )
        engine.propagate()
        smoothed = engine.marginal(dbn.variable_at(0, 1))
        assert not np.allclose(filtered, smoothed)

    def test_viterbi_decoding_via_mpe(self):
        dbn = _toy_hmm()
        T = 6
        bn = dbn.unroll(T)
        engine = InferenceEngine.from_network(bn)
        observations = [0, 0, 1, 1, 1, 0]
        engine.set_evidence(
            {dbn.variable_at(1, t): observations[t] for t in range(T)}
        )
        assignment, prob = engine.mpe()
        from repro.inference.mpe import mpe_bruteforce

        joint = bn.joint_table().reduce(
            {dbn.variable_at(1, t): observations[t] for t in range(T)}
        )
        _, expected = mpe_bruteforce(joint)
        assert np.isclose(prob, expected)

    def test_single_slice_needs_no_transition(self):
        dbn = DynamicBayesianNetwork([2])
        dbn.set_prior_cpt(
            0, PotentialTable([0], [2], np.array([0.5, 0.5]))
        )
        bn = dbn.unroll(1)
        assert bn.num_variables == 1

    def test_validation(self):
        dbn = DynamicBayesianNetwork([2, 2])
        with pytest.raises(ValueError):
            dbn.add_intra_edge(0, 0)
        with pytest.raises(ValueError):
            dbn.add_inter_edge(0, 5)
        with pytest.raises(ValueError):
            dbn.unroll(0)
        with pytest.raises(ValueError, match="prior"):
            dbn.unroll(2)

    def test_hmm_builder_validation(self):
        with pytest.raises(ValueError):
            make_hmm(2, 2, np.array([1.0]), np.eye(2), np.eye(2))
        with pytest.raises(ValueError):
            make_hmm(2, 2, np.array([0.5, 0.5]), np.eye(3), np.eye(2))
