"""Shafer-Shenoy lazy engine: numerics and incremental-update savings."""

import numpy as np
import pytest

from repro.bn.generation import chain_network, random_network
from repro.inference.engine import InferenceEngine
from repro.inference.shafershenoy import ShaferShenoyEngine
from repro.jt.build import junction_tree_from_network
from repro.jt.generation import synthetic_tree


@pytest.fixture
def network():
    return random_network(
        10, cardinality=2, max_parents=3, edge_probability=0.8, seed=71
    )


@pytest.fixture
def tree(network):
    return junction_tree_from_network(network)


class TestNumerics:
    def test_prior_marginals_match_bruteforce(self, network, tree):
        engine = ShaferShenoyEngine(tree)
        for v in range(network.num_variables):
            assert np.allclose(
                engine.marginal(v), network.marginal_bruteforce(v)
            )

    def test_posterior_matches_bruteforce(self, network, tree):
        engine = ShaferShenoyEngine(tree)
        engine.observe(2, 1).observe(7, 0)
        for v in (0, 4, 9):
            assert np.allclose(
                engine.marginal(v),
                network.marginal_bruteforce(v, {2: 1, 7: 0}),
            )

    def test_agrees_with_hugin_engine(self, network):
        hugin = InferenceEngine.from_network(network, reroot=False)
        ss = ShaferShenoyEngine(hugin.jt)
        hugin.set_evidence({1: 1})
        hugin.propagate()
        ss.observe(1, 1)
        for v in range(network.num_variables):
            assert np.allclose(ss.marginal(v), hugin.marginal(v))

    def test_likelihood_matches_bruteforce(self, network, tree):
        engine = ShaferShenoyEngine(tree)
        engine.observe(0, 1).observe(3, 0)
        expected = network.joint_table().reduce({0: 1, 3: 0}).total()
        assert np.isclose(engine.likelihood(), expected)

    def test_soft_evidence(self, network, tree):
        engine = ShaferShenoyEngine(tree)
        engine.observe_soft(4, [0.3, 0.9])
        hugin = InferenceEngine.from_network(network, reroot=False)
        hugin.observe_soft(4, [0.3, 0.9])
        hugin.propagate()
        assert np.allclose(engine.marginal(8), hugin.marginal(8))

    def test_joint_marginal_in_clique(self, network, tree):
        engine = ShaferShenoyEngine(tree)
        clique = tree.cliques[0]
        pair = clique.variables[:2]
        joint = engine.joint_marginal(pair)
        assert np.isclose(joint.total(), 1.0)
        # Consistent with single-variable marginals.
        assert np.allclose(
            joint.values.sum(axis=1), engine.marginal(pair[0])
        )

    def test_joint_marginal_out_of_clique_raises(self, tree):
        all_vars = sorted({v for c in tree.cliques for v in c.variables})
        covered = any(
            set(all_vars) <= set(c.variables) for c in tree.cliques
        )
        if not covered:
            with pytest.raises(KeyError):
                ShaferShenoyEngine(tree).joint_marginal(all_vars)


class TestEvidenceLifecycle:
    def test_retract_restores_prior(self, network, tree):
        engine = ShaferShenoyEngine(tree)
        prior = engine.marginal(5).copy()
        engine.observe(2, 1)
        posterior = engine.marginal(5)
        engine.retract(2)
        assert np.allclose(engine.marginal(5), prior)
        assert not np.allclose(posterior, prior)

    def test_reobserve_overwrites(self, network, tree):
        engine = ShaferShenoyEngine(tree)
        engine.observe(2, 0)
        engine.observe(2, 1)
        assert np.allclose(
            engine.marginal(6), network.marginal_bruteforce(6, {2: 1})
        )

    def test_invalid_state_rejected(self, tree):
        with pytest.raises(ValueError, match="out of range"):
            ShaferShenoyEngine(tree).observe(0, 9)

    def test_invalid_soft_weights_rejected(self, tree):
        engine = ShaferShenoyEngine(tree)
        var = tree.cliques[0].variables[0]
        with pytest.raises(ValueError):
            engine.observe_soft(var, [0.5])
        with pytest.raises(ValueError):
            engine.observe_soft(var, [0.0, 0.0])

    def test_requires_potentials(self):
        bare = synthetic_tree(4, clique_width=3, seed=0)
        with pytest.raises(ValueError, match="potentials"):
            ShaferShenoyEngine(bare)


class TestIncrementalReuse:
    def test_repeat_query_fully_cached(self, tree):
        engine = ShaferShenoyEngine(tree)
        var = tree.cliques[0].variables[0]
        engine.marginal(var)
        computed_before = engine.messages_computed
        engine.marginal(var)
        assert engine.messages_computed == computed_before
        assert engine.messages_reused > 0

    def test_evidence_update_recomputes_only_away_messages(self):
        # A long chain makes the asymmetry obvious: evidence at one end
        # must not invalidate messages flowing toward that end.
        bn = chain_network(16, seed=5)
        tree = junction_tree_from_network(bn)
        engine = ShaferShenoyEngine(tree)
        engine.marginal(0)
        engine.marginal(15)  # warm every message in both directions
        full_cache = engine.cache_size()
        assert full_cache == 2 * (tree.num_cliques - 1)
        engine.observe(15, 1)
        # Messages toward variable 15's host survive.
        assert engine.cache_size() > 0
        assert engine.cache_size() < full_cache
        before = engine.messages_computed
        engine.marginal(15)
        # Querying at the evidence end reuses the surviving inbound
        # messages: nothing new needs computing.
        assert engine.messages_computed - before <= 1

    def test_incremental_equals_fresh_engine(self, network, tree):
        incremental = ShaferShenoyEngine(tree)
        incremental.marginal(0)
        incremental.observe(1, 1)
        incremental.marginal(0)
        incremental.observe(6, 0)
        fresh = ShaferShenoyEngine(tree)
        fresh.observe(1, 1).observe(6, 0)
        for v in range(network.num_variables):
            assert np.allclose(
                incremental.marginal(v), fresh.marginal(v)
            )

    def test_cache_bounded_by_edge_count(self, tree):
        engine = ShaferShenoyEngine(tree)
        for clique in range(tree.num_cliques):
            engine.belief(clique)
        assert engine.cache_size() == 2 * (tree.num_cliques - 1)
