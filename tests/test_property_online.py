"""Property test: online submission agrees with static DAG execution."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.generic import run_dag
from repro.sched.online import OnlineScheduler


@st.composite
def dag_specs(draw):
    """A random DAG of integer-arithmetic nodes (deps reference earlier)."""
    n = draw(st.integers(min_value=1, max_value=15))
    deps = {}
    for i in range(1, n):
        count = draw(st.integers(min_value=0, max_value=min(3, i)))
        if count:
            chosen = draw(
                st.lists(
                    st.integers(min_value=0, max_value=i - 1),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            deps[i] = chosen
    return n, deps


def _node_fn(i):
    def fn(*dep_values):
        return i + sum(dep_values)

    return fn


@given(dag_specs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_online_matches_static_run_dag(spec, threads):
    n, deps = spec
    nodes = {i: _node_fn(i) for i in range(n)}
    static = run_dag(nodes, deps, num_threads=threads)

    with OnlineScheduler(num_threads=threads) as pool:
        handles = {}
        for i in range(n):  # submission order respects dependencies
            dep_handles = [handles[d] for d in deps.get(i, [])]
            handles[i] = pool.submit(_node_fn(i), deps=dep_handles)
        online = {i: handles[i].result(timeout=10) for i in range(n)}
    assert online == static


@given(dag_specs())
@settings(max_examples=20, deadline=None)
def test_run_dag_results_are_deterministic(spec):
    n, deps = spec
    nodes = {i: _node_fn(i) for i in range(n)}
    a = run_dag(nodes, deps, num_threads=3)
    b = run_dag(nodes, deps, num_threads=1)
    assert a == b
