"""Scheduler stress: high thread counts on a 200+ clique tree.

Runs CollaborativeExecutor and WorkStealingExecutor with 8–16 threads on a
large junction tree under a hard timeout, asserting the paper's liveness
and accounting invariants: no deadlock, no dropped tasks, and numerically
stable results across repeated runs.
"""

import threading

import numpy as np
import pytest

from repro.jt.generation import synthetic_tree
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.serial import SerialExecutor
from repro.sched.workstealing import WorkStealingExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState

TIMEOUT_SECONDS = 120.0
REPETITIONS = 5


@pytest.fixture(scope="module")
def big_workload():
    tree = synthetic_tree(
        220, clique_width=3, states=2, avg_children=3, seed=555
    )
    tree.initialize_potentials(np.random.default_rng(555))
    graph = build_task_graph(tree)
    reference = PropagationState(tree)
    SerialExecutor().run(graph, reference)
    return tree, graph, reference


def _run_with_deadline(executor, graph, state):
    """Run on a watchdog thread; a hang fails the test instead of the job."""
    result = {}

    def target():
        try:
            result["stats"] = executor.run(graph, state)
        except BaseException as exc:  # surfaced below
            result["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(TIMEOUT_SECONDS)
    assert not thread.is_alive(), (
        f"{type(executor).__name__} deadlocked: still running after "
        f"{TIMEOUT_SECONDS}s on {graph.num_tasks} tasks"
    )
    if "error" in result:
        raise result["error"]
    return result["stats"]


def _executor_matrix():
    for threads in (8, 12, 16):
        yield CollaborativeExecutor(
            num_threads=threads, partition_threshold=8
        )
        yield WorkStealingExecutor(
            num_threads=threads, partition_threshold=8
        )


@pytest.mark.parametrize(
    "executor",
    list(_executor_matrix()),
    ids=lambda e: f"{type(e).__name__}-{e.num_threads}t",
)
def test_no_deadlock_no_dropped_tasks(big_workload, executor):
    tree, graph, reference = big_workload
    state = PropagationState(tree)
    stats = _run_with_deadline(executor, graph, state)
    # Task-count accounting: every task executed exactly once, each
    # attributed to exactly one thread.
    assert stats.tasks_executed == graph.num_tasks
    assert sum(stats.tasks_per_thread) == graph.num_tasks
    for i in range(tree.num_cliques):
        assert np.allclose(
            reference.potentials[i].values, state.potentials[i].values
        ), f"clique {i} diverges at {executor.num_threads} threads"


@pytest.mark.parametrize(
    "make_executor",
    [
        lambda: CollaborativeExecutor(num_threads=16, partition_threshold=8),
        lambda: WorkStealingExecutor(num_threads=16, partition_threshold=8),
    ],
    ids=["collaborative-16t", "workstealing-16t"],
)
def test_results_stable_across_repeated_runs(big_workload, make_executor):
    """5 repetitions at 16 threads: identical accounting, stable beliefs."""
    tree, graph, reference = big_workload
    for rep in range(REPETITIONS):
        state = PropagationState(tree)
        stats = _run_with_deadline(make_executor(), graph, state)
        assert stats.tasks_executed == graph.num_tasks, f"rep {rep}"
        assert sum(stats.tasks_per_thread) == graph.num_tasks, f"rep {rep}"
        for i in range(tree.num_cliques):
            assert np.allclose(
                reference.potentials[i].values,
                state.potentials[i].values,
                rtol=1e-9,
                atol=1e-12,
            ), f"rep {rep}: clique {i} diverges"
