"""Tests for junction-tree rerooting (Algorithm 1)."""

import numpy as np
import pytest

from repro.jt.generation import synthetic_tree, template_tree
from repro.jt.junction_tree import Clique, JunctionTree
from repro.jt.rerooting import (
    all_clique_costs,
    clique_cost,
    critical_path_weight,
    heaviest_leaf_path,
    path_weight,
    reroot,
    reroot_optimally,
    select_root,
    select_root_bruteforce,
)
from repro.jt.validate import check_tree_structure


def _chain(n):
    cliques = [Clique(i, (i, i + 1), (2, 2)) for i in range(n)]
    return JunctionTree(cliques, [None] + list(range(n - 1)))


class TestCliqueCost:
    def test_cost_formula(self):
        # width 2, binary, degree 1 in a 2-clique chain.
        jt = _chain(2)
        assert clique_cost(jt, 0) == 2 * 1 * 4

    def test_degree_factor(self):
        jt = _chain(3)
        assert clique_cost(jt, 1) == 2 * 2 * 4  # middle clique has degree 2

    def test_all_costs_indexed(self):
        jt = _chain(3)
        costs = all_clique_costs(jt)
        assert costs == [clique_cost(jt, i) for i in range(3)]


class TestCriticalPath:
    def test_chain_critical_path_is_whole_chain(self):
        jt = _chain(5)
        assert critical_path_weight(jt) == path_weight(jt, list(range(5)))

    def test_mid_root_halves_chain(self):
        jt = _chain(5)
        end = critical_path_weight(jt, 0)
        mid = critical_path_weight(jt, 2)
        assert mid < end

    def test_single_clique(self):
        jt = JunctionTree([Clique(0, (0,), (2,))], [None])
        assert critical_path_weight(jt) == clique_cost(jt, 0)

    def test_explicit_root_argument(self):
        jt = _chain(4)
        assert critical_path_weight(jt, jt.root) == critical_path_weight(jt)


class TestHeaviestLeafPath:
    def test_endpoints_are_undirected_leaves(self):
        for seed in range(5):
            tree = synthetic_tree(30, clique_width=4, seed=seed)
            path = heaviest_leaf_path(tree)
            adj = tree.undirected_adjacency()
            assert len(adj[path[0]]) == 1
            assert len(adj[path[-1]]) == 1

    def test_path_is_connected(self):
        tree = synthetic_tree(40, clique_width=4, seed=3)
        path = heaviest_leaf_path(tree)
        adj = tree.undirected_adjacency()
        for a, b in zip(path, path[1:]):
            assert b in adj[a]

    def test_no_repeated_cliques(self):
        tree = synthetic_tree(40, clique_width=4, seed=4)
        path = heaviest_leaf_path(tree)
        assert len(path) == len(set(path))


class TestSelectRoot:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_bruteforce_weight_on_random_trees(self, seed):
        tree = synthetic_tree(
            25, clique_width=4, avg_children=2, width_jitter=1, seed=seed
        )
        _, fast_weight = select_root(tree)
        _, brute_weight = select_root_bruteforce(tree)
        assert np.isclose(fast_weight, brute_weight)

    @pytest.mark.parametrize("b", [1, 2, 4])
    def test_template_tree_reroots_at_junction(self, b):
        tree = template_tree(b, num_cliques=61, clique_width=5)
        root, _ = select_root(tree)
        assert root == tree.num_cliques - 1  # the junction clique

    def test_single_clique_tree(self):
        jt = JunctionTree([Clique(0, (0,), (2,))], [None])
        root, weight = select_root(jt)
        assert root == 0
        assert weight == clique_cost(jt, 0)

    def test_chain_selects_interior(self):
        jt = _chain(9)
        root, _ = select_root(jt)
        assert root not in (0, 8)

    def test_returned_weight_is_consistent(self):
        tree = synthetic_tree(30, clique_width=4, seed=11)
        root, weight = select_root(tree)
        assert np.isclose(weight, critical_path_weight(tree, root))


class TestReroot:
    def test_preserves_undirected_edges(self):
        tree = synthetic_tree(30, clique_width=4, seed=12)
        new = reroot(tree, 17)
        old_edges = {
            frozenset((i, p)) for i, p in enumerate(tree.parent) if p is not None
        }
        new_edges = {
            frozenset((i, p)) for i, p in enumerate(new.parent) if p is not None
        }
        assert old_edges == new_edges

    def test_sets_requested_root(self):
        tree = synthetic_tree(20, clique_width=4, seed=13)
        assert reroot(tree, 5).root == 5

    def test_shares_potentials(self):
        tree = synthetic_tree(10, clique_width=3, seed=14)
        tree.initialize_potentials(np.random.default_rng(0))
        new = reroot(tree, 3)
        for i in range(tree.num_cliques):
            assert new.potential(i) is tree.potential(i)

    def test_structure_valid_after_reroot(self):
        tree = synthetic_tree(25, clique_width=4, seed=15)
        check_tree_structure(reroot(tree, 11))

    def test_reroot_to_same_root_is_identity_shape(self):
        tree = synthetic_tree(15, clique_width=3, seed=16)
        same = reroot(tree, tree.root)
        assert same.parent == tree.parent

    def test_out_of_range_rejected(self):
        tree = synthetic_tree(5, clique_width=3, seed=17)
        with pytest.raises(ValueError):
            reroot(tree, 99)


class TestRerootOptimally:
    def test_returns_tree_with_selected_root(self):
        tree = synthetic_tree(40, clique_width=4, seed=18)
        rerooted, root, weight = reroot_optimally(tree)
        assert rerooted.root == root
        assert np.isclose(critical_path_weight(rerooted), weight)

    def test_idempotent(self):
        tree = synthetic_tree(40, clique_width=4, seed=19)
        once, root1, w1 = reroot_optimally(tree)
        twice, root2, w2 = reroot_optimally(once)
        assert np.isclose(w1, w2)

    def test_never_worse_than_original(self):
        for seed in range(8):
            tree = synthetic_tree(30, clique_width=4, seed=seed)
            _, _, weight = reroot_optimally(tree)
            assert weight <= critical_path_weight(tree) + 1e-9

    def test_returns_same_object_when_root_optimal(self):
        jt = _chain(3)
        # Root the chain at its centre first.
        centred = reroot(jt, 1)
        result, root, _ = reroot_optimally(centred)
        assert root == 1
        assert result is centred
