"""Rendering helpers and the simulated-machine facade."""

import pytest

from repro.jt.generation import synthetic_tree, template_tree
from repro.jt.render import render_tree, task_graph_to_dot, tree_to_dot
from repro.simcore.machine import Machine
from repro.simcore.policies import (
    CollaborativePolicy,
    OpenMPPolicy,
    SerialPolicy,
)
from repro.simcore.profiles import XEON
from repro.tasks.dag import build_task_graph


class TestRenderTree:
    def test_contains_every_clique(self):
        tree = synthetic_tree(12, clique_width=3, seed=1)
        text = render_tree(tree)
        for i in range(12):
            assert f"C{i} " in text

    def test_line_count_matches_cliques(self):
        tree = synthetic_tree(9, clique_width=3, seed=2)
        assert len(render_tree(tree).splitlines()) == 9

    def test_long_scopes_elided(self):
        tree = synthetic_tree(4, clique_width=10, width_jitter=0, seed=3)
        text = render_tree(tree, max_vars=3)
        assert "+7" in text

    def test_single_clique(self):
        tree = synthetic_tree(1, clique_width=2, seed=4)
        assert render_tree(tree).startswith("C0")


class TestDotExport:
    def test_tree_dot_structure(self):
        tree = template_tree(2, num_cliques=13, clique_width=3)
        dot = tree_to_dot(tree)
        assert dot.startswith("graph junction_tree {")
        assert dot.rstrip().endswith("}")
        assert dot.count(" -- ") == tree.num_cliques - 1

    def test_tree_dot_without_separators(self):
        tree = synthetic_tree(6, clique_width=3, seed=5)
        dot = tree_to_dot(tree, show_separators=False)
        assert "label=\"{" not in dot.split("node", 1)[1].split("];", 1)[1]

    def test_task_graph_dot(self):
        tree = synthetic_tree(5, clique_width=3, seed=6)
        graph = build_task_graph(tree)
        dot = task_graph_to_dot(graph)
        assert dot.startswith("digraph task_graph {")
        assert dot.count("->") == sum(len(s) for s in graph.succs)
        assert "lightblue" in dot and "lightsalmon" in dot


class TestMachine:
    @pytest.fixture(scope="class")
    def graph(self):
        tree = synthetic_tree(24, clique_width=8, seed=7)
        return build_task_graph(tree)

    def test_run(self, graph):
        machine = Machine(XEON, 4)
        result = machine.run(CollaborativePolicy(), graph)
        assert result.num_cores == 4
        assert result.makespan > 0

    def test_compare_keys_by_policy_name(self, graph):
        machine = Machine(XEON, 4)
        results = machine.compare(
            [CollaborativePolicy(), OpenMPPolicy()], graph
        )
        assert set(results) == {"collaborative", "openmp"}

    def test_speedup_curve_starts_at_one(self, graph):
        machine = Machine(XEON, 8)
        curve = machine.speedup_curve(
            CollaborativePolicy(), graph, (1, 2, 4)
        )
        assert curve[0] == pytest.approx(1.0)
        assert curve[-1] > curve[0]

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            Machine(XEON, 0)

    def test_repr(self):
        assert "cores=4" in repr(Machine(XEON, 4))
