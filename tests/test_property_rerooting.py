"""Property-based tests: Algorithm 1 equals brute force on arbitrary trees."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jt.junction_tree import Clique, JunctionTree
from repro.jt.rerooting import (
    critical_path_weight,
    reroot,
    select_root,
    select_root_bruteforce,
)
from repro.jt.validate import check_tree_structure


@st.composite
def random_trees(draw, max_cliques=20):
    """Arbitrary rooted trees with varying clique widths (hence costs)."""
    n = draw(st.integers(min_value=1, max_value=max_cliques))
    parent = [None]
    for i in range(1, n):
        parent.append(draw(st.integers(min_value=0, max_value=i - 1)))
    widths = [draw(st.integers(min_value=1, max_value=5)) for _ in range(n)]
    # Chain scopes: clique i shares one variable with its parent so
    # separators are non-empty; extra variables are fresh.
    next_var = 0
    scopes = []
    for i in range(n):
        if parent[i] is None:
            scope = list(range(next_var, next_var + widths[i]))
            next_var += widths[i]
        else:
            shared = scopes[parent[i]][0]
            fresh = list(range(next_var, next_var + widths[i] - 1))
            next_var += widths[i] - 1
            scope = [shared] + fresh
        scopes.append(scope)
    cliques = [
        Clique(i, scopes[i], [2] * len(scopes[i])) for i in range(n)
    ]
    return JunctionTree(cliques, parent)


@st.composite
def random_trees_mixed_cardinalities(draw, max_cliques=14):
    """Like :func:`random_trees`, but with per-variable cardinalities in
    2..4 so clique costs (Eq. 2) vary non-uniformly with width."""
    n = draw(st.integers(min_value=1, max_value=max_cliques))
    parent = [None]
    for i in range(1, n):
        parent.append(draw(st.integers(min_value=0, max_value=i - 1)))
    widths = [draw(st.integers(min_value=1, max_value=4)) for _ in range(n)]
    next_var = 0
    scopes = []
    cards: dict = {}
    for i in range(n):
        if parent[i] is None:
            scope = list(range(next_var, next_var + widths[i]))
            next_var += widths[i]
        else:
            shared = scopes[parent[i]][0]
            fresh = list(range(next_var, next_var + widths[i] - 1))
            next_var += widths[i] - 1
            scope = [shared] + fresh
        for var in scope:
            if var not in cards:
                cards[var] = draw(st.integers(min_value=2, max_value=4))
        scopes.append(scope)
    cliques = [
        Clique(i, scopes[i], [cards[v] for v in scopes[i]]) for i in range(n)
    ]
    return JunctionTree(cliques, parent)


@given(random_trees())
@settings(max_examples=80, deadline=None)
def test_algorithm1_weight_equals_bruteforce(tree):
    _, fast = select_root(tree)
    _, brute = select_root_bruteforce(tree)
    assert np.isclose(fast, brute)


@given(random_trees_mixed_cardinalities())
@settings(max_examples=80, deadline=None)
def test_algorithm1_weight_equals_bruteforce_mixed_cardinalities(tree):
    # Lemma 1's O(w_C * N) scan must agree with the O(N^2) brute force
    # when cardinalities (hence clique costs) vary, not just widths.
    _, fast = select_root(tree)
    _, brute = select_root_bruteforce(tree)
    assert np.isclose(fast, brute)


@given(random_trees_mixed_cardinalities())
@settings(max_examples=40, deadline=None)
def test_selected_root_is_optimal_mixed_cardinalities(tree):
    root, weight = select_root(tree)
    for candidate in range(tree.num_cliques):
        assert weight <= critical_path_weight(tree, candidate) + 1e-9


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_selected_root_weight_is_minimum_over_all_roots(tree):
    root, weight = select_root(tree)
    for candidate in range(tree.num_cliques):
        assert weight <= critical_path_weight(tree, candidate) + 1e-9


@given(random_trees(), st.data())
@settings(max_examples=60, deadline=None)
def test_reroot_preserves_topology_and_validates(tree, data):
    target = data.draw(
        st.integers(min_value=0, max_value=tree.num_cliques - 1)
    )
    new = reroot(tree, target)
    check_tree_structure(new)
    old = {frozenset((i, p)) for i, p in enumerate(tree.parent) if p is not None}
    fresh = {frozenset((i, p)) for i, p in enumerate(new.parent) if p is not None}
    assert old == fresh


@given(random_trees(), st.data())
@settings(max_examples=60, deadline=None)
def test_critical_path_is_root_independent_representation(tree, data):
    """critical_path_weight(tree, r) must not depend on the stored rooting."""
    r = data.draw(st.integers(min_value=0, max_value=tree.num_cliques - 1))
    other_root = data.draw(
        st.integers(min_value=0, max_value=tree.num_cliques - 1)
    )
    rehung = reroot(tree, other_root)
    assert np.isclose(
        critical_path_weight(tree, r), critical_path_weight(rehung, r)
    )
