"""Junction-tree construction from Bayesian networks."""

import numpy as np
import pytest

from repro.bn.generation import chain_network, naive_bayes_network, random_network
from repro.bn.triangulation import HEURISTICS
from repro.inference.propagation import (
    marginal_from_potentials,
    propagate_reference,
)
from repro.jt.build import junction_tree_from_network
from repro.jt.validate import check_running_intersection, check_tree_structure


class TestStructuralValidity:
    @pytest.mark.parametrize("seed", range(5))
    def test_running_intersection_holds(self, seed):
        bn = random_network(
            14, max_parents=3, edge_probability=0.7, seed=seed
        )
        jt = junction_tree_from_network(bn)
        check_tree_structure(jt)
        check_running_intersection(jt)

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_all_heuristics_produce_valid_trees(self, heuristic):
        bn = random_network(12, max_parents=3, edge_probability=0.8, seed=1)
        jt = junction_tree_from_network(bn, heuristic)
        check_running_intersection(jt)

    def test_every_family_is_covered(self):
        bn = random_network(15, max_parents=3, edge_probability=0.8, seed=2)
        jt = junction_tree_from_network(bn)
        for v in range(bn.num_variables):
            family = set(bn.parents(v)) | {v}
            assert any(
                family <= set(c.variables) for c in jt.cliques
            ), f"family of {v} not covered"

    def test_single_variable_network(self):
        bn = chain_network(1, seed=0)
        jt = junction_tree_from_network(bn)
        assert jt.num_cliques == 1
        assert jt.cliques[0].variables == (0,)

    def test_chain_network_gives_small_cliques(self):
        bn = chain_network(8, seed=0)
        jt = junction_tree_from_network(bn)
        assert all(c.width == 2 for c in jt.cliques)
        assert jt.num_cliques == 7

    def test_naive_bayes_cliques_are_pairs(self):
        bn = naive_bayes_network(5, seed=0)
        jt = junction_tree_from_network(bn)
        assert all(c.width == 2 for c in jt.cliques)
        assert all(0 in c.variables for c in jt.cliques)

    def test_disconnected_network_still_builds(self):
        bn = random_network(8, edge_probability=0.0, seed=0)
        jt = junction_tree_from_network(bn)
        check_tree_structure(jt)
        assert jt.num_cliques == 8


class TestSemanticValidity:
    """The product of CPT-initialized clique potentials must equal the joint."""

    @pytest.mark.parametrize("seed", range(6))
    def test_calibrated_marginals_match_bruteforce(self, seed):
        bn = random_network(
            10, cardinality=2, max_parents=3, edge_probability=0.8, seed=seed
        )
        jt = junction_tree_from_network(bn)
        potentials = propagate_reference(jt)
        for v in range(bn.num_variables):
            got = marginal_from_potentials(jt, potentials, v)
            want = bn.marginal_bruteforce(v)
            assert np.allclose(got, want), f"variable {v} mismatch"

    def test_calibrated_marginals_with_multistate_variables(self):
        bn = random_network(
            8, cardinality=3, max_parents=2, edge_probability=0.8, seed=11
        )
        jt = junction_tree_from_network(bn)
        potentials = propagate_reference(jt)
        for v in range(bn.num_variables):
            assert np.allclose(
                marginal_from_potentials(jt, potentials, v),
                bn.marginal_bruteforce(v),
            )

    def test_total_mass_equals_one_without_evidence(self):
        bn = random_network(9, max_parents=3, edge_probability=0.7, seed=12)
        jt = junction_tree_from_network(bn)
        potentials = propagate_reference(jt)
        # After calibration every clique holds the (unnormalized) marginal;
        # with no evidence the total mass is exactly 1.
        for i in range(jt.num_cliques):
            assert np.isclose(potentials[i].total(), 1.0)
