"""Property-based invariants of the multicore simulator on random DAGs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jt.generation import synthetic_tree
from repro.simcore.policies import CollaborativePolicy, SerialPolicy
from repro.simcore.priority import CriticalPathPolicy
from repro.simcore.profiles import OPTERON, XEON
from repro.simcore.simgraph import build_sim_graph
from repro.tasks.dag import build_task_graph


@st.composite
def task_graphs(draw):
    seed = draw(st.integers(min_value=0, max_value=500))
    num_cliques = draw(st.integers(min_value=2, max_value=20))
    width = draw(st.integers(min_value=2, max_value=8))
    children = draw(st.integers(min_value=1, max_value=4))
    tree = synthetic_tree(
        num_cliques,
        clique_width=width,
        states=2,
        avg_children=children,
        seed=seed,
    )
    return build_task_graph(tree)


@given(task_graphs(), st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_makespan_respects_lower_bounds(graph, cores):
    pol = CollaborativePolicy()
    result = pol.simulate(graph, XEON, cores)
    sim = build_sim_graph(graph, pol.partition_threshold, pol.max_chunks)
    work = sum(XEON.duration(w, cores) for w in sim.weights)
    span = XEON.duration(sim.critical_path(), cores)
    assert result.makespan >= max(span, work / cores) * 0.999


@given(task_graphs(), st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_compute_time_is_conserved(graph, cores):
    pol = CollaborativePolicy()
    result = pol.simulate(graph, XEON, cores)
    sim = build_sim_graph(graph, pol.partition_threshold, pol.max_chunks)
    work = sum(XEON.duration(w, cores) for w in sim.weights)
    assert np.isclose(result.total_compute(), work)


@given(task_graphs(), st.integers(min_value=2, max_value=8))
@settings(max_examples=30, deadline=None)
def test_traced_schedule_is_valid(graph, cores):
    result = CollaborativePolicy().simulate(
        graph, XEON, cores, record_trace=True
    )
    result.trace.check_no_overlap()
    result.trace.check_dependencies(result.sim_graph.deps)
    assert result.trace.makespan() <= result.makespan + 1e-12


@given(task_graphs(), st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_greedy_is_work_conserving(graph, cores):
    """The greedy schedule never exceeds fully-serial execution at the
    same core count's per-task costs (cores can idle, never obstruct)."""
    pol = CollaborativePolicy()
    result = pol.simulate(graph, XEON, cores)
    sim = build_sim_graph(graph, pol.partition_threshold, pol.max_chunks)
    serial_work = sum(XEON.duration(w, cores) for w in sim.weights)
    overhead = sim.num_nodes * XEON.task_sched_overhead(cores)
    # Each task also passes once through the serialized global-list lock.
    lock_serial = sim.num_nodes * XEON.lock_cost if cores > 1 else 0.0
    assert result.makespan <= serial_work + overhead + lock_serial + 1e-12


@given(task_graphs(), st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_priority_scheduler_matches_bounds(graph, cores):
    pol = CriticalPathPolicy()
    result = pol.simulate(graph, XEON, cores)
    sim = build_sim_graph(graph, pol.partition_threshold, pol.max_chunks)
    work = sum(XEON.duration(w, cores) for w in sim.weights)
    span = XEON.duration(sim.critical_path(), cores)
    assert result.makespan >= max(span, work / cores) * 0.999
    overhead = sim.num_nodes * XEON.task_sched_overhead(cores)
    assert result.makespan <= work + overhead + 1e-9


@given(task_graphs())
@settings(max_examples=20, deadline=None)
def test_platform_consistency(graph):
    """A slower platform never finishes first under the same policy."""
    pol = SerialPolicy()
    fast = pol.simulate(graph, XEON)
    slow = pol.simulate(graph, OPTERON)
    assert slow.makespan >= fast.makespan
