"""Log-domain potentials: agreement with linear domain + underflow rescue."""

import numpy as np
import pytest

from repro.bn.generation import chain_network, random_network
from repro.inference.propagation import (
    marginal_from_potentials,
    propagate_reference,
)
from repro.jt.build import junction_tree_from_network
from repro.potential.logspace import (
    LogTable,
    log_marginal,
    propagate_reference_log,
)
from repro.potential.primitives import divide, extend, marginalize, multiply
from repro.potential.table import PotentialTable


def _random(variables, cards, seed=0):
    return PotentialTable.random(
        variables, cards, np.random.default_rng(seed)
    )


class TestLogTableOps:
    def test_roundtrip_conversion(self):
        t = _random([0, 1], [2, 3])
        back = LogTable.from_linear(t).to_linear()
        assert np.allclose(back.values, t.values)

    def test_zero_entries_become_neg_inf(self):
        t = PotentialTable([0], [2], np.array([0.0, 1.0]))
        log = LogTable.from_linear(t)
        assert log.logs[0] == float("-inf")
        assert log.logs[1] == 0.0

    def test_marginalize_matches_linear(self):
        t = _random([0, 1, 2], [2, 3, 2], seed=1)
        log = LogTable.from_linear(t).marginalize((2, 0))
        lin = marginalize(t, (2, 0))
        assert np.allclose(np.exp(log.logs), lin.values)

    def test_marginalize_all_zero_slice(self):
        t = PotentialTable([0, 1], [2, 2], np.array([[0, 0], [1, 2]]))
        log = LogTable.from_linear(t).marginalize((0,))
        assert log.logs[0] == float("-inf")
        assert np.isclose(np.exp(log.logs[1]), 3.0)

    def test_multiply_matches_linear(self):
        a = _random([0, 1], [2, 3], seed=2)
        b = _random([1], [3], seed=3)
        log = LogTable.from_linear(a).multiply(LogTable.from_linear(b))
        lin = multiply(a, b)
        assert np.allclose(np.exp(log.logs), lin.values)

    def test_divide_matches_linear_with_convention(self):
        a = PotentialTable([0], [2], np.array([0.0, 6.0]))
        b = PotentialTable([0], [2], np.array([0.0, 2.0]))
        log = LogTable.from_linear(a).divide(LogTable.from_linear(b))
        lin = divide(a, b)
        assert np.allclose(np.exp(log.logs), lin.values)

    def test_extend_matches_linear(self):
        t = _random([1], [3], seed=4)
        log = LogTable.from_linear(t).extend_to((0, 1), (2, 3))
        lin = extend(t, (0, 1), (2, 3))
        assert np.allclose(np.exp(log.logs), lin.values)

    def test_reduce_matches_linear(self):
        t = _random([0, 1], [2, 2], seed=5)
        log = LogTable.from_linear(t).reduce({0: 1})
        lin = t.reduce({0: 1})
        assert np.allclose(np.exp(log.logs), lin.values)

    def test_log_total(self):
        t = _random([0, 1], [3, 3], seed=6)
        log = LogTable.from_linear(t)
        assert np.isclose(np.exp(log.log_total()), t.total())

    def test_log_total_all_zero(self):
        t = PotentialTable([0], [2], np.zeros(2))
        assert LogTable.from_linear(t).log_total() == float("-inf")

    def test_scope_validation(self):
        a = LogTable.from_linear(_random([0], [2]))
        b = LogTable.from_linear(_random([1], [2]))
        with pytest.raises(ValueError):
            a.divide(b)
        with pytest.raises(ValueError):
            b.extend_to((0,), (2,))
        with pytest.raises(ValueError):
            a.marginalize((9,))


class TestLogPropagation:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_linear_propagation(self, seed):
        bn = random_network(
            9, max_parents=3, edge_probability=0.8, seed=seed
        )
        jt = junction_tree_from_network(bn)
        evidence = {0: 1}
        linear = propagate_reference(jt, evidence)
        logdomain = propagate_reference_log(jt, evidence)
        for v in range(1, 9):
            assert np.allclose(
                log_marginal(jt, logdomain, v),
                marginal_from_potentials(jt, linear, v),
            )

    def test_survives_underflow_regime(self):
        # A 2200-variable chain with evidence on every other variable:
        # P(e) is a product of ~1100 sub-unity terms, far below float64's
        # tiniest subnormal. Linear propagation collapses to all-zero
        # potentials; the log-domain run still produces valid posteriors.
        n = 2200
        bn = chain_network(n, seed=1)
        jt = junction_tree_from_network(bn)
        evidence = {i: 1 for i in range(0, n, 2)}
        query = 751  # an unobserved variable mid-chain

        linear = propagate_reference(jt, evidence)
        assert linear[jt.root].total() == 0.0  # linear domain underflowed

        logdomain = propagate_reference_log(jt, evidence)
        posterior = log_marginal(jt, logdomain, query)
        assert np.isclose(posterior.sum(), 1.0)
        assert np.all(posterior > 0)
        # The evidence log-likelihood is finite and deeply negative.
        root_total = logdomain[jt.root].log_total()
        assert np.isfinite(root_total)
        assert root_total < -500.0

    def test_evidence_likelihood_matches_linear_when_representable(self):
        bn = random_network(
            8, max_parents=2, edge_probability=0.8, seed=9
        )
        jt = junction_tree_from_network(bn)
        evidence = {2: 1}
        linear = propagate_reference(jt, evidence)
        logdomain = propagate_reference_log(jt, evidence)
        assert np.isclose(
            np.exp(logdomain[jt.root].log_total()),
            linear[jt.root].total(),
        )
