"""Incremental evidence propagation and the evidence-keyed query cache.

Covers the stale-evidence correctness fix and the incremental machinery:

* ``Evidence.version`` / ``signature()`` / ``evidence_delta`` semantics.
* The confirmed stale-marginal regression: mutating ``engine.evidence``
  directly after ``propagate()`` must never serve the old posterior.
* Restricted task-graph construction (``collect_edges`` /
  ``distribute_edges``) and the dirty-set helpers.
* Incremental-vs-full numerical equivalence (<= 1e-12) across every
  executor, including hard<->soft transitions and soft overwrites.
* The weakening-delta fallback: retraction over zeroed separators must
  refuse the incremental plan and fall back to full propagation.
* :class:`~repro.inference.cache.QueryCache` LRU behavior and the
  ``engine.query()`` batch API.
"""

import numpy as np
import pytest

from repro.bn.generation import chain_network, random_network
from repro.inference.cache import QueryCache
from repro.inference.engine import InferenceEngine
from repro.inference.evidence import Evidence, evidence_delta
from repro.inference.incremental import (
    distribute_edges_for,
    plan_incremental,
)
from repro.jt.generation import synthetic_tree
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.resilient import ResilientExecutor
from repro.sched.serial import SerialExecutor
from repro.sched.workstealing import WorkStealingExecutor
from repro.tasks.clique_graph import dirty_ancestor_closure, dirty_cliques
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState
from repro.tasks.task import COLLECT, DISTRIBUTE


# --------------------------------------------------------------------- #
# Evidence versioning, signatures, deltas
# --------------------------------------------------------------------- #


class TestEvidenceVersion:
    def test_every_mutation_bumps_version(self):
        ev = Evidence()
        v0 = ev.version
        ev.observe(0, 1)
        assert ev.version == v0 + 1
        ev.observe_soft(1, [0.5, 0.5])
        assert ev.version == v0 + 2
        ev.retract(0)
        assert ev.version == v0 + 3
        # Even a no-op retract bumps (cheap, and guarantees staleness
        # detection never misses a mutation).
        ev.retract(42)
        assert ev.version == v0 + 4

    def test_constructor_assignments_count_as_mutations(self):
        assert Evidence({0: 1, 2: 0}).version == 2

    def test_signature_is_order_independent(self):
        a = Evidence()
        a.observe(3, 1)
        a.observe(1, 0)
        a.observe_soft(2, [0.25, 0.75])
        b = Evidence()
        b.observe_soft(2, [0.25, 0.75])
        b.observe(1, 0)
        b.observe(3, 1)
        assert a.signature() == b.signature()

    def test_signature_distinguishes_hard_from_soft(self):
        hard = Evidence()
        hard.observe(0, 1)
        soft = Evidence()
        soft.observe_soft(0, [0.0, 1.0])
        assert hard.signature() != soft.signature()

    def test_signature_changes_with_weights(self):
        a = Evidence()
        a.observe_soft(0, [0.5, 0.5])
        b = Evidence()
        b.observe_soft(0, [0.4, 0.6])
        assert a.signature() != b.signature()


class TestEvidenceDelta:
    def test_identical_snapshots_have_empty_delta(self):
        changed, weakening = evidence_delta(
            {0: 1}, {2: np.array([0.5, 0.5])},
            {0: 1}, {2: np.array([0.5, 0.5])},
        )
        assert changed == set()
        assert not weakening

    def test_fresh_addition_is_monotone(self):
        changed, weakening = evidence_delta({0: 1, 3: 0}, {}, {0: 1}, {})
        assert changed == {3}
        assert not weakening

    def test_retraction_is_weakening(self):
        changed, weakening = evidence_delta({}, {}, {0: 1}, {})
        assert changed == {0}
        assert weakening

    def test_hard_overwrite_is_weakening(self):
        changed, weakening = evidence_delta({0: 0}, {}, {0: 1}, {})
        assert changed == {0}
        assert weakening

    def test_hard_to_soft_and_back_are_weakening(self):
        changed, weakening = evidence_delta(
            {}, {0: np.array([0.5, 0.5])}, {0: 1}, {}
        )
        assert changed == {0} and weakening
        changed, weakening = evidence_delta(
            {0: 1}, {}, {}, {0: np.array([0.5, 0.5])}
        )
        assert changed == {0} and weakening

    def test_soft_overwrite_is_a_weakening_delta(self):
        changed, weakening = evidence_delta(
            {}, {0: np.array([0.3, 0.7])}, {}, {0: np.array([0.5, 0.5])}
        )
        assert changed == {0}
        assert weakening


# --------------------------------------------------------------------- #
# The confirmed stale-evidence regression
# --------------------------------------------------------------------- #


class TestStaleEvidenceRegression:
    def test_direct_retract_on_evidence_object(self):
        # The exact reproduction from the issue: random_network(12, seed=3),
        # observe(0, 1) -> propagate -> engine.evidence.retract(0).  The
        # marginal of variable 1 must return to the prior, not stay at the
        # stale conditioned value.
        bn = random_network(12, seed=3)
        engine = InferenceEngine.from_network(bn)
        engine.observe(0, 1)
        engine.propagate()
        conditioned = engine.marginal(1).copy()
        engine.evidence.retract(0)
        restored = engine.marginal(1)
        prior = bn.marginal_bruteforce(1)
        np.testing.assert_allclose(restored, prior, atol=1e-12)
        assert not np.allclose(restored, conditioned)

    def test_direct_observe_on_evidence_object(self):
        bn = random_network(12, seed=3)
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        engine.evidence.observe(0, 1)
        np.testing.assert_allclose(
            engine.marginal(1), bn.marginal_bruteforce(1, {0: 1}), atol=1e-12
        )

    def test_direct_observe_soft_on_evidence_object(self):
        bn = random_network(12, seed=3)
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        baseline = engine.marginal(1).copy()
        engine.evidence.observe_soft(0, [0.9, 0.1])
        assert not np.allclose(engine.marginal(1), baseline)

    def test_engine_retract_passthrough(self):
        bn = random_network(12, seed=3)
        engine = InferenceEngine.from_network(bn)
        engine.observe(0, 1).propagate()
        assert engine.retract(0) is engine
        assert 0 not in engine.evidence
        np.testing.assert_allclose(
            engine.marginal(1), bn.marginal_bruteforce(1), atol=1e-12
        )

    def test_likelihood_and_clique_marginal_track_evidence(self):
        bn = random_network(10, seed=5)
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        assert np.isclose(engine.likelihood(), 1.0, atol=1e-9)
        engine.evidence.observe(0, 1)
        lik = engine.likelihood()
        assert lik < 1.0
        table = engine.clique_marginal(engine.jt.root)
        assert np.isclose(table.total(), 1.0)

    def test_marginal_before_any_propagate_still_raises(self):
        bn = random_network(6, seed=9)
        engine = InferenceEngine.from_network(bn)
        with pytest.raises(RuntimeError, match="propagate"):
            engine.marginal(0)


# --------------------------------------------------------------------- #
# Dirty sets and restricted task graphs
# --------------------------------------------------------------------- #


def _tree(num_cliques=16, seed=7, width=3):
    tree = synthetic_tree(
        num_cliques, clique_width=width, states=2, avg_children=2, seed=seed
    )
    tree.initialize_potentials(np.random.default_rng(seed))
    return tree


class TestDirtySets:
    def test_dirty_cliques_cover_every_host(self):
        tree = _tree()
        var = tree.cliques[5].variables[0]
        dirty = dirty_cliques(tree, [var])
        assert dirty
        for i in dirty:
            assert var in tree.cliques[i].variables
        for i in range(tree.num_cliques):
            if i not in dirty:
                assert var not in tree.cliques[i].variables

    def test_closure_reaches_root_and_is_ancestor_closed(self):
        tree = _tree()
        leaf = tree.leaves()[0]
        closure = dirty_ancestor_closure(tree, {leaf})
        assert closure == set(tree.path_to_root(leaf))
        assert tree.root in closure
        for c in closure:
            p = tree.parent[c]
            assert p is None or p in closure

    def test_empty_dirty_set_has_empty_closure(self):
        tree = _tree()
        assert dirty_ancestor_closure(tree, set()) == set()


class TestRestrictedTaskGraph:
    def test_defaults_build_the_full_graph(self):
        tree = _tree()
        full = build_task_graph(tree)
        assert full.num_tasks == 8 * (tree.num_cliques - 1)

    def test_restricted_collect_only_emits_requested_edges(self):
        tree = _tree()
        leaf = tree.leaves()[0]
        closure = dirty_ancestor_closure(tree, {leaf})
        edges = {
            (tree.parent[c], c) for c in closure if tree.parent[c] is not None
        }
        graph = build_task_graph(tree, collect_edges=edges)
        graph.validate()
        collect_edges_seen = {
            t.edge for t in graph.tasks if t.phase == COLLECT
        }
        assert collect_edges_seen == edges
        # Distribute stays full.
        distribute_edges_seen = {
            t.edge for t in graph.tasks if t.phase == DISTRIBUTE
        }
        assert len(distribute_edges_seen) == tree.num_cliques - 1
        assert graph.num_tasks == 4 * len(edges) + 4 * (tree.num_cliques - 1)
        assert graph.num_tasks < build_task_graph(tree).num_tasks

    def test_empty_restrictions_build_an_empty_graph(self):
        tree = _tree()
        graph = build_task_graph(
            tree, collect_edges=(), distribute_edges=()
        )
        assert graph.num_tasks == 0

    def test_distribute_only_graph_is_valid(self):
        tree = _tree()
        child = tree.leaves()[0]
        edges = distribute_edges_for(
            tree, stale=set(range(tree.num_cliques)) - {tree.root},
            targets={child},
        )
        graph = build_task_graph(
            tree, collect_edges=(), distribute_edges=edges
        )
        graph.validate()
        assert graph.num_tasks == 4 * len(edges)
        assert all(t.phase == DISTRIBUTE for t in graph.tasks)

    def test_distribute_edges_for_is_root_closed(self):
        tree = _tree()
        stale = set(range(tree.num_cliques)) - {tree.root}
        for target in tree.leaves():
            edges = distribute_edges_for(tree, stale, {target})
            for p, c in edges:
                gp = tree.parent[p]
                assert gp is None or (gp, p) in edges

    def test_distribute_edges_skip_fresh_cliques(self):
        tree = _tree()
        assert distribute_edges_for(tree, stale=set(), targets=None) == set()


# --------------------------------------------------------------------- #
# Incremental-vs-full equivalence
# --------------------------------------------------------------------- #


def _assert_engines_agree(incremental, full, num_vars):
    for v in range(num_vars):
        np.testing.assert_allclose(
            incremental._state.marginal(v),
            full._state.marginal(v),
            atol=1e-12,
        )
    assert np.isclose(
        incremental._state.likelihood(), full._state.likelihood(), rtol=1e-12
    )


DELTA_SEQUENCE = [
    ("observe", 2, 1),
    ("observe", 7, 0),
    ("observe_soft", 4, [0.2, 0.8]),
    ("retract", 2, None),
    ("observe", 7, 1),          # hard overwrite
    ("observe_soft", 7, [0.6, 0.4]),  # hard -> soft transition
    ("observe", 4, 0),          # soft -> hard transition
    ("observe_soft", 4, [0.3, 0.7]),  # back to soft
    ("retract", 7, None),
]


def _apply(engine, op):
    kind, var, value = op
    if kind == "observe":
        engine.observe(var, value)
    elif kind == "observe_soft":
        engine.observe_soft(var, value)
    else:
        engine.retract(var)


def _run_sequence(executor_factory, num_vars=14, seed=21):
    """Drive an incremental engine through DELTA_SEQUENCE on one executor,
    checking against a freshly-propagated full engine at every step."""
    bn = random_network(num_vars, seed=seed)
    engine = InferenceEngine.from_network(bn)
    engine.propagate(executor_factory())
    saw_incremental = False
    for op in DELTA_SEQUENCE:
        _apply(engine, op)
        engine.propagate(executor_factory())
        full = InferenceEngine.from_network(bn)
        full.set_evidence(engine.evidence)
        full.propagate(incremental=False)
        _assert_engines_agree(engine, full, num_vars)
        if engine.last_stats.incremental:
            saw_incremental = True
            assert engine.last_stats.tasks_skipped > 0
    assert saw_incremental


class TestIncrementalMatchesFull:
    def test_serial(self):
        _run_sequence(SerialExecutor)

    def test_collaborative(self):
        _run_sequence(
            lambda: CollaborativeExecutor(
                num_threads=2, partition_threshold=4096
            )
        )

    def test_workstealing(self):
        _run_sequence(
            lambda: WorkStealingExecutor(
                num_threads=2, partition_threshold=4096
            )
        )

    def test_resilient(self):
        _run_sequence(lambda: ResilientExecutor(SerialExecutor()))

    @pytest.mark.slow
    def test_process(self):
        from repro.sched.process import ProcessSharedMemoryExecutor

        bn = random_network(12, seed=33)
        engine = InferenceEngine.from_network(bn)
        executor = ProcessSharedMemoryExecutor(num_workers=2)
        engine.propagate(executor)
        engine.observe(3, 1)
        engine.propagate(executor)
        assert engine.last_stats.incremental
        full = InferenceEngine.from_network(bn)
        full.set_evidence(engine.evidence)
        full.propagate(incremental=False)
        _assert_engines_agree(engine, full, 12)

    def test_incremental_runs_fewer_tasks(self):
        bn = random_network(20, seed=11)
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        engine.observe(0, 1)
        engine.propagate()
        assert engine.last_stats.incremental
        assert engine.last_stats.tasks_executed < engine.task_graph.num_tasks
        assert engine.last_stats.tasks_skipped == (
            engine.task_graph.num_tasks - engine.last_stats.tasks_executed
        )

    def test_incremental_false_always_runs_full(self):
        bn = random_network(10, seed=12)
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        engine.observe(0, 1)
        engine.propagate(incremental=False)
        assert not engine.last_stats.incremental
        assert engine.last_stats.tasks_executed == engine.task_graph.num_tasks

    def test_incremental_true_with_unchanged_evidence_reuses_state(self):
        bn = random_network(10, seed=13)
        engine = InferenceEngine.from_network(bn)
        first = engine.propagate()
        again = engine.propagate(incremental=True)
        assert again is first

    def test_auto_with_unchanged_evidence_keeps_full_rerun_semantics(self):
        bn = random_network(10, seed=14)
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        engine.propagate()
        assert not engine.last_stats.incremental
        assert engine.last_stats.tasks_executed == engine.task_graph.num_tasks

    def test_trace_meta_labels_incremental_runs(self):
        bn = random_network(12, seed=15)
        engine = InferenceEngine.from_network(bn)
        engine.propagate(trace=True)
        assert engine.last_trace.meta["mode"] == "full"
        engine.observe(1, 0)
        engine.propagate(trace=True)
        meta = engine.last_trace.meta
        assert meta["mode"] == "incremental"
        assert meta["dirty_cliques"] >= 1
        assert meta["tasks_skipped"] == engine.last_stats.tasks_skipped


# --------------------------------------------------------------------- #
# Weakening fallback (zero-reopening hazard)
# --------------------------------------------------------------------- #


class TestWeakeningFallback:
    def _engine_with_carried_zeroed_separator(self):
        """An engine where a weakening delta leaves a zeroed separator
        *carried* (its child outside the rebuild set).

        Chain 0 -> 1 -> ... -> 7: hard evidence on variable 1 (which lives
        in the separator between cliques {0,1} and {1,2}) zeroes that
        separator after propagation.  A later retraction of variable 7 —
        hosted at the far end of the chain — dirties only the far-end
        cliques, so the zeroed separator would be reused as a divide
        denominator and the planner must refuse.
        """
        bn = chain_network(8, seed=3)
        engine = InferenceEngine.from_network(bn)
        engine.observe(1, 0)
        engine.observe(7, 1)
        engine.propagate()
        from repro.tasks.clique_graph import (
            dirty_ancestor_closure,
            dirty_cliques,
        )

        rebuild = dirty_ancestor_closure(
            engine.jt, dirty_cliques(engine.jt, {7})
        )
        carried_zeros = any(
            np.any(table.values == 0.0)
            for (parent, child), table in engine._state.separators.items()
            if child not in rebuild
        )
        # The scenario must actually exercise the hazard path; if the
        # rooting ever changes such that it does not, fail loudly here.
        assert carried_zeros
        return bn, engine

    def test_plan_refuses_weakening_over_zeroed_separators(self):
        bn, engine = self._engine_with_carried_zeroed_separator()
        engine.evidence.retract(7)
        plan = plan_incremental(
            engine.jt,
            engine._state,
            engine.evidence.as_dict(),
            engine.evidence.soft_as_dict(),
        )
        assert plan is None

    def test_engine_falls_back_to_full_and_stays_correct(self):
        bn, engine = self._engine_with_carried_zeroed_separator()
        engine.retract(7)
        engine.propagate()
        assert not engine.last_stats.incremental
        for v in range(8):
            np.testing.assert_allclose(
                engine.marginal(v),
                bn.marginal_bruteforce(v, {1: 0}),
                atol=1e-12,
            )

    def test_query_path_also_falls_back(self):
        bn, engine = self._engine_with_carried_zeroed_separator()
        engine.evidence.retract(7)
        # marginal() heals through _sync, which must detect the unsound
        # plan and run a full repropagation.
        np.testing.assert_allclose(
            engine.marginal(6), bn.marginal_bruteforce(6, {1: 0}), atol=1e-12
        )

    def test_retracting_the_separator_variable_itself_is_sound(self):
        # Zeros caused by the retracted variable live in separators whose
        # child cliques are dirtied by that same retraction, so they are
        # reset rather than carried: the plan stays incremental.
        bn = chain_network(8, seed=3)
        engine = InferenceEngine.from_network(bn)
        engine.observe(1, 0)
        engine.propagate()
        engine.evidence.retract(1)
        plan = plan_incremental(
            engine.jt,
            engine._state,
            engine.evidence.as_dict(),
            engine.evidence.soft_as_dict(),
        )
        if plan is not None:  # rooting-dependent; correctness either way
            engine.propagate()
            assert engine.last_stats.incremental
        for v in range(8):
            np.testing.assert_allclose(
                engine.marginal(v), bn.marginal_bruteforce(v), atol=1e-12
            )

    def test_monotone_delta_over_zeros_stays_incremental(self):
        bn, engine = self._engine_with_carried_zeroed_separator()
        engine.observe(6, 1)
        engine.propagate()
        assert engine.last_stats.incremental
        for v in range(8):
            np.testing.assert_allclose(
                engine.marginal(v),
                bn.marginal_bruteforce(v, engine.evidence.as_dict()),
                atol=1e-12,
            )


# --------------------------------------------------------------------- #
# QueryCache
# --------------------------------------------------------------------- #


class TestQueryCache:
    def test_miss_then_hit(self):
        cache = QueryCache(capacity=4)
        sig = (((0, 1),), ())
        assert cache.get_marginal(sig, 5) is None
        cache.put_marginal(sig, 5, np.array([0.25, 0.75]))
        np.testing.assert_array_equal(
            cache.get_marginal(sig, 5), [0.25, 0.75]
        )
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate() == 0.5

    def test_lru_eviction_by_signature(self):
        cache = QueryCache(capacity=2)
        for i in range(3):
            cache.put_marginal(((("sig", i),), ()), 0, np.array([1.0, 0.0]))
        assert len(cache) == 2
        assert cache.get_marginal(((("sig", 0),), ()), 0) is None

    def test_likelihood_entries(self):
        cache = QueryCache()
        sig = ((), ())
        assert cache.get_likelihood(sig) is None
        cache.put_likelihood(sig, 0.125)
        assert cache.get_likelihood(sig) == 0.125

    def test_stored_arrays_are_immutable_copies(self):
        cache = QueryCache()
        values = np.array([0.5, 0.5])
        cache.put_marginal(((), ()), 0, values)
        values[0] = 99.0
        stored = cache.get_marginal(((), ()), 0)
        np.testing.assert_array_equal(stored, [0.5, 0.5])
        with pytest.raises(ValueError):
            stored[0] = 1.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=0)


class TestEngineQuery:
    def test_first_query_autopropagates(self):
        bn = random_network(10, seed=17)
        engine = InferenceEngine.from_network(bn)
        result = engine.query({0: 1}, vars=[3])
        np.testing.assert_allclose(
            result[3], bn.marginal_bruteforce(3, {0: 1}), atol=1e-12
        )

    def test_repeated_query_hits_cache_without_running_tasks(self):
        bn = random_network(10, seed=18)
        engine = InferenceEngine.from_network(bn)
        engine.query({0: 1}, vars=[3, 5])
        stats_before = engine.last_stats
        hits_before = engine.cache.hits
        result = engine.query(vars=[3, 5])
        assert engine.cache.hits >= hits_before + 2
        assert engine.last_stats is stats_before  # no propagation ran
        np.testing.assert_allclose(
            result[3], bn.marginal_bruteforce(3, {0: 1}), atol=1e-12
        )

    def test_query_delta_kinds(self):
        bn = random_network(10, seed=19)
        engine = InferenceEngine.from_network(bn)
        engine.query({0: 1})
        engine.query({0: None})  # retract
        assert 0 not in engine.evidence
        result = engine.query({2: [0.3, 0.7]}, vars=[4])  # soft
        assert engine.evidence.has_soft
        assert 4 in result

    def test_query_returns_all_variables_by_default(self):
        bn = random_network(8, seed=20)
        engine = InferenceEngine.from_network(bn)
        result = engine.query()
        assert sorted(result) == list(range(8))
        for v, values in result.items():
            np.testing.assert_allclose(
                values, bn.marginal_bruteforce(v), atol=1e-12
            )

    def test_alternating_evidence_sets_hit_cache(self):
        # Near-duplicate traffic: two evidence sets queried alternately
        # must be served from the cache after the first round.
        bn = random_network(10, seed=22)
        engine = InferenceEngine.from_network(bn)
        engine.query({0: 1}, vars=[5])
        engine.query({0: 0}, vars=[5])
        hits_before = engine.cache.hits
        a = engine.query({0: 1}, vars=[5])[5]
        b = engine.query({0: 0}, vars=[5])[5]
        assert engine.cache.hits == hits_before + 2
        np.testing.assert_allclose(
            a, bn.marginal_bruteforce(5, {0: 1}), atol=1e-12
        )
        np.testing.assert_allclose(
            b, bn.marginal_bruteforce(5, {0: 0}), atol=1e-12
        )

    def test_marginal_uses_cache(self):
        bn = random_network(10, seed=23)
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        engine.marginal(4)
        hits_before = engine.cache.hits
        engine.marginal(4)
        assert engine.cache.hits == hits_before + 1

    def test_targeted_query_leaves_other_cliques_lazily_stale(self):
        bn = random_network(16, seed=24)
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        engine.observe(0, 1)
        engine.query(vars=[0])
        # Later queries for other variables must still be exact.
        for v in range(16):
            np.testing.assert_allclose(
                engine.marginal(v),
                bn.marginal_bruteforce(v, {0: 1}),
                atol=1e-12,
            )
