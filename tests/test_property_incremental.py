"""Property-based tests: incremental propagation equals full propagation.

For random evidence-delta sequences — hard observations, retractions,
overwrites, soft findings, hard<->soft transitions — an engine that
repropagates incrementally after every delta must agree with a freshly
built engine running full propagation, to 1e-12, on every executor.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bn.generation import random_network
from repro.inference.engine import InferenceEngine
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.resilient import ResilientExecutor
from repro.sched.serial import SerialExecutor
from repro.sched.workstealing import WorkStealingExecutor

NUM_VARS = 10


@st.composite
def delta_sequences(draw, num_vars=NUM_VARS, max_len=6):
    """A sequence of evidence mutations, biased toward overlap so that
    overwrites, transitions and retractions of live findings occur."""
    length = draw(st.integers(min_value=1, max_value=max_len))
    ops = []
    for _ in range(length):
        var = draw(st.integers(min_value=0, max_value=num_vars - 1))
        kind = draw(st.sampled_from(["observe", "retract", "soft"]))
        if kind == "observe":
            ops.append(("observe", var, draw(st.integers(0, 1))))
        elif kind == "soft":
            weights = [
                draw(st.floats(min_value=0.05, max_value=1.0)),
                draw(st.floats(min_value=0.05, max_value=1.0)),
            ]
            ops.append(("soft", var, weights))
        else:
            ops.append(("retract", var, None))
    return ops


def _apply(engine, op):
    kind, var, value = op
    if kind == "observe":
        engine.observe(var, value)
    elif kind == "soft":
        engine.observe_soft(var, value)
    else:
        engine.retract(var)


def _check_sequence(bn, ops, executor_factory):
    engine = InferenceEngine.from_network(bn)
    engine.propagate(executor_factory())
    for op in ops:
        _apply(engine, op)
        engine.propagate(executor_factory())
        oracle = InferenceEngine.from_network(bn)
        oracle.set_evidence(engine.evidence)
        oracle.propagate(incremental=False)
        for v in range(NUM_VARS):
            np.testing.assert_allclose(
                engine._state.marginal(v),
                oracle._state.marginal(v),
                atol=1e-12,
            )
        np.testing.assert_allclose(
            engine._state.likelihood(),
            oracle._state.likelihood(),
            rtol=1e-12,
            atol=1e-300,
        )


@given(seed=st.integers(min_value=0, max_value=40), ops=delta_sequences())
@settings(max_examples=40, deadline=None)
def test_incremental_matches_full_serial(seed, ops):
    _check_sequence(random_network(NUM_VARS, seed=seed), ops, SerialExecutor)


@given(seed=st.integers(min_value=0, max_value=15), ops=delta_sequences(max_len=4))
@settings(max_examples=12, deadline=None)
def test_incremental_matches_full_collaborative(seed, ops):
    _check_sequence(
        random_network(NUM_VARS, seed=seed),
        ops,
        lambda: CollaborativeExecutor(num_threads=2, partition_threshold=4096),
    )


@given(seed=st.integers(min_value=0, max_value=15), ops=delta_sequences(max_len=4))
@settings(max_examples=12, deadline=None)
def test_incremental_matches_full_workstealing(seed, ops):
    _check_sequence(
        random_network(NUM_VARS, seed=seed),
        ops,
        lambda: WorkStealingExecutor(num_threads=2, partition_threshold=4096),
    )


@given(seed=st.integers(min_value=0, max_value=15), ops=delta_sequences(max_len=4))
@settings(max_examples=12, deadline=None)
def test_incremental_matches_full_resilient(seed, ops):
    _check_sequence(
        random_network(NUM_VARS, seed=seed),
        ops,
        lambda: ResilientExecutor(SerialExecutor()),
    )


@pytest.mark.slow
def test_incremental_matches_full_process_fixed_sequences():
    """Process executor: fixed delta sequences (pool startup is expensive,
    so this is not Hypothesis-driven; one executor is reused throughout)."""
    from repro.sched.process import ProcessSharedMemoryExecutor

    bn = random_network(NUM_VARS, seed=5)
    executor = ProcessSharedMemoryExecutor(num_workers=2)
    engine = InferenceEngine.from_network(bn)
    engine.propagate(executor)
    sequence = [
        ("observe", 2, 1),
        ("soft", 4, [0.3, 0.7]),
        ("observe", 4, 0),
        ("retract", 2, None),
    ]
    for op in sequence:
        _apply(engine, op)
        engine.propagate(executor)
        oracle = InferenceEngine.from_network(bn)
        oracle.set_evidence(engine.evidence)
        oracle.propagate(incremental=False)
        for v in range(NUM_VARS):
            np.testing.assert_allclose(
                engine._state.marginal(v),
                oracle._state.marginal(v),
                atol=1e-12,
            )
