"""Tests for the concurrent inference service layer (repro.serve).

Covers the satellite fixes (QueryCache thread-safety, engine
re-entrancy, executor deadlines) and the service itself: admission
control, coalescing, deadlines, stale serving, the circuit breaker, and
graceful drain.  The contract every test enforces somewhere: a response
is exact (vs a fresh serial oracle) or an explicit refusal.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.inference.cache import QueryCache
from repro.inference.engine import InferenceEngine
from repro.jt.build import junction_tree_from_network
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.faults import TaskExecutionError
from repro.sched.resilient import ResilientExecutor
from repro.sched.serial import SerialExecutor
from repro.sched.workstealing import WorkStealingExecutor
from repro.serve import (
    CircuitBreaker,
    DeadlineExceeded,
    EngineSessionPool,
    InferenceService,
    Overloaded,
    QueryRequest,
    ServiceClosed,
)
from repro.tasks.state import PropagationState


@pytest.fixture(scope="module")
def serve_network():
    return random_network(
        18, cardinality=2, max_parents=3, edge_probability=0.7, seed=21
    )


@pytest.fixture(scope="module")
def serve_tree(serve_network):
    return junction_tree_from_network(serve_network)


@pytest.fixture
def oracle(serve_network):
    return InferenceEngine.from_network(serve_network)


def exact_marginals(oracle, request):
    oracle.set_evidence(request.evidence())
    oracle.propagate(incremental=False)
    variables = request.vars
    if variables is None:
        return oracle.marginals_all()
    return {int(v): oracle.marginal(int(v)) for v in variables}


# --------------------------------------------------------------------- #
# Satellite: QueryCache thread-safety
# --------------------------------------------------------------------- #


class TestQueryCacheConcurrency:
    def test_concurrent_put_get_no_corruption(self):
        cache = QueryCache(capacity=16)
        errors = []

        def hammer(tid):
            try:
                for i in range(400):
                    sig = (("h", ((tid + i) % 24, 1)), ("s",))
                    cache.put_marginal(sig, i % 5, np.array([0.5, 0.5]))
                    got = cache.get_marginal(sig, i % 5)
                    if got is not None:
                        assert got.shape == (2,)
                    cache.put_likelihood(sig, 0.25)
                    cache.get_likelihood(sig)
                    if i % 97 == 0:
                        cache.clear()
                    len(cache)
                    cache.hit_rate()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache) <= 16  # LRU capacity respected under the storm

    def test_returned_arrays_are_write_protected(self):
        cache = QueryCache(capacity=4)
        sig = (("h", (0, 1)), ("s",))
        cache.put_marginal(sig, 0, np.array([0.3, 0.7]))
        out = cache.get_marginal(sig, 0)
        with pytest.raises(ValueError):
            out[0] = 99.0  # cached entries are immutable to all clients
        assert cache.get_marginal(sig, 0)[0] == pytest.approx(0.3)


# --------------------------------------------------------------------- #
# Satellite: engine re-entrancy
# --------------------------------------------------------------------- #


class TestEngineReentrancy:
    def test_concurrent_queries_one_engine_exact(self, serve_network):
        engine = InferenceEngine.from_network(serve_network)
        oracle = InferenceEngine.from_network(serve_network)
        deltas = [{v: v % 2} for v in range(8)]
        results = {}
        errors = []

        def worker(idx):
            try:
                # Full evidence replacement per call keeps each thread's
                # conditioning self-contained despite the shared engine.
                engine.set_evidence(deltas[idx])
                engine.propagate(incremental=False)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(deltas))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # Whatever evidence won the race, the state must be consistent
        # with it (no interleaved half-propagation).
        final = engine.evidence.as_dict()
        oracle.set_evidence(final)
        oracle.propagate(incremental=False)
        for var in (10, 15):
            np.testing.assert_allclose(
                engine.marginal(var), oracle.marginal(var), atol=1e-9
            )


# --------------------------------------------------------------------- #
# Satellite: executor deadlines
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "executor_factory",
    [
        SerialExecutor,
        lambda: CollaborativeExecutor(num_threads=2),
        lambda: WorkStealingExecutor(num_threads=2),
    ],
    ids=["serial", "collaborative", "workstealing"],
)
class TestExecutorDeadlines:
    def test_expired_deadline_raises(self, serve_tree, executor_factory):
        engine = InferenceEngine(serve_tree)
        executor = executor_factory()
        with pytest.raises(TaskExecutionError) as info:
            engine.propagate(
                executor, deadline=time.monotonic() - 1.0
            )
        assert info.value.phase == "deadline"

    def test_generous_deadline_is_exact(
        self, serve_tree, executor_factory, oracle
    ):
        engine = InferenceEngine(serve_tree)
        engine.set_evidence({0: 1})
        engine.propagate(
            executor_factory(), deadline=time.monotonic() + 60.0
        )
        oracle.set_evidence({0: 1})
        oracle.propagate(incremental=False)
        np.testing.assert_allclose(
            engine.marginal(9), oracle.marginal(9), atol=1e-9
        )

    def test_engine_recovers_after_deadline_miss(
        self, serve_tree, executor_factory, oracle
    ):
        engine = InferenceEngine(serve_tree)
        engine.set_evidence({1: 0})
        with pytest.raises(TaskExecutionError):
            engine.propagate(
                executor_factory(), deadline=time.monotonic() - 1.0
            )
        # The miss must not poison the engine: the next call answers.
        engine.propagate(executor_factory())
        oracle.set_evidence({1: 0})
        oracle.propagate(incremental=False)
        np.testing.assert_allclose(
            engine.marginal(7), oracle.marginal(7), atol=1e-9
        )


def test_resilient_deadline_does_not_cascade(serve_tree):
    """A slower tier cannot beat a clock the fast tier missed: re-raise."""
    engine = InferenceEngine(serve_tree)
    wrapped = ResilientExecutor(
        CollaborativeExecutor(num_threads=2),
        fallbacks=[SerialExecutor()],
    )
    with pytest.raises(TaskExecutionError) as info:
        engine.propagate(wrapped, deadline=time.monotonic() - 1.0)
    assert info.value.phase == "deadline"


def test_resilient_forwards_deadline_to_surviving_tier(serve_tree):
    class Broken:
        def run(self, graph, state):
            raise RuntimeError("always down")

    engine = InferenceEngine(serve_tree)
    wrapped = ResilientExecutor(Broken(), fallbacks=[SerialExecutor()])
    state = engine.propagate(wrapped, deadline=time.monotonic() + 60.0)
    assert isinstance(state, PropagationState)
    assert engine.last_stats.completed_executor == "SerialExecutor"


# --------------------------------------------------------------------- #
# CircuitBreaker unit
# --------------------------------------------------------------------- #


class TestCircuitBreaker:
    def make(self, **kw):
        self.now = [0.0]
        kw.setdefault("clock", lambda: self.now[0])
        return CircuitBreaker(**kw)

    def test_opens_after_threshold(self):
        br = self.make(failure_threshold=3, reset_timeout=10.0)
        for _ in range(2):
            br.record_failure()
        assert br.state == "closed" and br.allow()
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()
        assert br.opens == 1

    def test_success_resets_failure_streak(self):
        br = self.make(failure_threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"  # streak broken, not cumulative

    def test_half_open_probe_success_closes(self):
        br = self.make(failure_threshold=1, reset_timeout=5.0)
        br.record_failure()
        assert not br.allow()
        self.now[0] = 5.0
        assert br.allow()  # the probe slot
        assert br.state == "half-open"
        assert not br.allow()  # only one probe
        br.record_success()
        assert br.state == "closed"
        assert br.allow()

    def test_half_open_probe_failure_reopens(self):
        br = self.make(failure_threshold=1, reset_timeout=5.0)
        br.record_failure()
        self.now[0] = 5.0
        assert br.allow()
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()
        assert br.opens == 2

    def test_release_probe_unblocks_next_probe(self):
        br = self.make(failure_threshold=1, reset_timeout=1.0)
        br.record_failure()
        self.now[0] = 1.0
        assert br.allow()
        assert not br.allow()
        br.release_probe()  # abandoned attempt hands the slot back
        assert br.allow()

    def test_transitions_recorded(self):
        br = self.make(failure_threshold=1, reset_timeout=1.0)
        br.record_failure("boom")
        self.now[0] = 1.0
        br.allow()
        br.record_success()
        states = [(t.from_state, t.to_state) for t in br.transitions]
        assert states == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
        assert "boom" in br.transitions[0].reason


# --------------------------------------------------------------------- #
# EngineSessionPool
# --------------------------------------------------------------------- #


class TestEngineSessionPool:
    def test_sessions_share_tree_and_cache(self, serve_tree):
        pool = EngineSessionPool.from_junction_tree(serve_tree, sessions=3)
        assert pool.num_sessions == 3
        assert all(e.jt is pool.engines[0].jt for e in pool.engines)
        assert all(e.cache is pool.cache for e in pool.engines)

    def test_checkout_blocks_until_checkin(self, serve_tree):
        pool = EngineSessionPool.from_junction_tree(serve_tree, sessions=1)
        with pool.session() as engine:
            assert engine is pool.engines[0]
            with pytest.raises(Exception):
                with pool.session(timeout=0.05):
                    pass  # pragma: no cover
        with pool.session(timeout=1.0) as engine:
            assert engine is pool.engines[0]

    def test_warm_sessions_answer_immediately(self, serve_tree, oracle):
        pool = EngineSessionPool.from_junction_tree(serve_tree, sessions=2)
        oracle.set_evidence({})
        oracle.propagate(incremental=False)
        with pool.session() as engine:
            np.testing.assert_allclose(
                engine.marginal(3), oracle.marginal(3), atol=1e-9
            )


# --------------------------------------------------------------------- #
# InferenceService
# --------------------------------------------------------------------- #


def make_service(serve_tree, **kw):
    pool = EngineSessionPool.from_junction_tree(
        serve_tree, sessions=kw.pop("sessions", 2)
    )
    kw.setdefault("fallback", CollaborativeExecutor(num_threads=2))
    kw.setdefault("max_queue", 32)
    return InferenceService(pool, **kw)


class TestServiceCorrectness:
    @pytest.mark.parametrize(
        "fallback_factory",
        [
            SerialExecutor,
            lambda: CollaborativeExecutor(num_threads=2),
            lambda: WorkStealingExecutor(num_threads=2),
        ],
        ids=["serial", "collaborative", "workstealing"],
    )
    def test_concurrent_clients_exact_on_every_tier(
        self, serve_tree, oracle, fallback_factory
    ):
        service = make_service(serve_tree, fallback=fallback_factory())
        requests = [
            QueryRequest(delta={v: v % 2}, vars=[10, 15], deadline=30.0)
            for v in range(6)
        ]
        futures = [service.submit(r) for r in requests]
        for request, future in zip(requests, futures):
            response = future.result(60.0)
            assert response.status == "ok", response.error
            exact = exact_marginals(oracle, request)
            for var, values in response.marginals.items():
                np.testing.assert_allclose(values, exact[var], atol=1e-9)
        report = service.drain()
        assert report.failed == 0

    def test_all_vars_request(self, serve_tree, oracle):
        service = make_service(serve_tree)
        response = service.query(delta={2: 1}, vars=None, deadline=30.0)
        service.drain()
        assert response.status == "ok"
        exact = exact_marginals(
            oracle, QueryRequest(delta={2: 1}, vars=None)
        )
        assert set(response.marginals) == set(exact)
        for var, values in response.marginals.items():
            np.testing.assert_allclose(values, exact[var], atol=1e-9)

    def test_soft_evidence_request(self, serve_tree, oracle):
        service = make_service(serve_tree)
        request = QueryRequest(
            delta={4: [0.8, 0.2], 9: 1}, vars=[12], deadline=30.0
        )
        response = service.submit(request).result(60.0)
        service.drain()
        assert response.status == "ok"
        exact = exact_marginals(oracle, request)
        np.testing.assert_allclose(
            response.marginals[12], exact[12], atol=1e-9
        )


class TestServiceCoalescing:
    def test_identical_requests_coalesce(self, serve_tree, oracle):
        service = make_service(serve_tree, workers=1, sessions=1)
        request = QueryRequest(delta={3: 1}, vars=[11], deadline=30.0)
        futures = [service.submit(request) for _ in range(12)]
        responses = [f.result(60.0) for f in futures]
        report = service.drain()
        assert all(r.status == "ok" for r in responses)
        assert report.coalesced > 0
        exact = exact_marginals(oracle, request)
        for r in responses:
            np.testing.assert_allclose(
                r.marginals[11], exact[11], atol=1e-9
            )

    def test_coalesced_union_of_vars(self, serve_tree, oracle):
        service = make_service(serve_tree, workers=1, sessions=1)
        reqs = [
            QueryRequest(delta={3: 1}, vars=[v], deadline=30.0)
            for v in (8, 11, 14)
        ]
        futures = [service.submit(r) for r in reqs]
        for request, future in zip(reqs, futures):
            response = future.result(60.0)
            assert response.status == "ok"
            assert set(response.marginals) == set(request.vars)
            exact = exact_marginals(oracle, request)
            for var in request.vars:
                np.testing.assert_allclose(
                    response.marginals[var], exact[var], atol=1e-9
                )
        service.drain()

    def test_repeat_signature_served_from_cache(self, serve_tree):
        service = make_service(serve_tree)
        first = service.query(delta={5: 0}, vars=[10], deadline=30.0)
        second = service.query(delta={5: 0}, vars=[10], deadline=30.0)
        report = service.drain()
        assert first.status == second.status == "ok"
        np.testing.assert_allclose(
            first.marginals[10], second.marginals[10], atol=0
        )
        assert report.tier_counts.get("cache", 0) >= 1


class TestServiceAdmission:
    def test_overload_sheds_explicitly(self, serve_tree):
        service = make_service(serve_tree, max_queue=1, workers=1,
                               sessions=1)
        futures = [
            service.submit(
                QueryRequest(delta={v % 18: 0}, vars=[2], deadline=30.0)
            )
            for v in range(40)
        ]
        responses = [f.result(60.0) for f in futures]
        report = service.drain()
        statuses = {r.status for r in responses}
        assert report.shed > 0
        assert statuses <= {"ok", "shed"}
        shed = [r for r in responses if r.status == "shed"]
        assert all(r.marginals == {} and r.error for r in shed)
        with pytest.raises(Overloaded):
            shed[0].raise_for_status()

    @staticmethod
    def _overloaded_service(serve_tree, prime_delta):
        """A service wedged at full queue, store primed under prime_delta.

        Returns ``(service, release)``: the worker is blocked inside a
        gated executor and the admission queue holds one more flight, so
        every subsequent submit deterministically takes the overload
        path.  ``release()`` unblocks the worker (call before drain).
        """

        class GatedSerial(SerialExecutor):
            def __init__(self):
                super().__init__()
                self.gate = threading.Event()
                self.gate.set()
                self.entered = threading.Event()

            def run(self, graph, state, **kw):
                self.entered.set()
                assert self.gate.wait(60.0)
                return super().run(graph, state, **kw)

        executor = GatedSerial()
        service = make_service(
            serve_tree, max_queue=1, workers=1, sessions=1,
            fallback=executor,
        )
        # Prime the last-known store with an exact answer for var 2
        # under the priming conditioning (the gate is open).
        primed = service.query(delta=prime_delta, vars=[2], deadline=30.0)
        assert primed.status == "ok"
        # Close the gate, wedge the worker on one flight, then fill the
        # queue with a second — admission is now deterministically full.
        executor.gate.clear()
        executor.entered.clear()
        service.submit(QueryRequest(delta={5: 1}, vars=[2], deadline=30.0))
        assert executor.entered.wait(30.0)
        service.submit(QueryRequest(delta={6: 1}, vars=[2], deadline=30.0))
        return service, executor.gate.set

    def test_overload_serves_stale_when_allowed(self, serve_tree, oracle):
        service, release = self._overloaded_service(
            serve_tree, prime_delta={0: 1}
        )
        # Same conditioning as the primed store entry: the stale answer
        # is a dated answer to the *same* question, so it may be served.
        future = service.submit(
            QueryRequest(
                delta={0: 1}, vars=[2], deadline=30.0, max_staleness=60.0
            )
        )
        response = future.result(60.0)
        release()
        report = service.drain()
        assert response.status == "stale"
        assert response.stale_age is not None
        assert response.stale_age <= 60.0
        assert report.served_stale == 1
        assert report.stale_signature_miss == 0
        exact = exact_marginals(
            oracle, QueryRequest(delta={0: 1}, vars=[2])
        )
        np.testing.assert_allclose(
            response.marginals[2], exact[2], atol=1e-9
        )

    def test_overload_never_serves_other_conditionings_stale(
        self, serve_tree, oracle
    ):
        # Regression: the stale store is keyed by variable, and
        # _resolve_overload used to discard the stored evidence
        # signature — an overloaded request conditioning on {3: 1} was
        # handed the marginals computed under {0: 1}.  The fixed
        # contract sheds on signature mismatch, always.
        service, release = self._overloaded_service(
            serve_tree, prime_delta={0: 1}
        )
        future = service.submit(
            QueryRequest(
                delta={3: 1}, vars=[2], deadline=30.0, max_staleness=60.0
            )
        )
        response = future.result(60.0)
        release()
        report = service.drain()
        # Never another conditioning's marginals: refuse explicitly.
        assert response.status == "shed"
        assert response.marginals == {}
        assert report.served_stale == 0
        assert report.stale_signature_miss == 1
        assert report.to_dict()["stale_signature_miss"] == 1
        with pytest.raises(Overloaded):
            response.raise_for_status()
        # The primed answer really is different evidence: the two
        # conditionings give different posteriors for var 2.
        primed = exact_marginals(oracle, QueryRequest(delta={0: 1}, vars=[2]))
        other = exact_marginals(oracle, QueryRequest(delta={3: 1}, vars=[2]))
        assert float(np.abs(primed[2] - other[2]).max()) > 1e-12

    def test_expired_staleness_is_shed(self, serve_tree):
        service = make_service(serve_tree, max_queue=1, workers=1,
                               sessions=1)
        assert service.query(vars=[2], deadline=30.0).status == "ok"
        time.sleep(0.05)
        futures = [
            service.submit(
                QueryRequest(
                    delta={v % 18: 0}, vars=[2], deadline=30.0,
                    max_staleness=1e-4,  # far younger than anything stored
                )
            )
            for v in range(30)
        ]
        responses = [f.result(60.0) for f in futures]
        service.drain()
        assert {r.status for r in responses} <= {"ok", "shed"}


class TestServiceDeadlines:
    def test_unmeetable_deadline_is_explicit(self, serve_tree):
        service = make_service(serve_tree)
        response = service.query(delta={0: 1}, vars=[5], deadline=1e-6)
        service.drain()
        assert response.status == "deadline"
        assert response.marginals == {}
        with pytest.raises(DeadlineExceeded):
            response.raise_for_status()

    def test_deadline_miss_count_in_report(self, serve_tree):
        service = make_service(serve_tree)
        for _ in range(3):
            service.query(delta={1: 0}, vars=[5], deadline=1e-6)
        report = service.drain()
        assert report.deadline_missed == 3


class TestServiceBreaker:
    class FailingPrimary:
        def __init__(self, fail_first: int):
            self.fail_first = fail_first
            self.calls = 0
            self._serial = SerialExecutor()

        def run(self, graph, state, tracer=None, deadline=None):
            self.calls += 1
            if self.calls <= self.fail_first:
                raise RuntimeError("pool down")
            return self._serial.run(graph, state, deadline=deadline)

    def test_failures_open_breaker_and_fallback_is_exact(
        self, serve_tree, oracle
    ):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        service = make_service(
            serve_tree,
            primary=self.FailingPrimary(fail_first=10 ** 9),
            breaker=breaker,
            workers=1,
            sessions=1,
        )
        requests = [
            QueryRequest(delta={v: 1}, vars=[10], deadline=30.0)
            for v in range(5)
        ]
        for request in requests:
            response = service.submit(request).result(60.0)
            assert response.status == "ok", response.error
            exact = exact_marginals(oracle, request)
            np.testing.assert_allclose(
                response.marginals[10], exact[10], atol=1e-9
            )
        report = service.drain()
        assert breaker.state == "open"
        assert report.breaker_short_circuits > 0
        assert any(t.to_state == "open" for t in report.breaker_transitions)

    def test_half_open_probe_recovers(self, serve_tree):
        clockbox = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=lambda: clockbox[0]
        )
        primary = self.FailingPrimary(fail_first=1)
        service = make_service(
            serve_tree, primary=primary, breaker=breaker, workers=1,
            sessions=1,
        )
        assert service.query(delta={0: 1}, vars=[4],
                             deadline=30.0).status == "ok"
        assert breaker.state == "open"
        clockbox[0] = 5.0  # open window elapses on the injected clock
        assert service.query(delta={1: 1}, vars=[4],
                             deadline=30.0).status == "ok"
        report = service.drain()
        assert breaker.state == "closed"
        assert primary.calls == 2  # the probe actually reached the primary
        assert [t.to_state for t in report.breaker_transitions] == [
            "open", "half-open", "closed",
        ]

    def test_unhealthy_primary_result_falls_back_exactly(
        self, serve_tree, oracle
    ):
        class Corruptor:
            """Completes the run, then poisons a table: the service's
            health guard must catch it before any marginal escapes."""

            def run(self, graph, state, tracer=None, deadline=None):
                stats = SerialExecutor().run(graph, state, deadline=deadline)
                next(iter(state.potentials.values())).values[...] = np.nan
                return stats

        service = make_service(
            serve_tree, primary=Corruptor(), workers=1, sessions=1,
        )
        request = QueryRequest(delta={6: 1}, vars=[13], deadline=30.0)
        response = service.submit(request).result(60.0)
        service.drain()
        assert response.status == "ok"
        exact = exact_marginals(oracle, request)
        np.testing.assert_allclose(
            response.marginals[13], exact[13], atol=1e-9
        )


class TestServiceDrain:
    def test_drain_finishes_inflight_and_rejects_new(self, serve_tree):
        service = make_service(serve_tree, workers=2)
        futures = [
            service.submit(
                QueryRequest(delta={v: 0}, vars=[3], deadline=30.0)
            )
            for v in range(8)
        ]
        report = service.drain()
        # Every admitted request resolved (exact or refused), none lost.
        assert all(f.done() for f in futures)
        assert report.submitted == 8
        assert (
            report.served_ok + report.shed + report.deadline_missed
            + report.failed == 8
        )
        with pytest.raises(ServiceClosed):
            service.submit(QueryRequest(vars=[0]))

    def test_drain_is_idempotent(self, serve_tree):
        service = make_service(serve_tree)
        first = service.drain()
        assert service.drain() is first

    def test_no_leaked_threads(self, serve_tree):
        before = {t.name for t in threading.enumerate()}
        service = make_service(serve_tree, workers=3)
        for v in range(4):
            service.query(delta={v: 1}, vars=[2], deadline=30.0)
        service.drain()
        after = {
            t.name
            for t in threading.enumerate()
            if t.is_alive() and t.name not in before
        }
        assert after == set()

    def test_context_manager_drains(self, serve_tree):
        with make_service(serve_tree) as service:
            assert service.query(vars=[1], deadline=30.0).status == "ok"
        assert service._report is not None

    def test_report_latency_percentiles(self, serve_tree):
        service = make_service(serve_tree)
        for v in range(5):
            service.query(delta={v: 0}, vars=[6], deadline=30.0)
        report = service.drain()
        assert set(report.latency) == {"p50", "p90", "p99"}
        assert 0 < report.latency["p50"] <= report.latency["p99"]
        # The serve spans back the percentiles: they must be in the trace.
        serve_spans = [
            s for s in report.trace.spans if s.cat == "serve"
        ]
        assert len(serve_spans) == report.submitted
        assert report.format()  # renders without raising


# --------------------------------------------------------------------- #
# Micro-batching
# --------------------------------------------------------------------- #


class _GateExecutor(SerialExecutor):
    """SerialExecutor whose first run blocks until released.

    With ``workers=1`` this pins the single worker on one flight while a
    test fills the queue, making the micro-batch grouping deterministic.
    """

    def __init__(self):
        super().__init__()
        self.started = threading.Event()  # first run reached the gate
        self.release = threading.Event()
        self._blocked = False

    def run(self, graph, state, **kw):
        if not self._blocked:
            self._blocked = True
            self.started.set()
            assert self.release.wait(timeout=30.0)
        return super().run(graph, state, **kw)


class TestServiceMicroBatching:
    def _gated_service(self, serve_tree, **kw):
        gate = _GateExecutor()
        service = make_service(
            serve_tree, sessions=1, workers=1, fallback=gate, **kw
        )
        return service, gate

    def test_queued_flights_batch_together_and_stay_exact(
        self, serve_tree, oracle
    ):
        service, gate = self._gated_service(serve_tree, max_batch=8)
        blocker = service.submit(
            # Non-empty delta: an empty one is a propagation no-op on the
            # pre-warmed session and would never reach the gate.
            QueryRequest(delta={17: 1}, vars=[1], deadline=30.0)
        )
        assert gate.started.wait(timeout=30.0)
        requests = [
            QueryRequest(delta={v: 1}, vars=[10, 15], deadline=30.0)
            for v in range(4)
        ]
        futures = [service.submit(r) for r in requests]
        gate.release.set()
        responses = [f.result(timeout=30) for f in futures]
        assert blocker.result(timeout=30).status == "ok"
        assert not blocker.result().batched
        for request, response in zip(requests, responses):
            assert response.status == "ok"
            assert response.batched
            exact = exact_marginals(oracle, request)
            for var in request.vars:
                np.testing.assert_allclose(
                    response.marginals[var], exact[var],
                    rtol=1e-9, atol=1e-12,
                )
        report = service.drain()
        assert report.batches == 1
        assert report.batched_flights == 4
        assert report.single_flights == 1
        assert report.quarantined == 0

    def test_priority_order_preserved_under_batching(self, serve_tree):
        # max_batch=2 with three queued priorities: the batch takes the
        # two best priorities, the worst is served afterwards on its own.
        service, gate = self._gated_service(serve_tree, max_batch=2)
        blocker = service.submit(
            # Non-empty delta: an empty one is a propagation no-op on the
            # pre-warmed session and would never reach the gate.
            QueryRequest(delta={17: 1}, vars=[1], deadline=30.0)
        )
        assert gate.started.wait(timeout=30.0)
        by_priority = {
            prio: service.submit(
                QueryRequest(
                    delta={prio: 0}, vars=[5], deadline=30.0, priority=prio
                )
            )
            for prio in (5, 0, 9)
        }
        gate.release.set()
        responses = {
            prio: f.result(timeout=30) for prio, f in by_priority.items()
        }
        assert blocker.result(timeout=30).status == "ok"
        assert all(r.status == "ok" for r in responses.values())
        assert responses[0].batched and responses[5].batched
        assert not responses[9].batched
        service.drain()

    def test_expired_member_refused_others_exact(self, serve_tree, oracle):
        service, gate = self._gated_service(serve_tree, max_batch=8)
        blocker = service.submit(
            # Non-empty delta: an empty one is a propagation no-op on the
            # pre-warmed session and would never reach the gate.
            QueryRequest(delta={17: 1}, vars=[1], deadline=30.0)
        )
        assert gate.started.wait(timeout=30.0)
        doomed = service.submit(
            QueryRequest(delta={2: 1}, vars=[4], deadline=0.05)
        )
        live_request = QueryRequest(delta={3: 0}, vars=[4], deadline=30.0)
        live = service.submit(live_request)
        time.sleep(0.2)  # let the short deadline lapse while queued
        gate.release.set()
        assert blocker.result(timeout=30).status == "ok"
        assert doomed.result(timeout=30).status == "deadline"
        response = live.result(timeout=30)
        assert response.status == "ok"
        exact = exact_marginals(oracle, live_request)
        np.testing.assert_allclose(
            response.marginals[4], exact[4], rtol=1e-9, atol=1e-12
        )
        report = service.drain()
        assert report.deadline_missed == 1

    def test_poisoned_case_quarantined_individually(
        self, serve_tree, oracle, monkeypatch
    ):
        # Fault injection: one batch column comes back NaN from the
        # engine.  That request must get an explicit failure — never a
        # silently wrong posterior — while its batch-mates stay exact.
        poison_delta = {7: 1}
        original = InferenceEngine.propagate_batch

        def poisoned(self, evidences, **kw):
            state = original(self, evidences, **kw)
            for i, (hard, _soft) in enumerate(state.case_evidence or []):
                if hard == poison_delta:
                    state.potentials[state.jt.root].values[i] = np.nan
            return state

        monkeypatch.setattr(InferenceEngine, "propagate_batch", poisoned)
        service, gate = self._gated_service(serve_tree, max_batch=8)
        blocker = service.submit(
            # Non-empty delta: an empty one is a propagation no-op on the
            # pre-warmed session and would never reach the gate.
            QueryRequest(delta={17: 1}, vars=[1], deadline=30.0)
        )
        assert gate.started.wait(timeout=30.0)
        victim = service.submit(
            QueryRequest(delta=dict(poison_delta), vars=[4], deadline=30.0)
        )
        healthy_request = QueryRequest(delta={3: 0}, vars=[4], deadline=30.0)
        healthy = service.submit(healthy_request)
        gate.release.set()
        assert blocker.result(timeout=30).status == "ok"
        failed = victim.result(timeout=30)
        assert failed.status == "failed"
        assert "quarantin" in (failed.error or "")
        assert failed.marginals == {}
        response = healthy.result(timeout=30)
        assert response.status == "ok" and response.batched
        exact = exact_marginals(oracle, healthy_request)
        np.testing.assert_allclose(
            response.marginals[4], exact[4], rtol=1e-9, atol=1e-12
        )
        report = service.drain()
        assert report.quarantined == 1
        assert report.batched_flights == 1

    def test_drain_reports_batched_vs_single_counts(self, serve_tree):
        service, gate = self._gated_service(serve_tree, max_batch=4)
        blocker = service.submit(
            QueryRequest(delta={17: 1}, vars=[2], deadline=30.0)
        )
        assert gate.started.wait(timeout=30.0)
        futures = [
            service.submit(
                QueryRequest(delta={v: 1}, vars=[2], deadline=30.0)
            )
            for v in range(3)
        ]
        gate.release.set()
        for f in [blocker, *futures]:
            assert f.result(timeout=30).status == "ok"
        report = service.drain()
        assert report.batches == 1
        assert report.batched_flights == 3
        assert report.single_flights == 1
        assert report.batched_flights + report.single_flights == 4
        rendered = report.to_dict()
        for key in (
            "batches", "batched_flights", "single_flights", "quarantined"
        ):
            assert key in rendered
        assert "micro-batched" in report.format()

    def test_default_service_never_batches(self, serve_tree):
        service = make_service(serve_tree)  # max_batch defaults to 1
        responses = [
            service.query(delta={v: 0}, vars=[6], deadline=30.0)
            for v in range(4)
        ]
        assert all(r.status == "ok" and not r.batched for r in responses)
        report = service.drain()
        assert report.batches == 0
        assert report.batched_flights == 0


# --------------------------------------------------------------------- #
# Robustness satellites: drain vs in-flight batch, abandoned probes
# --------------------------------------------------------------------- #


class TestDrainRacesBatchedFlight:
    def test_drain_waits_for_inflight_batch_and_loses_nothing(
        self, serve_tree
    ):
        gate = _GateExecutor()
        service = make_service(
            serve_tree, sessions=1, workers=1, fallback=gate, max_batch=8
        )
        blocker = service.submit(
            QueryRequest(delta={17: 1}, vars=[1], deadline=30.0)
        )
        assert gate.started.wait(timeout=30.0)
        futures = [
            service.submit(
                QueryRequest(delta={v: 1}, vars=[2], deadline=30.0)
            )
            for v in range(3)
        ]
        # Drain begins while the worker is wedged mid-flight and three
        # flights are queued behind it.
        drained = {}

        def drain_target():
            drained["report"] = service.drain()

        drainer = threading.Thread(target=drain_target)
        drainer.start()
        time.sleep(0.05)
        assert "report" not in drained  # drain is genuinely waiting
        with pytest.raises(ServiceClosed):
            service.submit(QueryRequest(vars=[0]))
        gate.release.set()
        drainer.join(timeout=30.0)
        assert not drainer.is_alive()
        report = drained["report"]
        # Every admitted request resolved exactly; the queued flights
        # rode one batch served after drain began.
        assert blocker.result(timeout=1).status == "ok"
        for future in futures:
            assert future.result(timeout=1).status == "ok"
        assert report.submitted == 4
        assert report.served_ok == 4
        assert report.batches == 1
        assert report.batched_flights == 3


class TestAbandonedProbeRelease:
    def test_deadline_before_probe_attempt_releases_the_slot(
        self, serve_tree
    ):
        clockbox = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=lambda: clockbox[0]
        )
        service = make_service(
            serve_tree,
            primary=SerialExecutor(),
            breaker=breaker,
            workers=1,
            sessions=1,
        )
        breaker.record_failure("seeded failure")
        assert breaker.state == "open"
        clockbox[0] = 5.0  # the open window elapses: next allow() probes

        # Steal the pool's only session so the worker reserves its probe
        # slot in _tiers() and then blocks on session checkout until the
        # request's deadline has already passed.
        engine = service.pool._free.get(timeout=5.0)
        future = service.submit(
            QueryRequest(delta={0: 1}, vars=[1], deadline=0.3)
        )
        time.sleep(0.6)
        service.pool._free.put(engine)

        response = future.result(timeout=10.0)
        assert response.status == "deadline"
        assert breaker.state == "half-open"
        # The abandoned probe slot was handed back: probing is not
        # starved, the next caller can still attempt the primary.
        assert breaker._probes_in_flight == 0
        assert breaker.allow()
        breaker.release_probe()
        service.drain()
