"""PropagationState: task execution must reproduce the reference results."""

import numpy as np
import pytest

from repro.inference.propagation import propagate_reference
from repro.jt.generation import synthetic_tree
from repro.potential.partition import chunk_ranges
from repro.sched.serial import SerialExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState


@pytest.fixture
def tree():
    t = synthetic_tree(12, clique_width=3, states=2, avg_children=2, seed=21)
    t.initialize_potentials(np.random.default_rng(21))
    return t


class TestStateSetup:
    def test_requires_potentials(self):
        bare = synthetic_tree(5, clique_width=3, seed=0)
        with pytest.raises(ValueError, match="potentials"):
            PropagationState(bare)

    def test_copies_potentials(self, tree):
        state = PropagationState(tree)
        state.potentials[0].values[:] = 0
        assert not np.all(tree.potential(0).values == 0)

    def test_evidence_absorbed_at_setup(self, tree):
        var = tree.cliques[3].variables[0]
        state = PropagationState(tree, {var: 1})
        host = 3
        reduced = tree.potential(host).reduce({var: 1})
        assert np.allclose(state.potentials[host].values, reduced.values)

    def test_separators_start_as_identity(self, tree):
        state = PropagationState(tree)
        for table in state.separators.values():
            assert np.all(table.values == 1.0)


class TestSerialExecution:
    def test_matches_reference_propagation(self, tree):
        graph = build_task_graph(tree)
        state = PropagationState(tree)
        SerialExecutor().run(graph, state)
        reference = propagate_reference(tree)
        for i in range(tree.num_cliques):
            assert state.potentials[i].allclose(reference[i]), f"clique {i}"

    def test_matches_reference_with_evidence(self, tree):
        evidence = {tree.cliques[0].variables[0]: 1}
        graph = build_task_graph(tree)
        state = PropagationState(tree, evidence)
        SerialExecutor().run(graph, state)
        reference = propagate_reference(tree, evidence)
        for i in range(tree.num_cliques):
            assert state.potentials[i].allclose(reference[i])

    def test_calibration_consistency(self, tree):
        """After propagation, adjacent cliques agree on their separator."""
        from repro.potential.primitives import marginalize

        graph = build_task_graph(tree)
        state = PropagationState(tree)
        SerialExecutor().run(graph, state)
        for child in range(tree.num_cliques):
            parent = tree.parent[child]
            if parent is None:
                continue
            sep = tree.separator(child, parent)
            from_child = marginalize(state.potentials[child], sep)
            from_parent = marginalize(state.potentials[parent], sep)
            assert np.allclose(from_child.values, from_parent.values)

    def test_stats_reported(self, tree):
        graph = build_task_graph(tree)
        state = PropagationState(tree)
        stats = SerialExecutor().run(graph, state)
        assert stats.num_threads == 1
        assert stats.tasks_executed == graph.num_tasks
        assert stats.wall_time > 0
        assert stats.compute_time[0] > 0


class TestChunkedExecution:
    def test_every_task_chunked_equals_whole(self, tree):
        """Run the whole graph, executing each task via chunks."""
        graph = build_task_graph(tree)
        whole_state = PropagationState(tree)
        chunk_state = PropagationState(tree)
        for tid in graph.topological_order():
            task = graph.tasks[tid]
            whole_state.execute(task)
            ranges = chunk_ranges(task.partition_size, 3)
            parts = [
                chunk_state.execute_chunk(task, lo, hi) for lo, hi in ranges
            ]
            chunk_state.combine_chunks(task, parts, ranges)
        for i in range(tree.num_cliques):
            assert np.allclose(
                whole_state.potentials[i].values,
                chunk_state.potentials[i].values,
            )

    def test_combine_requires_matching_lengths(self, tree):
        graph = build_task_graph(tree)
        state = PropagationState(tree)
        task = graph.tasks[graph.roots()[0]]
        with pytest.raises(ValueError, match="equal length"):
            state.combine_chunks(task, [np.zeros(2)], [(0, 1), (1, 2)])


class TestQueries:
    def test_marginal_is_distribution(self, tree):
        graph = build_task_graph(tree)
        state = PropagationState(tree)
        SerialExecutor().run(graph, state)
        var = tree.cliques[5].variables[0]
        m = state.marginal(var)
        assert np.isclose(m.sum(), 1.0)
        assert np.all(m >= 0)

    def test_clique_marginal_normalized(self, tree):
        graph = build_task_graph(tree)
        state = PropagationState(tree)
        SerialExecutor().run(graph, state)
        cm = state.clique_marginal(2)
        assert np.isclose(cm.total(), 1.0)

    def test_likelihood_decreases_with_evidence(self, tree):
        graph = build_task_graph(tree)
        free = PropagationState(tree)
        SerialExecutor().run(graph, free)
        var = tree.cliques[0].variables[0]
        clamped = PropagationState(tree, {var: 0})
        SerialExecutor().run(graph, clamped)
        assert clamped.likelihood() <= free.likelihood() + 1e-12
