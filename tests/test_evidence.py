"""Tests for the Evidence container."""

import pytest

from repro.inference.evidence import Evidence


class TestEvidence:
    def test_construct_from_mapping(self):
        e = Evidence({3: 1, 5: 0})
        assert e.as_dict() == {3: 1, 5: 0}
        assert len(e) == 2

    def test_observe_and_retract(self):
        e = Evidence()
        e.observe(2, 1)
        assert 2 in e
        e.retract(2)
        assert 2 not in e

    def test_retract_missing_is_noop(self):
        e = Evidence()
        e.retract(7)
        assert len(e) == 0

    def test_reobserve_overwrites(self):
        e = Evidence({1: 0})
        e.observe(1, 1)
        assert e.as_dict() == {1: 1}

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            Evidence({-1: 0})
        with pytest.raises(ValueError):
            Evidence({0: -2})

    def test_iteration(self):
        e = Evidence({1: 0, 2: 1})
        assert dict(iter(e)) == {1: 0, 2: 1}

    def test_checked_against_valid(self):
        e = Evidence({0: 1, 2: 2})
        assert e.checked_against([2, 2, 3]) == {0: 1, 2: 2}

    def test_checked_against_unknown_variable(self):
        e = Evidence({5: 0})
        with pytest.raises(ValueError, match="does not exist"):
            e.checked_against([2, 2])

    def test_checked_against_state_out_of_range(self):
        e = Evidence({0: 2})
        with pytest.raises(ValueError, match="out of range"):
            e.checked_against([2])

    def test_as_dict_is_copy(self):
        e = Evidence({0: 1})
        d = e.as_dict()
        d[0] = 99
        assert e.as_dict() == {0: 1}

    def test_repr(self):
        assert "Evidence" in repr(Evidence({1: 0}))
