"""Tests for ExecutionStats metrics and small utility modules."""

import numpy as np
import pytest

from repro.sched.stats import ExecutionStats, SpanRecord
from repro.util.rng import make_rng, spawn_rngs
from repro.util.validation import check_positive, check_probability_vector


class TestExecutionStats:
    def test_totals(self):
        stats = ExecutionStats(
            num_threads=2, compute_time=[1.0, 3.0], sched_time=[0.5, 0.5]
        )
        assert stats.total_compute() == 4.0
        assert stats.total_sched() == 1.0

    def test_sched_ratio(self):
        stats = ExecutionStats(
            num_threads=1, compute_time=[9.0], sched_time=[1.0]
        )
        assert stats.sched_ratio() == pytest.approx(0.1)

    def test_sched_ratio_empty_is_zero(self):
        assert ExecutionStats().sched_ratio() == 0.0

    def test_load_imbalance(self):
        stats = ExecutionStats(
            num_threads=2, compute_time=[1.0, 3.0], sched_time=[0, 0]
        )
        assert stats.load_imbalance() == pytest.approx(1.5)

    def test_load_imbalance_degenerate_cases(self):
        assert ExecutionStats().load_imbalance() == 1.0
        zero = ExecutionStats(num_threads=2, compute_time=[0.0, 0.0])
        assert zero.load_imbalance() == 1.0

    def test_load_imbalance_excludes_master_slot(self):
        # Process-executor shape: two balanced workers plus a mostly-idle
        # trailing master slot.  The master must not deflate the mean.
        stats = ExecutionStats(
            num_threads=2,
            compute_time=[2.0, 2.0, 0.1],
            master_slot=2,
        )
        assert stats.worker_slots() == [0, 1]
        assert stats.load_imbalance() == pytest.approx(1.0)
        # Without the master marker all three slots count, as before.
        unmarked = ExecutionStats(
            num_threads=2, compute_time=[2.0, 2.0, 0.1]
        )
        assert unmarked.worker_slots() == [0, 1, 2]
        assert unmarked.load_imbalance() > 1.0

    def test_load_imbalance_all_workers_idle_with_master(self):
        # Everything ran inline on the master: worker compute is all zero,
        # which must read as "balanced", not divide by zero.
        stats = ExecutionStats(
            num_threads=2,
            compute_time=[0.0, 0.0, 5.0],
            master_slot=2,
        )
        assert stats.load_imbalance() == 1.0

    def test_per_worker_summary_marks_master_role(self):
        stats = ExecutionStats(
            num_threads=2,
            compute_time=[1.0, 2.0, 0.5],
            sched_time=[0.1, 0.2, 0.0],
            tasks_per_thread=[3, 4, 1],
            worker_pids=[101, 102, 100],
            master_slot=2,
        )
        rows = stats.per_worker_summary()
        assert [r["role"] for r in rows] == ["worker", "worker", "master"]
        assert [r["pid"] for r in rows] == [101, 102, 100]

    def test_per_worker_summary_tolerates_short_lists(self):
        # After a pool restart the per-slot lists can disagree in length
        # (replacement workers get trailing compute slots before their
        # pid/sched/task entries exist).  Summary rows must not IndexError.
        stats = ExecutionStats(
            num_threads=2,
            compute_time=[1.0, 2.0, 0.5, 0.7],
            sched_time=[0.1],
            tasks_per_thread=[3, 4],
            worker_pids=[101],
            master_slot=2,
        )
        rows = stats.per_worker_summary()
        assert len(rows) == 4
        assert rows[0]["pid"] == 101 and rows[0]["sched_time"] == 0.1
        for row in rows[1:]:
            assert row["pid"] is None
            assert row["sched_time"] == 0.0
        assert [r["tasks"] for r in rows] == [3, 4, 0, 0]
        assert rows[2]["role"] == "master"


class TestSpanRecord:
    def test_unpacks_like_legacy_tuple(self):
        rec = SpanRecord(tid=7, worker=1, start=0.5, end=1.25)
        tid, worker, start, end = rec
        assert (tid, worker, start, end) == (7, 1, 0.5, 1.25)

    def test_indexing_and_len(self):
        rec = SpanRecord(tid=7, worker=1, start=0.5, end=1.25)
        assert len(rec) == 4
        assert rec[0] == 7
        assert rec[-1] == 1.25
        assert rec[1:3] == (1, 0.5)

    def test_duration(self):
        assert SpanRecord(0, 0, 1.0, 3.5).duration == pytest.approx(2.5)


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        a = make_rng(5).random()
        b = make_rng(5).random()
        assert a == b

    def test_make_rng_passes_generator_through(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_make_rng_none_gives_fresh_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_spawn_rngs_independent_and_reproducible(self):
        a = spawn_rngs(7, 3)
        b = spawn_rngs(7, 3)
        assert len(a) == 3
        for x, y in zip(a, b):
            assert x.random() == y.random()
        # Streams differ from each other.
        fresh = spawn_rngs(7, 2)
        assert fresh[0].random() != fresh[1].random()

    def test_spawn_rngs_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1.0)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0.0)

    def test_check_probability_vector_accepts_valid(self):
        check_probability_vector([0.25, 0.75])

    def test_check_probability_vector_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sums to"):
            check_probability_vector([0.4, 0.4])

    def test_check_probability_vector_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            check_probability_vector([-0.5, 1.5])

    def test_check_probability_vector_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_probability_vector([])
