"""Soft (virtual / likelihood) evidence against brute-force computation."""

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.inference.engine import InferenceEngine
from repro.inference.evidence import Evidence
from repro.potential.primitives import marginalize
from repro.potential.table import PotentialTable


def _brute_posterior(bn, target, weights_by_var, hard=None):
    """Posterior with likelihood vectors multiplied into the joint."""
    joint = bn.joint_table()
    if hard:
        joint = joint.reduce(hard)
    values = joint.values
    for var, weights in weights_by_var.items():
        axis = joint.variables.index(var)
        shape = [1] * len(joint.cardinalities)
        shape[axis] = len(weights)
        values = values * np.asarray(weights).reshape(shape)
    weighted = PotentialTable(joint.variables, joint.cardinalities, values)
    return marginalize(weighted, (target,)).normalize().values


class TestEvidenceApi:
    def test_observe_soft_and_retract(self):
        e = Evidence()
        e.observe_soft(3, [0.5, 0.5])
        assert e.has_soft
        e.retract(3)
        assert not e.has_soft

    def test_invalid_weights_rejected(self):
        e = Evidence()
        with pytest.raises(ValueError):
            e.observe_soft(0, [1.0])  # too short
        with pytest.raises(ValueError):
            e.observe_soft(0, [-0.1, 1.0])  # negative
        with pytest.raises(ValueError):
            e.observe_soft(0, [0.0, 0.0])  # all zero
        with pytest.raises(ValueError):
            e.observe_soft(-1, [0.5, 0.5])

    def test_checked_against_validates_length(self):
        e = Evidence()
        e.observe_soft(0, [0.2, 0.3, 0.5])
        with pytest.raises(ValueError, match="weights"):
            e.checked_against([2, 2])

    def test_soft_as_dict_is_copy(self):
        e = Evidence()
        e.observe_soft(0, [0.5, 0.5])
        d = e.soft_as_dict()
        d[0][0] = 99.0
        assert e.soft_as_dict()[0][0] == 0.5


class TestSoftInference:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bruteforce(self, seed):
        bn = random_network(
            8, cardinality=2, max_parents=3, edge_probability=0.8, seed=seed
        )
        engine = InferenceEngine.from_network(bn)
        weights = {2: [0.3, 0.9], 6: [1.0, 0.25]}
        for var, w in weights.items():
            engine.observe_soft(var, w)
        engine.propagate()
        for target in (0, 4, 7):
            got = engine.marginal(target)
            want = _brute_posterior(bn, target, weights)
            assert np.allclose(got, want), f"seed {seed} target {target}"

    def test_mixed_hard_and_soft(self):
        bn = random_network(
            8, max_parents=2, edge_probability=0.8, seed=9
        )
        engine = InferenceEngine.from_network(bn)
        engine.observe(1, 0)
        engine.observe_soft(3, [0.1, 0.8])
        engine.propagate()
        want = _brute_posterior(bn, 5, {3: [0.1, 0.8]}, hard={1: 0})
        assert np.allclose(engine.marginal(5), want)

    def test_uniform_soft_evidence_is_noop(self):
        bn = random_network(
            7, max_parents=2, edge_probability=0.8, seed=10
        )
        plain = InferenceEngine.from_network(bn)
        plain.propagate()
        soft = InferenceEngine.from_network(bn)
        soft.observe_soft(2, [1.0, 1.0])
        soft.propagate()
        assert np.allclose(plain.marginal(4), soft.marginal(4))

    def test_sharp_soft_evidence_approaches_hard(self):
        bn = random_network(
            7, max_parents=2, edge_probability=0.8, seed=11
        )
        hard = InferenceEngine.from_network(bn)
        hard.set_evidence({2: 1})
        hard.propagate()
        soft = InferenceEngine.from_network(bn)
        soft.observe_soft(2, [0.0, 1.0])
        soft.propagate()
        assert np.allclose(hard.marginal(5), soft.marginal(5))

    def test_soft_evidence_survives_set_evidence_copy(self):
        bn = random_network(6, max_parents=2, edge_probability=0.8, seed=12)
        e = Evidence({0: 1})
        e.observe_soft(2, [0.4, 0.6])
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence(e)
        engine.propagate()
        want = _brute_posterior(bn, 4, {2: [0.4, 0.6]}, hard={0: 1})
        assert np.allclose(engine.marginal(4), want)

    def test_mpe_with_soft_evidence(self):
        from repro.inference.mpe import max_propagate, mpe_bruteforce

        bn = random_network(6, max_parents=2, edge_probability=0.8, seed=13)
        engine = InferenceEngine.from_network(bn)
        w = np.array([0.05, 1.0])
        engine.observe_soft(1, w)
        assignment, prob = engine.mpe()
        # Brute force over the likelihood-weighted joint.
        joint = bn.joint_table()
        shape = [1] * 6
        shape[joint.variables.index(1)] = 2
        weighted = PotentialTable(
            joint.variables,
            joint.cardinalities,
            joint.values * w.reshape(shape),
        )
        _, expected = mpe_bruteforce(weighted)
        assert np.isclose(prob, expected)


class TestMarginalsAll:
    def test_marginals_all_covers_every_variable(self):
        bn = random_network(9, max_parents=2, edge_probability=0.8, seed=14)
        engine = InferenceEngine.from_network(bn)
        engine.propagate()
        all_marginals = engine.marginals_all()
        assert set(all_marginals) == set(range(9))
        for v, m in all_marginals.items():
            assert np.isclose(m.sum(), 1.0)
            assert np.allclose(m, bn.marginal_bruteforce(v))
