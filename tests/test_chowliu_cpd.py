"""Chow-Liu structure learning and CPD builders."""

import numpy as np
import pytest

from repro.bn.chowliu import (
    chow_liu_tree,
    empirical_mutual_information,
    fit_chow_liu,
)
from repro.bn.cpd import (
    deterministic_cpd,
    noisy_or_cpd,
    tabular_cpd,
    uniform_cpd,
)
from repro.bn.generation import chain_network
from repro.bn.network import BayesianNetwork
from repro.bn.sampling import forward_sample
from repro.inference.engine import InferenceEngine


class TestMutualInformation:
    def test_independent_columns_near_zero(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, size=(4000, 2))
        mi = empirical_mutual_information(data, 0, 1, [2, 2])
        assert mi < 0.01

    def test_identical_columns_equal_entropy(self):
        rng = np.random.default_rng(1)
        col = rng.integers(0, 2, size=4000)
        data = np.stack([col, col], axis=1)
        mi = empirical_mutual_information(data, 0, 1, [2, 2])
        p = col.mean()
        entropy = -(p * np.log(p) + (1 - p) * np.log(1 - p))
        assert mi == pytest.approx(entropy, rel=0.01)

    def test_empty_data(self):
        assert empirical_mutual_information(
            np.zeros((0, 2), dtype=int), 0, 1, [2, 2]
        ) == 0.0


class TestChowLiu:
    def test_recovers_chain_skeleton(self):
        truth = chain_network(6, seed=2)
        data = forward_sample(truth, 5000, seed=2)
        edges = chow_liu_tree(data, [2] * 6, root=0)
        skeleton = {frozenset(e) for e in edges}
        expected = {frozenset((i, i + 1)) for i in range(5)}
        assert skeleton == expected

    def test_tree_shape(self):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2, size=(500, 7))
        edges = chow_liu_tree(data, [2] * 7)
        assert len(edges) == 6
        children = [c for _, c in edges]
        assert len(set(children)) == 6  # every non-root has one parent

    def test_single_variable(self):
        assert chow_liu_tree(np.zeros((5, 1), dtype=int), [2]) == []

    def test_root_choice_respected(self):
        truth = chain_network(5, seed=4)
        data = forward_sample(truth, 3000, seed=4)
        edges = chow_liu_tree(data, [2] * 5, root=4)
        children = {c for _, c in edges}
        assert 4 not in children

    def test_fit_produces_usable_network(self):
        truth = chain_network(6, seed=5)
        data = forward_sample(truth, 5000, seed=5)
        learned = fit_chow_liu(data, [2] * 6)
        assert learned.has_all_cpts()
        engine = InferenceEngine.from_network(learned)
        engine.set_evidence({0: 1})
        engine.propagate()
        got = engine.marginal(5)
        want = truth.marginal_bruteforce(5, {0: 1})
        assert np.allclose(got, want, atol=0.08)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            chow_liu_tree(np.zeros((5, 3), dtype=int), [2, 2])
        with pytest.raises(ValueError):
            chow_liu_tree(np.zeros((5, 2), dtype=int), [2, 2], root=7)


class TestCpdBuilders:
    def test_uniform(self):
        cpd = uniform_cpd(3, 4)
        assert np.allclose(cpd.values, 0.25)

    def test_tabular_validates_rows(self):
        with pytest.raises(ValueError, match="sum to 1"):
            tabular_cpd(1, 2, [0], [2], np.array([[0.5, 0.6], [0.5, 0.5]]))

    def test_tabular_in_network(self):
        bn = BayesianNetwork([2, 2])
        bn.add_edge(0, 1)
        bn.set_cpt(0, uniform_cpd(0, 2))
        bn.set_cpt(
            1, tabular_cpd(1, 2, [0], [2], np.array([[0.9, 0.1], [0.2, 0.8]]))
        )
        assert np.allclose(
            bn.marginal_bruteforce(1), [0.55, 0.45]
        )

    def test_deterministic_xor(self):
        cpd = deterministic_cpd(2, 2, [0, 1], [2, 2], lambda a, b: a ^ b)
        assert cpd.values[0, 1, 1] == 1.0
        assert cpd.values[1, 1, 0] == 1.0
        assert np.allclose(cpd.values.sum(axis=-1), 1.0)

    def test_deterministic_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            deterministic_cpd(1, 2, [0], [2], lambda a: 5)

    def test_noisy_or_no_parents_active(self):
        cpd = noisy_or_cpd(2, [0, 1], [0.8, 0.6], leak=0.1)
        assert cpd.values[0, 0, 1] == pytest.approx(0.1)

    def test_noisy_or_all_parents_active(self):
        cpd = noisy_or_cpd(2, [0, 1], [0.8, 0.6], leak=0.0)
        assert cpd.values[1, 1, 1] == pytest.approx(1 - 0.2 * 0.4)

    def test_noisy_or_rows_normalized(self):
        cpd = noisy_or_cpd(3, [0, 1, 2], [0.5, 0.5, 0.5], leak=0.05)
        assert np.allclose(cpd.values.sum(axis=-1), 1.0)

    def test_noisy_or_validation(self):
        with pytest.raises(ValueError):
            noisy_or_cpd(1, [0], [0.5, 0.5])
        with pytest.raises(ValueError):
            noisy_or_cpd(1, [0], [1.5])
        with pytest.raises(ValueError):
            noisy_or_cpd(1, [0], [0.5], leak=1.0)

    def test_noisy_or_inference_end_to_end(self):
        # Two causes, noisy-OR effect; verify posterior "explaining away".
        bn = BayesianNetwork([2, 2, 2])
        bn.add_edge(0, 2)
        bn.add_edge(1, 2)
        bn.set_cpt(0, tabular_cpd(0, 2, [], [], np.array([0.9, 0.1])))
        bn.set_cpt(1, tabular_cpd(1, 2, [], [], np.array([0.7, 0.3])))
        bn.set_cpt(2, noisy_or_cpd(2, [0, 1], [0.9, 0.8], leak=0.01))
        engine = InferenceEngine.from_network(bn)
        engine.set_evidence({2: 1})
        engine.propagate()
        p0_effect = engine.marginal(0)[1]
        engine.set_evidence({2: 1, 1: 1})
        engine.propagate()
        p0_explained = engine.marginal(0)[1]
        assert p0_explained < p0_effect  # cause 1 explains the effect away
