"""Tests for moralization and triangulation."""

from itertools import combinations

import pytest

from repro.bn.generation import random_network
from repro.bn.moralization import moralize
from repro.bn.network import BayesianNetwork
from repro.bn.triangulation import (
    HEURISTICS,
    elimination_cliques,
    triangulate,
)


def _is_chordal(adj):
    """Check chordality via repeated simplicial-vertex elimination.

    A graph is chordal iff it admits a perfect elimination ordering: we can
    repeatedly remove a vertex whose neighbourhood is a clique.
    """
    work = {v: set(ns) for v, ns in adj.items()}
    remaining = set(work)
    while remaining:
        simplicial = None
        for v in remaining:
            ns = list(work[v])
            if all(b in work[a] for a, b in combinations(ns, 2)):
                simplicial = v
                break
        if simplicial is None:
            return False
        for u in work[simplicial]:
            work[u].discard(simplicial)
        del work[simplicial]
        remaining.discard(simplicial)
    return True


class TestMoralization:
    def test_marries_coparents(self):
        bn = BayesianNetwork([2, 2, 2])
        bn.add_edge(0, 2)
        bn.add_edge(1, 2)
        adj = moralize(bn)
        assert 1 in adj[0] and 0 in adj[1]

    def test_keeps_directed_edges_undirected(self):
        bn = BayesianNetwork([2, 2])
        bn.add_edge(0, 1)
        adj = moralize(bn)
        assert adj[0] == {1} and adj[1] == {0}

    def test_symmetric(self):
        bn = random_network(15, max_parents=4, edge_probability=0.7, seed=3)
        adj = moralize(bn)
        for v, ns in adj.items():
            for u in ns:
                assert v in adj[u]

    def test_no_self_loops(self):
        bn = random_network(15, seed=4)
        adj = moralize(bn)
        assert all(v not in ns for v, ns in adj.items())


class TestTriangulation:
    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_result_is_chordal(self, heuristic):
        bn = random_network(14, max_parents=4, edge_probability=0.8, seed=5)
        moral = moralize(bn)
        chordal, order = triangulate(moral, bn.cardinalities, heuristic)
        assert sorted(order) == list(range(14))
        assert _is_chordal(chordal)

    def test_contains_original_edges(self):
        bn = random_network(12, max_parents=3, edge_probability=0.8, seed=6)
        moral = moralize(bn)
        chordal, _ = triangulate(moral, bn.cardinalities)
        for v, ns in moral.items():
            assert ns <= chordal[v]

    def test_cycle_gets_chord(self):
        # A 4-cycle (as an undirected adjacency) must gain a chord.
        adj = {0: {1, 3}, 1: {0, 2}, 2: {1, 3}, 3: {0, 2}}
        chordal, _ = triangulate(adj, [2, 2, 2, 2])
        extra = sum(len(ns) for ns in chordal.values()) // 2 - 4
        assert extra == 1
        assert _is_chordal(chordal)

    def test_triangulating_chordal_graph_adds_nothing(self):
        # A tree is chordal already.
        adj = {0: {1, 2}, 1: {0}, 2: {0, 3}, 3: {2}}
        chordal, _ = triangulate(adj, [2] * 4)
        assert chordal == adj

    def test_input_not_mutated(self):
        adj = {0: {1, 3}, 1: {0, 2}, 2: {1, 3}, 3: {0, 2}}
        snapshot = {v: set(ns) for v, ns in adj.items()}
        triangulate(adj, [2] * 4)
        assert adj == snapshot

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError, match="heuristic"):
            triangulate({0: set()}, [2], "magic")


class TestEliminationCliques:
    def test_cliques_are_maximal(self):
        bn = random_network(12, max_parents=4, edge_probability=0.8, seed=7)
        moral = moralize(bn)
        chordal, order = triangulate(moral, bn.cardinalities)
        cliques = elimination_cliques(chordal, order)
        sets = [set(c) for c in cliques]
        for a, b in combinations(sets, 2):
            assert not a <= b and not b <= a

    def test_cliques_are_complete_subgraphs(self):
        bn = random_network(12, max_parents=4, edge_probability=0.8, seed=8)
        moral = moralize(bn)
        chordal, order = triangulate(moral, bn.cardinalities)
        for clique in elimination_cliques(chordal, order):
            for a, b in combinations(clique, 2):
                assert b in chordal[a]

    def test_every_edge_covered(self):
        bn = random_network(12, max_parents=3, edge_probability=0.8, seed=9)
        moral = moralize(bn)
        chordal, order = triangulate(moral, bn.cardinalities)
        cliques = [set(c) for c in elimination_cliques(chordal, order)]
        for v, ns in chordal.items():
            for u in ns:
                assert any({u, v} <= c for c in cliques)

    def test_every_variable_covered(self):
        adj = {0: set(), 1: set()}  # two isolated vertices
        chordal, order = triangulate(adj, [2, 2])
        cliques = elimination_cliques(chordal, order)
        assert {v for c in cliques for v in c} == {0, 1}

    def test_single_vertex(self):
        cliques = elimination_cliques({0: set()}, [0])
        assert cliques == [(0,)]
