"""Unit tests for the shared-memory process executor.

The differential harness (``test_differential_executors.py``) already
cross-checks ProcessSharedMemoryExecutor against every other executor on
randomized trees; here we pin down its own contract: constructor
validation, stats accounting (inline vs. pooled work, shared-memory
footprint, worker pids), partitioned execution, evidence handling, and
the spawn start method.  Pool creation is expensive, so the number of
``run()`` calls is kept deliberately small.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.jt.generation import synthetic_tree
from repro.sched.process import ProcessSharedMemoryExecutor
from repro.sched.serial import SerialExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState


def _workload(num_cliques=8, width=3, states=2, seed=11, evidence=None):
    tree = synthetic_tree(
        num_cliques, clique_width=width, states=states, avg_children=2,
        seed=seed,
    )
    tree.initialize_potentials(np.random.default_rng(seed))
    graph = build_task_graph(tree)
    reference = PropagationState(tree, evidence)
    SerialExecutor().run(graph, reference)
    return tree, graph, reference


def _assert_matches(tree, reference, state):
    for i in range(tree.num_cliques):
        np.testing.assert_allclose(
            state.potentials[i].values,
            reference.potentials[i].values,
            rtol=1e-9,
            atol=1e-12,
        )
    assert np.isclose(state.likelihood(), reference.likelihood(), rtol=1e-9)


class TestValidation:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="num_workers"):
            ProcessSharedMemoryExecutor(num_workers=0)

    def test_rejects_bad_partition_threshold(self):
        with pytest.raises(ValueError, match="partition_threshold"):
            ProcessSharedMemoryExecutor(partition_threshold=0)

    def test_rejects_bad_max_chunks(self):
        with pytest.raises(ValueError, match="max_chunks"):
            ProcessSharedMemoryExecutor(max_chunks=1)

    def test_rejects_negative_inline_threshold(self):
        with pytest.raises(ValueError, match="inline_threshold"):
            ProcessSharedMemoryExecutor(inline_threshold=-1)

    def test_rejects_unknown_start_method(self):
        with pytest.raises(ValueError, match="start_method"):
            ProcessSharedMemoryExecutor(start_method="teleport")

    def test_defaults_to_fork_where_available(self):
        ex = ProcessSharedMemoryExecutor()
        if "fork" in mp.get_all_start_methods():
            assert ex.start_method == "fork"
        else:
            assert ex.start_method in mp.get_all_start_methods()


class TestExecution:
    def test_matches_serial_with_stats_accounting(self):
        tree, graph, reference = _workload()
        executor = ProcessSharedMemoryExecutor(
            num_workers=2, inline_threshold=4
        )
        state = PropagationState(tree)
        stats = executor.run(graph, state)
        _assert_matches(tree, reference, state)
        assert stats.tasks_executed == graph.num_tasks
        # Inline + pooled tasks account for every task exactly once.
        assert sum(stats.tasks_per_thread) == graph.num_tasks
        assert stats.tasks_per_thread[-1] == stats.tasks_inline
        assert stats.shared_bytes > 0
        # The trailing slot is the master; pool slots that did work have
        # distinct worker pids.
        assert stats.worker_pids[-1] == os.getpid()
        pool_pids = [pid for pid in stats.worker_pids[:-1] if pid]
        assert len(pool_pids) == len(set(pool_pids))
        assert os.getpid() not in pool_pids

    def test_partitioned_run_matches_serial_with_evidence(self):
        evidence = {0: 1, 3: 0}
        tree, graph, reference = _workload(
            num_cliques=10, width=4, seed=23, evidence=evidence
        )
        executor = ProcessSharedMemoryExecutor(
            num_workers=2, partition_threshold=8, inline_threshold=0
        )
        state = PropagationState(tree, evidence)
        stats = executor.run(graph, state)
        _assert_matches(tree, reference, state)
        assert stats.tasks_executed == graph.num_tasks
        # inline_threshold=0 forces everything through the pool.
        assert stats.tasks_inline == 0
        assert stats.tasks_per_thread[-1] == 0

    def test_single_clique_tree_is_a_no_op(self):
        tree = synthetic_tree(1, clique_width=3, states=2, seed=5)
        tree.initialize_potentials(np.random.default_rng(5))
        graph = build_task_graph(tree)
        state = PropagationState(tree)
        stats = ProcessSharedMemoryExecutor(num_workers=2).run(graph, state)
        assert graph.num_tasks == 0
        assert stats.tasks_executed == 0

    def test_executor_is_reusable(self):
        tree, graph, reference = _workload(num_cliques=6, seed=31)
        executor = ProcessSharedMemoryExecutor(num_workers=2)
        for _ in range(2):
            state = PropagationState(tree)
            stats = executor.run(graph, state)
            _assert_matches(tree, reference, state)
            assert stats.tasks_executed == graph.num_tasks

    @pytest.mark.skipif(
        "spawn" not in mp.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_start_method_matches_serial(self):
        tree, graph, reference = _workload(num_cliques=6, seed=47)
        executor = ProcessSharedMemoryExecutor(
            num_workers=2, start_method="spawn", inline_threshold=4
        )
        state = PropagationState(tree)
        stats = executor.run(graph, state)
        _assert_matches(tree, reference, state)
        assert stats.tasks_executed == graph.num_tasks

    def test_per_worker_summary_reports_all_slots(self):
        tree, graph, _ = _workload(num_cliques=4, seed=61)
        executor = ProcessSharedMemoryExecutor(
            num_workers=2, inline_threshold=4
        )
        stats = executor.run(graph, PropagationState(tree))
        summary = stats.per_worker_summary()
        assert len(summary) == 3  # 2 pool slots + trailing master slot
        assert sum(row["tasks"] for row in summary) == graph.num_tasks
