"""Serialization round-trips for networks and junction trees."""

import json

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.inference.engine import InferenceEngine
from repro.io.json_io import (
    load_network,
    load_tree,
    network_from_dict,
    network_to_dict,
    save_network,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)
from repro.jt.build import junction_tree_from_network
from repro.jt.generation import synthetic_tree


class TestNetworkRoundTrip:
    def test_structure_preserved(self):
        bn = random_network(12, max_parents=3, edge_probability=0.7, seed=1)
        twin = network_from_dict(network_to_dict(bn))
        assert twin.cardinalities == bn.cardinalities
        assert sorted(twin.edges()) == sorted(bn.edges())

    def test_cpts_preserved(self):
        bn = random_network(10, max_parents=2, edge_probability=0.8, seed=2)
        twin = network_from_dict(network_to_dict(bn))
        for v in range(10):
            original = bn.cpt(v)
            restored = twin.cpt(v).aligned_to(original.variables)
            assert np.allclose(original.values, restored.values)

    def test_inference_identical_after_roundtrip(self):
        bn = random_network(9, max_parents=3, edge_probability=0.8, seed=3)
        twin = network_from_dict(network_to_dict(bn))
        a = InferenceEngine.from_network(bn)
        b = InferenceEngine.from_network(twin)
        a.set_evidence({2: 1})
        b.set_evidence({2: 1})
        a.propagate()
        b.propagate()
        assert np.allclose(a.marginal(5), b.marginal(5))

    def test_file_roundtrip(self, tmp_path):
        bn = random_network(8, max_parents=2, edge_probability=0.8, seed=4)
        path = tmp_path / "net.json"
        save_network(bn, path)
        twin = load_network(path)
        assert sorted(twin.edges()) == sorted(bn.edges())

    def test_document_is_valid_json(self, tmp_path):
        bn = random_network(5, seed=5)
        path = tmp_path / "net.json"
        save_network(bn, path)
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-network"
        assert doc["version"] == 1

    def test_missing_cpts_rejected_on_save(self):
        from repro.bn.network import BayesianNetwork

        bn = BayesianNetwork([2, 2])
        with pytest.raises(ValueError, match="CPTs"):
            network_to_dict(bn)

    def test_wrong_format_rejected_on_load(self):
        with pytest.raises(ValueError, match="expected"):
            network_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            network_from_dict({"format": "repro-network", "version": 99})


class TestTreeRoundTrip:
    def test_structure_preserved(self):
        tree = synthetic_tree(20, clique_width=4, seed=6)
        twin = tree_from_dict(tree_to_dict(tree, include_potentials=False))
        assert twin.parent == tree.parent
        assert [c.variables for c in twin.cliques] == [
            c.variables for c in tree.cliques
        ]

    def test_potentials_preserved(self):
        tree = synthetic_tree(12, clique_width=3, seed=7)
        tree.initialize_potentials(np.random.default_rng(7))
        twin = tree_from_dict(tree_to_dict(tree))
        for i in range(tree.num_cliques):
            assert np.allclose(
                twin.potential(i).values, tree.potential(i).values
            )

    def test_bn_built_tree_roundtrip_preserves_marginals(self):
        bn = random_network(9, max_parents=3, edge_probability=0.8, seed=8)
        jt = junction_tree_from_network(bn)
        twin = tree_from_dict(tree_to_dict(jt))
        a = InferenceEngine(jt)
        b = InferenceEngine(twin)
        a.propagate()
        b.propagate()
        assert np.allclose(a.marginal(4), b.marginal(4))

    def test_file_roundtrip(self, tmp_path):
        tree = synthetic_tree(10, clique_width=3, seed=9)
        tree.initialize_potentials(np.random.default_rng(9))
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        twin = load_tree(path)
        assert twin.num_cliques == 10
        assert len(twin.potentials) == 10

    def test_skipping_potentials(self, tmp_path):
        tree = synthetic_tree(10, clique_width=3, seed=10)
        tree.initialize_potentials(np.random.default_rng(10))
        path = tmp_path / "tree.json"
        save_tree(tree, path, include_potentials=False)
        twin = load_tree(path)
        assert twin.potentials == {}

    def test_partial_potentials_rejected(self):
        tree = synthetic_tree(5, clique_width=3, seed=11)
        tree.initialize_potentials()
        del tree.potentials[0]
        with pytest.raises(ValueError, match="partially"):
            tree_to_dict(tree)
