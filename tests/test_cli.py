"""CLI smoke tests (argument parsing and handlers, no subprocesses)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.variables == 20
        assert args.threads == 4

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_stream_demo_defaults(self):
        args = build_parser().parse_args(["stream-demo"])
        assert args.command == "stream-demo"
        assert args.window == 6
        assert args.max_pending == 8


class TestHandlers:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PACT 2009" in out

    def test_demo(self, capsys):
        assert main(["demo", "--variables", "10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "P(evidence)" in out

    def test_query_marginal(self, capsys):
        code = main(
            ["query", "--variables", "8", "--evidence", "0=1", "--target", "3"]
        )
        assert code == 0
        assert "P(X3" in capsys.readouterr().out

    def test_query_mpe(self, capsys):
        code = main(["query", "--variables", "7", "--mpe"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MPE:" in out

    def test_stream_demo(self, capsys):
        code = main(
            ["stream-demo", "--streams", "2", "--ticks", "6", "--window", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streams" in out
        assert "window rolls" in out
        assert "P(state)" in out

    def test_experiment_rerooting_cost(self, capsys):
        assert main(["experiment", "rerooting-cost"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 1" in out

    def test_model_prior(self, capsys):
        assert main(["model", "sprinkler"]) == 0
        out = capsys.readouterr().out
        assert "P(rain" in out

    def test_model_with_evidence_and_explanation(self, capsys):
        code = main(
            [
                "model", "asia",
                "--evidence", "smoke=1", "xray=1",
                "--explain", "lung",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "evidence ranked by impact on P(lung)" in out

    def test_model_unknown_variable(self, capsys):
        assert main(["model", "asia", "--evidence", "ghost=1"]) == 1
        assert "unknown variable" in capsys.readouterr().out

    def test_model_bad_explain_target(self, capsys):
        code = main(
            [
                "model", "asia",
                "--evidence", "smoke=1", "xray=1",
                "--explain", "smoke",
            ]
        )
        assert code == 1


class TestTraceCommands:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = tmp_path / "demo_trace.json"
        assert main(
            ["demo", "--variables", "10", "--seed", "1", "--trace", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "spans" in out
        assert str(path) in out
        assert path.exists()
        return path

    def test_demo_trace_writes_file(self, trace_file):
        assert trace_file.stat().st_size > 0

    def test_trace_validate(self, trace_file, capsys):
        assert main(["trace", "validate", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "valid Chrome trace" in out

    def test_trace_report(self, trace_file, capsys):
        assert main(["trace", "report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "wall time" in out
        assert "per primitive" in out
        # The embedded TaskMeta lets the report replay the DAG through
        # the simulator without the original network.
        assert "measured" in out and "predicted" in out

    def test_trace_gantt(self, trace_file, capsys):
        assert main(["trace", "gantt", str(trace_file), "--width", "50"]) == 0
        out = capsys.readouterr().out
        assert "#" in out

    def test_trace_validate_missing_file(self, tmp_path, capsys):
        assert main(["trace", "validate", str(tmp_path / "no.json")]) == 1

    def test_trace_validate_rejects_malformed(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "X", "ts": 0}]}')
        assert main(["trace", "validate", str(bad)]) == 1
        assert "invalid" in capsys.readouterr().out.lower()
