"""CLI smoke tests (argument parsing and handlers, no subprocesses)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.variables == 20
        assert args.threads == 4

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestHandlers:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PACT 2009" in out

    def test_demo(self, capsys):
        assert main(["demo", "--variables", "10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "P(evidence)" in out

    def test_query_marginal(self, capsys):
        code = main(
            ["query", "--variables", "8", "--evidence", "0=1", "--target", "3"]
        )
        assert code == 0
        assert "P(X3" in capsys.readouterr().out

    def test_query_mpe(self, capsys):
        code = main(["query", "--variables", "7", "--mpe"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MPE:" in out

    def test_experiment_rerooting_cost(self, capsys):
        assert main(["experiment", "rerooting-cost"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 1" in out

    def test_model_prior(self, capsys):
        assert main(["model", "sprinkler"]) == 0
        out = capsys.readouterr().out
        assert "P(rain" in out

    def test_model_with_evidence_and_explanation(self, capsys):
        code = main(
            [
                "model", "asia",
                "--evidence", "smoke=1", "xray=1",
                "--explain", "lung",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "evidence ranked by impact on P(lung)" in out

    def test_model_unknown_variable(self, capsys):
        assert main(["model", "asia", "--evidence", "ghost=1"]) == 1
        assert "unknown variable" in capsys.readouterr().out

    def test_model_bad_explain_target(self, capsys):
        code = main(
            [
                "model", "asia",
                "--evidence", "smoke=1", "xray=1",
                "--explain", "smoke",
            ]
        )
        assert code == 1
