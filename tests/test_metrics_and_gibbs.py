"""Task-graph metrics and the Gibbs-sampling baseline."""

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.bn.sampling import gibbs_sampling
from repro.jt.generation import synthetic_tree
from repro.tasks.dag import build_task_graph
from repro.tasks.metrics import (
    heavy_task_fraction,
    level_widths,
    level_work,
    summarize,
    work_by_kind,
    work_by_phase,
)


@pytest.fixture(scope="module")
def graph():
    tree = synthetic_tree(30, clique_width=6, avg_children=3, seed=55)
    return build_task_graph(tree)


class TestMetrics:
    def test_level_widths_sum_to_task_count(self, graph):
        assert sum(level_widths(graph)) == graph.num_tasks

    def test_level_work_sums_to_total(self, graph):
        assert np.isclose(sum(level_work(graph)), graph.total_work())

    def test_phase_split_covers_everything(self, graph):
        split = work_by_phase(graph)
        assert set(split) == {"collect", "distribute"}
        assert np.isclose(sum(split.values()), graph.total_work())

    def test_kind_split_covers_everything(self, graph):
        split = work_by_kind(graph)
        assert set(split) == {
            "marginalize",
            "divide",
            "extend",
            "multiply",
        }
        assert np.isclose(sum(split.values()), graph.total_work())

    def test_heavy_fraction_monotone_in_threshold(self, graph):
        small = heavy_task_fraction(graph, 1)
        large = heavy_task_fraction(graph, 1 << 20)
        assert 0.0 <= large <= small <= 1.0

    def test_summary_consistency(self, graph):
        summary = summarize(graph)
        assert summary.num_tasks == graph.num_tasks
        assert summary.parallelism >= 1.0
        assert summary.max_level_width <= graph.num_tasks
        assert summary.num_levels == len(level_widths(graph))

    def test_empty_graph_summary(self):
        from repro.tasks.task import TaskGraph

        summary = summarize(TaskGraph())
        assert summary.num_tasks == 0
        assert summary.parallelism == 1.0
        assert heavy_task_fraction(TaskGraph(), 1) == 0.0


class TestGibbs:
    def test_approaches_exact_posterior(self):
        bn = random_network(
            6, max_parents=2, edge_probability=0.8, seed=21
        )
        evidence = {0: 1}
        estimate = gibbs_sampling(
            bn, target=4, evidence=evidence,
            num_samples=3000, burn_in=200, seed=21,
        )
        exact = bn.marginal_bruteforce(4, evidence)
        assert np.allclose(estimate, exact, atol=0.07)

    def test_prior_estimation_without_evidence(self):
        bn = random_network(
            5, max_parents=2, edge_probability=0.8, seed=22
        )
        estimate = gibbs_sampling(
            bn, target=3, num_samples=3000, burn_in=200, seed=22
        )
        assert np.allclose(estimate, bn.marginal_bruteforce(3), atol=0.07)

    def test_target_in_evidence_is_point_mass(self):
        bn = random_network(4, seed=23)
        result = gibbs_sampling(bn, 1, {1: 0}, num_samples=5, seed=0)
        assert np.allclose(result, [1.0, 0.0])

    def test_invalid_args(self):
        bn = random_network(4, seed=24)
        with pytest.raises(ValueError):
            gibbs_sampling(bn, 0, num_samples=0)
        with pytest.raises(ValueError):
            gibbs_sampling(bn, 0, burn_in=-1)
