"""Tests for repro.integrity: torn-write detection and checkpoint/restore.

The contract under test: a worker write torn between checksum stamp and
master read is *detected and refused* (never served — the entries are
finite, so only the crc catches it), a checkpoint round-trips
bit-identically, a checkpoint from a foreign tree or with tampered bytes
is refused with a typed error, and the serving layer recycles a poisoned
session from its baseline checkpoint so the next query is exact again.
"""

from __future__ import annotations

import io
import json
import time
import zipfile

import numpy as np
import pytest

from repro.inference.engine import InferenceEngine
from repro.integrity import (
    CheckpointCorrupt,
    CheckpointError,
    CheckpointMismatch,
    TornWriteError,
    crc32_array,
    crc32_regions,
    read_manifest,
    tree_signature,
)
from repro.jt.generation import synthetic_tree
from repro.sched.faults import FaultPlan
from repro.sched.process import ProcessSharedMemoryExecutor
from repro.sched.serial import SerialExecutor
from repro.serve import EngineSessionPool, InferenceService
from repro.tasks.state import PropagationState


def _tree(num_cliques=14, width=5, seed=11):
    tree = synthetic_tree(
        num_cliques, clique_width=width, states=2, avg_children=3, seed=seed
    )
    tree.initialize_potentials(np.random.default_rng(seed))
    return tree


def _variables(tree, count=8):
    variables = set()
    for clique in tree.cliques:
        variables.update(clique.variables)
    return sorted(variables)[:count]


# --------------------------------------------------------------------- #
# Checksum helpers
# --------------------------------------------------------------------- #


class TestChecksumHelpers:
    def test_crc32_array_slicing_matches_whole(self):
        values = np.arange(20, dtype=np.float64)
        assert crc32_array(values) == crc32_array(values, 0, 20)
        assert crc32_array(values, 5, 9) == crc32_array(values[5:9])

    def test_crc32_regions_is_order_sensitive(self):
        a = np.arange(4, dtype=np.float64)
        b = np.arange(4, 8, dtype=np.float64)
        assert crc32_regions([a, b]) != crc32_regions([b, a])
        assert crc32_regions([a]) == crc32_array(a)

    def test_crc32_detects_single_entry_change(self):
        values = np.random.default_rng(0).random(64)
        before = crc32_array(values)
        values[17] += 1e-12
        assert crc32_array(values) != before


# --------------------------------------------------------------------- #
# Torn-write detection in the process executor
# --------------------------------------------------------------------- #


class TestTornWriteDetection:
    def test_whole_task_torn_write_raises_with_attribution(self):
        tree = _tree(seed=3)
        engine = InferenceEngine(tree)
        executor = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            fault_plan=FaultPlan(torn_write={1: 4}),
        )
        with pytest.raises(TornWriteError) as excinfo:
            engine.propagate(executor=executor, incremental=False)
        err = excinfo.value
        assert err.tid == 1
        assert err.kind is not None
        assert err.chunk is None
        assert "stamped checksum" in str(err)

    def test_chunked_torn_write_attributes_the_chunk(self):
        tree = _tree(seed=3)
        engine = InferenceEngine(tree)
        executor = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            partition_threshold=4,
            max_chunks=4,
            fault_plan=FaultPlan(torn_write={2: 2}),
        )
        with pytest.raises(TornWriteError) as excinfo:
            engine.propagate(executor=executor, incremental=False)
        assert excinfo.value.chunk is not None
        lo, hi = excinfo.value.chunk
        assert 0 <= lo < hi

    def test_verification_off_serves_the_wrong_finite_answer(self):
        # The hole the checksum closes: with verification disabled the
        # torn write goes through silently — every entry is finite, so
        # the numerical health scan cannot catch it either.
        tree = _tree(seed=3)
        reference = InferenceEngine(tree)
        ref_state = reference.propagate()
        engine = InferenceEngine(tree)
        executor = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            verify_writes=False,
            fault_plan=FaultPlan(torn_write={1: 4}),
        )
        state = engine.propagate(executor=executor, incremental=False)
        variables = _variables(tree)
        worst = max(
            abs(state.marginal(v) - ref_state.marginal(v)).max()
            for v in variables
        )
        assert worst > 1e-9  # wrong — and nothing raised
        assert np.isfinite(worst)

    def test_clean_run_with_verification_is_exact(self):
        tree = _tree(seed=5)
        reference = InferenceEngine(tree)
        ref_state = reference.propagate()
        engine = InferenceEngine(tree)
        executor = ProcessSharedMemoryExecutor(
            num_workers=2, inline_threshold=0, verify_writes=True
        )
        state = engine.propagate(executor=executor, incremental=False)
        for v in _variables(tree):
            np.testing.assert_allclose(
                state.marginal(v), ref_state.marginal(v),
                rtol=1e-9, atol=1e-12,
            )


# --------------------------------------------------------------------- #
# Checkpoint round-trip
# --------------------------------------------------------------------- #


class TestCheckpointRoundTrip:
    def test_state_round_trip_is_bit_identical(self, tmp_path):
        tree = _tree(seed=7)
        engine = InferenceEngine(tree)
        engine.observe(0, 1).observe_soft(3, [0.7, 0.3])
        engine.propagate()
        path = tmp_path / "state.npz"
        manifest = engine.checkpoint(path)
        assert manifest["tables"] > 0
        assert manifest["tree_signature"] == tree_signature(engine.jt)

        restored = InferenceEngine.from_checkpoint(tree, path)
        for v in _variables(tree):
            a, b = engine.marginal(v), restored.marginal(v)
            assert (a == b).all()  # bit-identical, not merely close

    def test_restore_adopts_the_checkpoint_evidence(self, tmp_path):
        tree = _tree(seed=7)
        engine = InferenceEngine(tree)
        engine.observe(0, 1)
        engine.propagate()
        path = tmp_path / "state.npz"
        engine.checkpoint(path)

        other = InferenceEngine(tree)
        other.observe(1, 0)  # overwritten by restore
        other.propagate()
        other.restore(path)
        assert other.evidence.as_dict() == {0: 1}

    def test_checkpoint_syncs_pending_evidence_first(self, tmp_path):
        tree = _tree(seed=7)
        engine = InferenceEngine(tree)
        engine.propagate()
        engine.observe(0, 1)  # not yet propagated
        path = tmp_path / "state.npz"
        manifest = engine.checkpoint(path)
        assert manifest["evidence"] == {"0": 1}
        restored = InferenceEngine.from_checkpoint(tree, path)
        oracle = InferenceEngine(tree)
        oracle.observe(0, 1)
        oracle.propagate()
        for v in _variables(tree):
            np.testing.assert_allclose(
                restored.marginal(v), oracle.marginal(v),
                rtol=1e-9, atol=1e-12,
            )

    def test_read_manifest_without_loading(self, tmp_path):
        tree = _tree(seed=7)
        engine = InferenceEngine(tree)
        engine.propagate()
        path = tmp_path / "state.npz"
        engine.checkpoint(path)
        manifest = read_manifest(path)
        assert manifest["format"] == 1
        assert "state_checksum" in manifest

    def test_file_like_round_trip(self):
        tree = _tree(seed=9)
        engine = InferenceEngine(tree)
        engine.propagate()
        buf = io.BytesIO()
        engine.checkpoint(buf)
        buf.seek(0)
        state = PropagationState.load(engine.jt, buf)
        for v in _variables(tree):
            assert (state.marginal(v) == engine.marginal(v)).all()

    def test_checkpoint_before_propagation_raises(self):
        tree = _tree(seed=9)
        engine = InferenceEngine(tree)
        with pytest.raises(RuntimeError, match="no propagation"):
            engine.checkpoint(io.BytesIO())


class TestCheckpointCrashAtomicity:
    def test_kill_mid_save_leaves_previous_checkpoint_intact(
        self, tmp_path, monkeypatch
    ):
        """A process killed mid-``save_state`` must never tear the
        checkpoint at the target path: the archive is written to a temp
        file and renamed over the target only once fully durable."""
        tree = _tree(seed=7)
        engine = InferenceEngine(tree)
        engine.observe(0, 1)
        engine.propagate()
        path = tmp_path / "state.npz"
        engine.checkpoint(path)
        original = path.read_bytes()

        engine.observe(2, 0)
        engine.propagate()
        real_savez = np.savez

        def dies_mid_write(target, **entries):
            if hasattr(target, "write"):  # the temp-file handle
                target.write(b"PK\x03\x04 torn half-written archive")
                raise KeyboardInterrupt("simulated kill mid-save")
            return real_savez(target, **entries)

        monkeypatch.setattr(np, "savez", dies_mid_write)
        with pytest.raises(KeyboardInterrupt):
            engine.checkpoint(path)
        monkeypatch.setattr(np, "savez", real_savez)

        # The target is byte-identical to the pre-crash checkpoint, no
        # temp debris survives, and the archive still restores.
        assert path.read_bytes() == original
        assert [p.name for p in tmp_path.iterdir()] == ["state.npz"]
        restored = InferenceEngine.from_checkpoint(tree, path)
        assert restored.evidence.as_dict() == {0: 1}

    def test_save_without_npz_suffix_lands_atomically(self, tmp_path):
        """np.savez appends ``.npz`` to bare paths; the atomic-replace
        path must land on that same final name."""
        tree = _tree(seed=7)
        engine = InferenceEngine(tree)
        engine.propagate()
        bare = tmp_path / "state"
        engine.checkpoint(bare)
        assert (tmp_path / "state.npz").is_file()
        assert [p.name for p in tmp_path.iterdir()] == ["state.npz"]


# --------------------------------------------------------------------- #
# Typed refusals
# --------------------------------------------------------------------- #


class TestCheckpointRefusals:
    def _checkpoint_bytes(self, tree):
        engine = InferenceEngine(tree)
        engine.propagate()
        buf = io.BytesIO()
        engine.checkpoint(buf)
        return buf.getvalue()

    def test_foreign_tree_is_refused(self):
        payload = self._checkpoint_bytes(_tree(seed=7))
        other = _tree(seed=8)
        with pytest.raises(CheckpointMismatch, match="different junction tree"):
            InferenceEngine.from_checkpoint(other, io.BytesIO(payload))

    def test_tampered_table_bytes_are_refused(self, tmp_path):
        tree = _tree(seed=7)
        payload = self._checkpoint_bytes(tree)
        # Rewrite the archive with one entry of the packed table vector
        # perturbed but the original manifest kept: the zip stays
        # structurally valid, so only the whole-state checksum can catch
        # the tamper.
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
        arrays["__tables__"][3] += 1e-9
        tampered = tmp_path / "tampered.npz"
        np.savez(tampered, **arrays)
        with pytest.raises(CheckpointCorrupt, match="checksum"):
            InferenceEngine.from_checkpoint(tree, tampered)

    def test_structurally_broken_archive_is_refused(self):
        tree = _tree(seed=7)
        raw = bytearray(self._checkpoint_bytes(tree))
        raw[len(raw) // 2] ^= 0xFF
        with pytest.raises(CheckpointCorrupt):
            InferenceEngine.from_checkpoint(tree, io.BytesIO(bytes(raw)))

    def test_tampered_evidence_record_is_refused(self, tmp_path):
        tree = _tree(seed=7)
        engine = InferenceEngine(tree)
        engine.observe(0, 1)
        engine.propagate()
        buf = io.BytesIO()
        engine.checkpoint(buf)
        with np.load(io.BytesIO(buf.getvalue()), allow_pickle=False) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
        manifest = json.loads(str(arrays["__manifest__"][()]))
        manifest["evidence"] = {"0": 0}  # flip the finding, keep signature
        arrays["__manifest__"] = np.array(json.dumps(manifest))
        tampered = tmp_path / "evidence.npz"
        np.savez(tampered, **arrays)
        with pytest.raises(CheckpointMismatch, match="evidence"):
            InferenceEngine.from_checkpoint(tree, tampered)

    def test_batched_state_refuses_to_checkpoint(self):
        tree = _tree(seed=7)
        engine = InferenceEngine(tree)
        state = engine.propagate_batch([{0: 1}, {0: 0}])
        with pytest.raises(CheckpointError, match="batched"):
            state.save(io.BytesIO())

    def test_format_version_mismatch_is_refused(self, tmp_path):
        tree = _tree(seed=7)
        payload = self._checkpoint_bytes(tree)
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
        manifest = json.loads(str(arrays["__manifest__"][()]))
        manifest["format"] = 999
        arrays["__manifest__"] = np.array(json.dumps(manifest))
        future = tmp_path / "future.npz"
        np.savez(future, **arrays)
        with pytest.raises(CheckpointMismatch, match="format"):
            InferenceEngine.from_checkpoint(tree, future)

    def test_checkpoint_is_a_plain_zip(self):
        # Operational property: the artifact is inspectable with stock
        # tooling (the CI recovery job lists it with zipfile).
        payload = self._checkpoint_bytes(_tree(seed=7))
        names = zipfile.ZipFile(io.BytesIO(payload)).namelist()
        assert "__manifest__.npy" in names
        assert "__tables__.npy" in names


# --------------------------------------------------------------------- #
# Self-healing session pool
# --------------------------------------------------------------------- #


class TestSessionPoolRecycling:
    def test_poisoned_session_recycles_from_checkpoint(self):
        tree = _tree(seed=13)
        pool = EngineSessionPool.from_junction_tree(tree, sessions=1)
        assert pool._baseline is not None
        with pool.session() as engine:
            # Simulate a poisoned propagation state left by a bad tier.
            engine.observe(0, 1)
            engine.propagate()
            for table in engine._state.potentials.values():
                table.values[...] = np.nan
            pool.note_failure(engine, "unhealthy result", poisoned=True)
        assert pool.recycles == 1
        assert pool.recycles_from_checkpoint == 1
        with pool.session() as engine:
            # Restored to the warm no-evidence baseline: exact again.
            assert engine.evidence.as_dict() == {}
            oracle = InferenceEngine(tree)
            oracle.propagate()
            for v in _variables(tree):
                np.testing.assert_allclose(
                    engine.marginal(v), oracle.marginal(v),
                    rtol=1e-9, atol=1e-12,
                )

    def test_consecutive_failures_hit_the_threshold(self):
        tree = _tree(seed=13)
        pool = EngineSessionPool.from_junction_tree(tree, sessions=1)
        pool.recycle_threshold = 2
        with pool.session() as engine:
            pool.note_failure(engine, "tier failed")
        assert pool.recycles == 0  # one strike: below threshold
        with pool.session() as engine:
            pool.note_failure(engine, "tier failed again")
        assert pool.recycles == 1

    def test_success_resets_the_strike_count(self):
        tree = _tree(seed=13)
        pool = EngineSessionPool.from_junction_tree(tree, sessions=1)
        pool.recycle_threshold = 2
        with pool.session() as engine:
            pool.note_failure(engine, "one-off")
            pool.note_success(engine)
            pool.note_failure(engine, "another one-off")
        assert pool.recycles == 0

    def test_recycle_without_baseline_recalibrates(self):
        tree = _tree(seed=13)
        pool = EngineSessionPool.from_junction_tree(tree, sessions=1, warm=False)
        assert pool._baseline is None
        with pool.session() as engine:
            engine.propagate()
            pool.note_failure(engine, "poisoned", poisoned=True)
        assert pool.recycles == 1
        assert pool.recycles_from_checkpoint == 0
        with pool.session() as engine:
            assert engine._state is not None  # recalibrated, usable


# --------------------------------------------------------------------- #
# Acceptance: torn write -> detect -> recycle -> exact again
# --------------------------------------------------------------------- #


class _HangExecutor(SerialExecutor):
    """Ignores the cooperative deadline and sleeps: a wedged tier."""

    def __init__(self, seconds: float):
        super().__init__()
        self.seconds = seconds

    def run(self, graph, state, **kw):
        time.sleep(self.seconds)
        kw.pop("deadline", None)
        return super().run(graph, state, **kw)


class TestServiceRecovery:
    def test_torn_write_is_never_served_and_session_recycles(self):
        tree = _tree(num_cliques=16, seed=11)
        pool = EngineSessionPool.from_junction_tree(tree, sessions=1)
        primary = ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            fault_plan=FaultPlan(torn_write={1: 4}),
        )
        service = InferenceService(pool, primary=primary, workers=1)
        variables = _variables(tree, count=4)

        first = service.query(delta={0: 1}, vars=variables)
        assert first.status == "ok"
        # The torn primary never served: the fallback tier answered.
        assert "Process" not in first.executor

        # Next query runs on the recycled session and is exact.
        second = service.query(delta={0: 0}, vars=variables)
        assert second.status == "ok"
        report = service.drain()
        assert report.session_recycles >= 1
        assert report.session_recycles_from_checkpoint >= 1

        oracle = InferenceEngine(tree)
        oracle.set_evidence({0: 1})
        oracle.propagate()
        for v in variables:
            np.testing.assert_allclose(
                first.marginals[v], oracle.marginal(v),
                rtol=1e-9, atol=1e-12,
            )
        oracle.set_evidence({0: 0})
        oracle.propagate(incremental=False)
        for v in variables:
            np.testing.assert_allclose(
                second.marginals[v], oracle.marginal(v),
                rtol=1e-9, atol=1e-12,
            )

    def test_watchdog_force_resolves_a_stuck_flight(self):
        tree = _tree(seed=17)
        pool = EngineSessionPool.from_junction_tree(tree, sessions=1)
        service = InferenceService(
            pool,
            fallback=_HangExecutor(2.5),
            workers=1,
            watchdog_grace=0.2,
            watchdog_interval=0.02,
        )
        started = time.monotonic()
        response = service.query(
            delta={0: 1}, vars=[1], deadline=0.4, timeout=10.0
        )
        waited = time.monotonic() - started
        assert response.status == "deadline"
        assert "watchdog" in (response.error or "")
        # Resolved by the watchdog near deadline+grace, not after the
        # full 2.5 s hang.
        assert waited < 2.0
        report = service.drain()
        assert report.watchdog_interventions >= 1
        assert report.session_recycles >= 1

    def test_watchdog_leaves_healthy_flights_alone(self):
        tree = _tree(seed=17)
        pool = EngineSessionPool.from_junction_tree(tree, sessions=1)
        service = InferenceService(
            pool, workers=1, watchdog_grace=0.5, watchdog_interval=0.02
        )
        response = service.query(delta={0: 1}, vars=[1], deadline=10.0)
        assert response.status == "ok"
        report = service.drain()
        assert report.watchdog_interventions == 0
        assert report.session_recycles == 0
