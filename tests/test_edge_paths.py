"""Edge-path coverage: disconnected components, scalar separators,
experiment runner wrappers, and facade kwargs."""

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.inference.engine import InferenceEngine
from repro.inference.propagation import propagate_reference
from repro.jt.build import junction_tree_from_network
from repro.sched.collaborative import CollaborativeExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState


class TestDisconnectedNetworks:
    """The spanning tree joins components with empty (scalar) separators."""

    @pytest.fixture
    def network(self):
        # Two independent chains: 0->1->2 and 3->4.
        from repro.bn.network import BayesianNetwork

        bn = BayesianNetwork([2] * 5)
        bn.add_edge(0, 1)
        bn.add_edge(1, 2)
        bn.add_edge(3, 4)
        bn.randomize_cpts(np.random.default_rng(7))
        return bn

    def test_marginals_match_bruteforce(self, network):
        engine = InferenceEngine.from_network(network)
        engine.set_evidence({0: 1, 3: 0})
        engine.propagate()
        for v in (1, 2, 4):
            assert np.allclose(
                engine.marginal(v),
                network.marginal_bruteforce(v, {0: 1, 3: 0}),
            )

    def test_parallel_executor_crosses_scalar_separators(self, network):
        jt = junction_tree_from_network(network)
        graph = build_task_graph(jt)
        serial = PropagationState(jt, {0: 1})
        from repro.sched.serial import SerialExecutor

        SerialExecutor().run(graph, serial)
        parallel = PropagationState(jt, {0: 1})
        CollaborativeExecutor(num_threads=3, partition_threshold=2).run(
            graph, parallel
        )
        for i in range(jt.num_cliques):
            assert np.allclose(
                serial.potentials[i].values, parallel.potentials[i].values
            )

    def test_evidence_probability_factorizes(self, network):
        jt = junction_tree_from_network(network)
        both = propagate_reference(jt, {0: 1, 3: 0})
        only_a = propagate_reference(jt, {0: 1})
        only_b = propagate_reference(jt, {3: 0})
        # Independent components: P(e_a, e_b) = P(e_a) P(e_b).
        assert np.isclose(
            both[jt.root].total(),
            only_a[jt.root].total() * only_b[jt.root].total(),
        )


class TestExperimentWrappers:
    def test_manycore_runner_small(self):
        from repro.experiments.manycore import run_manycore

        results = run_manycore(cores=(1, 2))
        assert set(results) == {
            "collaborative (shared locks)",
            "work-stealing (Section 8)",
        }
        for curve in results.values():
            assert curve[0] == pytest.approx(1.0)

    def test_robustness_runner_small(self):
        from repro.experiments.robustness import run_robustness

        result = run_robustness(seeds=(0, 1), cores=4, which_tree=3)
        assert len(result.speedups) == 2
        assert result.mean > 1.0
        assert result.spread >= 0.0


class TestFacadeKwargs:
    def test_machine_forwards_record_trace(self):
        from repro.jt.generation import synthetic_tree
        from repro.simcore.machine import Machine
        from repro.simcore.policies import CollaborativePolicy
        from repro.simcore.profiles import XEON

        tree = synthetic_tree(10, clique_width=3, seed=1)
        graph = build_task_graph(tree)
        result = Machine(XEON, 2).run(
            CollaborativePolicy(), graph, record_trace=True
        )
        assert result.trace is not None

    def test_online_weights_steer_allocation(self):
        from repro.sched.online import OnlineScheduler

        # Functional check only: heavy/light weights must not break
        # execution or ordering.
        with OnlineScheduler(num_threads=2) as pool:
            heavy = pool.submit(lambda: "h", weight=100.0)
            light = [
                pool.submit(lambda i=i: i, weight=0.1) for i in range(20)
            ]
            assert heavy.result(timeout=5) == "h"
            assert [h.result(timeout=5) for h in light] == list(range(20))
