"""Unit tests for the JunctionTree data structure."""

import numpy as np
import pytest

from repro.jt.junction_tree import Clique, JunctionTree
from repro.potential.table import PotentialTable


def _chain_tree(n=4, width=2):
    """Cliques 0..n-1 in a chain, each sharing one variable with its parent."""
    cliques = [Clique(i, (i, i + 1), (2, 2)) for i in range(n)]
    parent = [None] + list(range(n - 1))
    return JunctionTree(cliques, parent)


def _star_tree():
    """Root 0 with children 1, 2, 3 all sharing variable 0."""
    cliques = [
        Clique(0, (0, 1), (2, 2)),
        Clique(1, (0, 2), (2, 2)),
        Clique(2, (0, 3), (2, 2)),
        Clique(3, (0, 4), (2, 2)),
    ]
    return JunctionTree(cliques, [None, 0, 0, 0])


class TestClique:
    def test_width_and_size(self):
        c = Clique(0, (3, 5, 7), (2, 3, 4))
        assert c.width == 3
        assert c.table_size == 24

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Clique(0, (1, 1), (2, 2))

    def test_card_of(self):
        c = Clique(0, (3, 5), (2, 4))
        assert c.card_of(5) == 4


class TestTreeConstruction:
    def test_root_detection(self):
        jt = _chain_tree()
        assert jt.root == 0
        assert jt.parent[0] is None

    def test_children_lists(self):
        jt = _star_tree()
        assert jt.children[0] == [1, 2, 3]
        assert jt.children[1] == []

    def test_multiple_roots_rejected(self):
        cliques = [Clique(0, (0,), (2,)), Clique(1, (0,), (2,))]
        with pytest.raises(ValueError, match="exactly one root"):
            JunctionTree(cliques, [None, None])

    def test_parent_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            JunctionTree([Clique(0, (0,), (2,))], [None, 0])

    def test_cycle_rejected(self):
        cliques = [
            Clique(0, (0,), (2,)),
            Clique(1, (0,), (2,)),
            Clique(2, (0,), (2,)),
        ]
        with pytest.raises(ValueError):
            JunctionTree(cliques, [None, 2, 1])

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(ValueError):
            JunctionTree([Clique(0, (0,), (2,))], [5])


class TestTraversals:
    def test_preorder_parents_first(self):
        jt = _chain_tree(5)
        order = jt.preorder()
        assert order == [0, 1, 2, 3, 4]

    def test_postorder_children_first(self):
        jt = _star_tree()
        order = jt.postorder()
        assert order[-1] == 0
        assert set(order[:-1]) == {1, 2, 3}

    def test_traversals_cover_all(self):
        jt = _star_tree()
        assert sorted(jt.preorder()) == [0, 1, 2, 3]
        assert sorted(jt.postorder()) == [0, 1, 2, 3]

    def test_leaves(self):
        assert _chain_tree(4).leaves() == [3]
        assert _star_tree().leaves() == [1, 2, 3]

    def test_depth_of(self):
        jt = _chain_tree(4)
        assert [jt.depth_of(i) for i in range(4)] == [0, 1, 2, 3]

    def test_path_to_root(self):
        jt = _chain_tree(4)
        assert jt.path_to_root(3) == [3, 2, 1, 0]

    def test_degree_counts_parent_and_children(self):
        jt = _star_tree()
        assert jt.degree(0) == 3
        assert jt.degree(1) == 1

    def test_undirected_adjacency_symmetric(self):
        jt = _star_tree()
        adj = jt.undirected_adjacency()
        for v, ns in enumerate(adj):
            for u in ns:
                assert v in adj[u]


class TestSeparators:
    def test_separator_contents(self):
        jt = _chain_tree()
        assert jt.separator(1, 0) == (1,)
        assert jt.separator(0, 1) == (1,)

    def test_separator_cards(self):
        jt = _star_tree()
        assert jt.separator_cards(1, 0) == (2,)

    def test_non_adjacent_rejected(self):
        jt = _star_tree()
        with pytest.raises(ValueError, match="not adjacent"):
            jt.separator(1, 2)

    def test_separator_order_follows_first_clique(self):
        cliques = [Clique(0, (2, 1), (2, 2)), Clique(1, (1, 2, 3), (2, 2, 2))]
        jt = JunctionTree(cliques, [None, 0])
        assert jt.separator(0, 1) == (2, 1)
        assert jt.separator(1, 0) == (1, 2)


class TestPotentials:
    def test_initialize_ones(self):
        jt = _chain_tree()
        jt.initialize_potentials()
        for i in range(jt.num_cliques):
            assert np.all(jt.potential(i).values == 1.0)

    def test_initialize_random_positive(self):
        jt = _chain_tree()
        jt.initialize_potentials(np.random.default_rng(0))
        for i in range(jt.num_cliques):
            assert np.all(jt.potential(i).values > 0)

    def test_missing_potential_raises(self):
        jt = _chain_tree()
        with pytest.raises(KeyError):
            jt.potential(0)

    def test_set_potential_aligns_scope(self):
        jt = _chain_tree()
        table = PotentialTable((1, 0), (2, 2), np.arange(4))
        jt.set_potential(0, table)
        stored = jt.potential(0)
        assert stored.variables == (0, 1)
        assert np.array_equal(stored.values, np.arange(4).reshape(2, 2).T)

    def test_set_potential_wrong_scope_rejected(self):
        jt = _chain_tree()
        with pytest.raises(ValueError, match="does not match"):
            jt.set_potential(0, PotentialTable((9,), (2,)))

    def test_copy_is_deep(self):
        jt = _chain_tree()
        jt.initialize_potentials(np.random.default_rng(0))
        twin = jt.copy()
        twin.potential(0).values[:] = 0
        assert not np.all(jt.potential(0).values == 0)

    def test_clique_containing_prefers_smallest(self):
        cliques = [
            Clique(0, (0, 1, 2), (2, 2, 2)),
            Clique(1, (0, 1), (2, 2)),
        ]
        jt = JunctionTree(cliques, [None, 0])
        assert jt.clique_containing([0, 1]) == 1
        assert jt.clique_containing([2]) == 0

    def test_clique_containing_missing_raises(self):
        jt = _chain_tree()
        with pytest.raises(KeyError):
            jt.clique_containing([99])
