"""Cost-model calibration helpers: forward/inverse consistency."""

import pytest

from repro.simcore.calibration import (
    baseline_speedup,
    expected_speedup,
    memory_factor_for_speedup,
    stream_cap_for_baseline,
)
from repro.simcore.profiles import OPTERON, XEON


class TestMemoryFactor:
    def test_roundtrip(self):
        f = memory_factor_for_speedup(7.4, 8)
        assert expected_speedup(f, 8) == pytest.approx(7.4)

    def test_perfect_scaling_needs_zero_factor(self):
        assert memory_factor_for_speedup(8.0, 8) == pytest.approx(0.0)

    def test_profiles_match_paper_targets(self):
        # The shipped profiles sit close to the closed-form values for the
        # paper's 7.4 / 7.1 end points (scheduling overhead takes the rest).
        assert XEON.memory_factor == pytest.approx(
            memory_factor_for_speedup(7.45, 8), abs=0.003
        )
        assert OPTERON.memory_factor == pytest.approx(
            memory_factor_for_speedup(7.25, 8), abs=0.005
        )

    def test_invalid_targets_rejected(self):
        with pytest.raises(ValueError):
            memory_factor_for_speedup(9.0, 8)
        with pytest.raises(ValueError):
            memory_factor_for_speedup(0.5, 8)
        with pytest.raises(ValueError):
            memory_factor_for_speedup(2.0, 1)


class TestStreamCap:
    def test_roundtrip(self):
        cap = stream_cap_for_baseline(3.8, 1.3e-3, 70e-6)
        assert baseline_speedup(cap, 1.3e-3, 70e-6) == pytest.approx(3.8)

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError, match="unreachable"):
            stream_cap_for_baseline(10.0, 1e-4, 1e-4)

    def test_more_overhead_needs_bigger_cap(self):
        low = stream_cap_for_baseline(3.0, 1e-3, 10e-6)
        high = stream_cap_for_baseline(3.0, 1e-3, 100e-6)
        assert high > low

    def test_validation(self):
        with pytest.raises(ValueError):
            stream_cap_for_baseline(-1.0, 1e-3, 0.0)
        with pytest.raises(ValueError):
            stream_cap_for_baseline(2.0, 1e-3, -1.0)
        with pytest.raises(ValueError):
            baseline_speedup(0.0, 1e-3, 0.0)
