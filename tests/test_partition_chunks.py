"""Chunked primitives must reproduce whole-table primitives exactly."""

import numpy as np
import pytest

from repro.potential.partition import (
    chunk_ranges,
    divide_chunk,
    extend_chunk,
    marginalize_chunk,
    multiply_chunk,
)
from repro.potential.primitives import divide, extend, marginalize, multiply
from repro.potential.table import PotentialTable


def _random(variables, cards, seed=0):
    return PotentialTable.random(variables, cards, np.random.default_rng(seed))


class TestChunkRanges:
    def test_covers_everything_once(self):
        ranges = chunk_ranges(100, 7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_respects_max_chunk(self):
        for lo, hi in chunk_ranges(1000, 64):
            assert hi - lo <= 64

    def test_balanced_split(self):
        sizes = [hi - lo for lo, hi in chunk_ranges(10, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_single_chunk_when_small(self):
        assert chunk_ranges(5, 10) == [(0, 5)]

    def test_zero_total(self):
        assert chunk_ranges(0, 4) == []

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            chunk_ranges(-1, 4)
        with pytest.raises(ValueError):
            chunk_ranges(10, 0)


class TestMarginalizeChunk:
    @pytest.mark.parametrize("max_chunk", [1, 3, 7, 100])
    def test_chunks_sum_to_whole(self, max_chunk):
        t = _random([0, 1, 2], [2, 3, 4], seed=1)
        onto = (2, 0)
        whole = marginalize(t, onto)
        total = np.zeros(whole.size)
        for lo, hi in chunk_ranges(t.size, max_chunk):
            total += marginalize_chunk(t, onto, lo, hi).values.reshape(-1)
        assert np.allclose(total, whole.values.reshape(-1))

    def test_empty_target_scope(self):
        t = _random([0, 1], [2, 2], seed=2)
        parts = [
            float(marginalize_chunk(t, (), lo, hi).values)
            for lo, hi in chunk_ranges(t.size, 2)
        ]
        assert np.isclose(sum(parts), t.total())

    def test_out_of_range_rejected(self):
        t = _random([0], [2])
        with pytest.raises(ValueError, match="out of range"):
            marginalize_chunk(t, (0,), 0, 5)


class TestExtendChunk:
    @pytest.mark.parametrize("max_chunk", [1, 5, 64])
    def test_concatenated_chunks_equal_whole(self, max_chunk):
        t = _random([1, 3], [2, 3], seed=3)
        target_vars, target_cards = (3, 2, 1), (3, 4, 2)
        whole = extend(t, target_vars, target_cards)
        size = whole.size
        parts = [
            extend_chunk(t, target_vars, target_cards, lo, hi)
            for lo, hi in chunk_ranges(size, max_chunk)
        ]
        assert np.allclose(np.concatenate(parts), whole.values.reshape(-1))

    def test_scalar_source(self):
        t = PotentialTable([], [], np.array(4.0))
        part = extend_chunk(t, (0,), (3,), 0, 3)
        assert np.array_equal(part, np.array([4.0, 4.0, 4.0]))

    def test_out_of_range_rejected(self):
        t = _random([0], [2])
        with pytest.raises(ValueError, match="out of range"):
            extend_chunk(t, (0, 1), (2, 2), 2, 9)


class TestElementwiseChunks:
    def test_multiply_chunks_equal_whole(self):
        a = _random([0, 1], [3, 4], seed=4)
        b = _random([0, 1], [3, 4], seed=5)
        whole = multiply(a, b).values.reshape(-1)
        af, bf = a.values.reshape(-1), b.values.reshape(-1)
        parts = [
            multiply_chunk(af, bf, lo, hi) for lo, hi in chunk_ranges(12, 5)
        ]
        assert np.allclose(np.concatenate(parts), whole)

    def test_divide_chunks_equal_whole(self):
        a = _random([0, 1], [3, 4], seed=6)
        b = _random([0, 1], [3, 4], seed=7)
        whole = divide(a, b).values.reshape(-1)
        af, bf = a.values.reshape(-1), b.values.reshape(-1)
        parts = [
            divide_chunk(af, bf, lo, hi) for lo, hi in chunk_ranges(12, 4)
        ]
        assert np.allclose(np.concatenate(parts), whole)

    def test_divide_chunk_zero_convention(self):
        num = np.array([0.0, 1.0])
        den = np.array([0.0, 2.0])
        out = divide_chunk(num, den, 0, 2)
        assert np.array_equal(out, np.array([0.0, 0.5]))
