"""Shared fixtures: small networks and junction trees used across tests.

Also pins the Hypothesis profile to ``derandomize`` so tier-1 is fully
reproducible: every property test replays the same example sequence on
every run instead of drawing fresh random examples.  (All other randomness
in the suite goes through explicitly seeded ``np.random.default_rng``.)
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

from repro.bn.generation import random_network
from repro.jt.build import junction_tree_from_network
from repro.jt.generation import synthetic_tree, template_tree

settings.register_profile("deterministic", derandomize=True, deadline=None)
settings.load_profile("deterministic")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_network():
    """A 10-variable binary network, dense enough to have real cliques."""
    return random_network(
        10, cardinality=2, max_parents=3, edge_probability=0.8, seed=42
    )


@pytest.fixture
def small_tree(small_network):
    """Junction tree of ``small_network`` with CPT-derived potentials."""
    return junction_tree_from_network(small_network)


@pytest.fixture
def random_tree():
    """A moderately sized synthetic junction tree with random potentials."""
    tree = synthetic_tree(
        num_cliques=24, clique_width=4, states=2, avg_children=2, seed=7
    )
    tree.initialize_potentials(np.random.default_rng(7))
    return tree


@pytest.fixture
def small_template():
    """Small Fig. 4 template tree (uniform widths, no potentials)."""
    return template_tree(2, num_cliques=31, clique_width=4, states=2)
