"""Differential equivalence harness across ALL six executors.

Generates a battery of randomized junction trees (varying clique count,
width, state count, branching, evidence) and asserts that every executor —
Serial, Collaborative, LevelParallel, DataParallel, WorkStealing, and the
shared-memory Process executor — produces beliefs within 1e-9 of each
other, and (for trees built from Bayesian networks) of variable
elimination, an independent inference algorithm sharing no propagation
code.
"""

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.inference.engine import InferenceEngine
from repro.inference.variable_elimination import ve_query
from repro.jt.generation import synthetic_tree
from repro.sched import (
    CollaborativeExecutor,
    DataParallelExecutor,
    LevelParallelExecutor,
    ProcessSharedMemoryExecutor,
    SerialExecutor,
    WorkStealingExecutor,
)
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState

RTOL = 1e-9
ATOL = 1e-12

# The five parallel executors, each with partitioning exercised.  Worker
# counts stay small so the whole battery is cheap; correctness must not
# depend on them.
PARALLEL_EXECUTORS = [
    ("collaborative", lambda: CollaborativeExecutor(num_threads=3, partition_threshold=16)),
    ("level-parallel", lambda: LevelParallelExecutor(num_threads=3)),
    ("data-parallel", lambda: DataParallelExecutor(num_threads=3)),
    ("work-stealing", lambda: WorkStealingExecutor(num_threads=3, partition_threshold=16)),
    ("process", lambda: ProcessSharedMemoryExecutor(num_workers=2, partition_threshold=16, inline_threshold=4)),
]

# (seed, num_cliques, width, states, avg_children, num_evidence) — 14
# synthetic-tree scenarios spanning chains, bushy trees, ternary variables,
# and varying evidence set sizes.
TREE_SCENARIOS = [
    (0, 2, 2, 2, 1, 0),
    (1, 4, 3, 2, 1, 1),
    (2, 6, 2, 3, 2, 0),
    (3, 8, 4, 2, 2, 2),
    (4, 10, 3, 2, 3, 1),
    (5, 12, 4, 2, 1, 0),
    (6, 14, 2, 3, 2, 3),
    (7, 16, 4, 2, 3, 2),
    (8, 18, 3, 3, 2, 1),
    (9, 20, 4, 2, 4, 0),
    (10, 22, 3, 2, 2, 4),
    (11, 24, 4, 2, 3, 2),
    (12, 9, 5, 2, 2, 1),
    (13, 7, 3, 4, 2, 1),
]

# (seed, num_variables, cardinality, num_evidence) — randomized Bayesian
# networks for the variable-elimination cross-check.
NETWORK_SCENARIOS = [
    (20, 6, 2, 0),
    (21, 8, 2, 1),
    (22, 9, 2, 2),
    (23, 7, 3, 1),
    (24, 10, 2, 2),
    (25, 8, 3, 0),
]


def _tree_workload(seed, num_cliques, width, states, children, num_evidence):
    tree = synthetic_tree(
        num_cliques,
        clique_width=width,
        states=states,
        avg_children=children,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    tree.initialize_potentials(rng)
    variables = sorted(
        {v for c in tree.cliques for v in c.variables}
    )
    evidence = {}
    for var in rng.choice(variables, size=min(num_evidence, len(variables)), replace=False):
        var = int(var)
        card = next(
            c.card_of(var) for c in tree.cliques if var in c.variables
        )
        evidence[var] = int(rng.integers(card))
    return tree, build_task_graph(tree), evidence


def _assert_states_close(tree, ref, other, label):
    for i in range(tree.num_cliques):
        assert np.allclose(
            ref.potentials[i].values,
            other.potentials[i].values,
            rtol=RTOL,
            atol=ATOL,
        ), f"{label}: clique {i} diverges"
    assert np.isclose(
        ref.likelihood(), other.likelihood(), rtol=RTOL, atol=ATOL
    ), f"{label}: likelihood diverges"


@pytest.mark.parametrize(
    "seed,num_cliques,width,states,children,num_evidence", TREE_SCENARIOS
)
def test_all_executors_agree_on_randomized_trees(
    seed, num_cliques, width, states, children, num_evidence
):
    tree, graph, evidence = _tree_workload(
        seed, num_cliques, width, states, children, num_evidence
    )
    reference = PropagationState(tree, evidence)
    SerialExecutor().run(graph, reference)
    for label, make in PARALLEL_EXECUTORS:
        state = PropagationState(tree, evidence)
        stats = make().run(graph, state)
        assert stats.tasks_executed == graph.num_tasks, label
        _assert_states_close(tree, reference, state, f"{label} seed={seed}")


@pytest.mark.parametrize("seed,num_vars,card,num_evidence", NETWORK_SCENARIOS)
def test_executors_match_variable_elimination(seed, num_vars, card, num_evidence):
    """Propagation beliefs equal VE's, per executor, on BN-derived trees."""
    bn = random_network(
        num_vars,
        cardinality=card,
        max_parents=3,
        edge_probability=0.7,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    evidence_vars = rng.choice(num_vars, size=num_evidence, replace=False)
    evidence = {
        int(v): int(rng.integers(bn.cardinalities[int(v)])) for v in evidence_vars
    }
    targets = [v for v in range(num_vars) if v not in evidence]
    expected = {
        t: ve_query(bn, [t], evidence).values for t in targets
    }
    executors = [("serial", SerialExecutor)] + [
        (label, make) for label, make in PARALLEL_EXECUTORS
    ]
    engine = InferenceEngine.from_network(bn)
    engine.set_evidence(evidence)
    for label, make in executors:
        engine.set_evidence(evidence)  # invalidate previous propagation
        engine.propagate(make())
        for t in targets:
            assert np.allclose(
                engine.marginal(t), expected[t], rtol=RTOL, atol=ATOL
            ), f"{label} seed={seed}: P(X{t}) diverges from VE"
