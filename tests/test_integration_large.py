"""Large-scale integration: the whole stack on substantial inputs."""

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.inference.engine import InferenceEngine
from repro.inference.shafershenoy import ShaferShenoyEngine
from repro.inference.variable_elimination import ve_marginal
from repro.jt.build import junction_tree_from_network
from repro.jt.generation import paper_tree, template_tree
from repro.jt.rerooting import reroot_optimally, select_root_bruteforce
from repro.jt.stats import summarize_tree
from repro.jt.validate import check_running_intersection, check_tree_structure
from repro.sched.collaborative import CollaborativeExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.metrics import summarize


class TestLargeNetwork:
    """A 120-variable sparse network through the full pipeline."""

    @pytest.fixture(scope="class")
    def network(self):
        return random_network(
            120, cardinality=2, max_parents=2,
            edge_probability=0.6, seed=2026,
        )

    @pytest.fixture(scope="class")
    def engine(self, network):
        engine = InferenceEngine.from_network(network)
        engine.set_evidence({5: 1, 60: 0, 110: 1})
        engine.propagate()
        return engine

    def test_tree_is_valid(self, engine):
        check_tree_structure(engine.jt)
        check_running_intersection(engine.jt)

    def test_three_engines_agree_on_spot_checks(self, network, engine):
        evidence = {5: 1, 60: 0, 110: 1}
        ss = ShaferShenoyEngine(junction_tree_from_network(network))
        for var, state in evidence.items():
            ss.observe(var, state)
        for target in (0, 33, 77, 119):
            a = engine.marginal(target)
            b = ss.marginal(target)
            c = ve_marginal(network, target, evidence)
            assert np.allclose(a, b, atol=1e-9)
            assert np.allclose(b, c, atol=1e-9)

    def test_parallel_executor_on_large_tree(self, network):
        engine = InferenceEngine.from_network(network)
        engine.set_evidence({5: 1})
        serial_state = engine.propagate()
        reference = {
            i: serial_state.potentials[i].values.copy()
            for i in range(engine.jt.num_cliques)
        }
        parallel_state = engine.propagate(
            CollaborativeExecutor(num_threads=8, partition_threshold=512)
        )
        for i in range(engine.jt.num_cliques):
            assert np.allclose(
                parallel_state.potentials[i].values, reference[i]
            )

    def test_all_marginals_are_distributions(self, engine):
        for var, marg in engine.marginals_all().items():
            assert np.isclose(marg.sum(), 1.0), f"variable {var}"


class TestPaperScaleStructures:
    """Structure-only checks at the paper's actual workload sizes."""

    def test_jt1_pipeline_metrics(self):
        tree, root, weight = reroot_optimally(paper_tree(1))
        graph = build_task_graph(tree)
        summary = summarize(graph)
        assert summary.num_tasks == 8 * 511
        assert summary.parallelism > 20
        stats = summarize_tree(tree)
        assert stats.num_cliques == 512
        assert 15 <= stats.treewidth <= 25

    def test_rerooting_at_scale_matches_bruteforce(self):
        # 512-clique tree: Algorithm 1 must equal the O(N^2) search.
        tree = template_tree(4, num_cliques=512, clique_width=8)
        from repro.jt.rerooting import select_root

        _, fast = select_root(tree)
        _, brute = select_root_bruteforce(tree)
        assert np.isclose(fast, brute)

    def test_task_graph_valid_at_scale(self):
        tree, _, _ = reroot_optimally(paper_tree(2))
        graph = build_task_graph(tree)
        graph.validate()
        assert graph.num_tasks == 8 * 255
