"""Tests for Task, TaskGraph and task-dependency-graph construction."""

import pytest

from repro.jt.generation import synthetic_tree, template_tree
from repro.potential.primitives import PrimitiveKind
from repro.tasks.clique_graph import build_clique_updating_graph
from repro.tasks.dag import build_task_graph
from repro.tasks.task import COLLECT, DISTRIBUTE, Task, TaskGraph


class TestTaskGraphBasics:
    def test_add_task_assigns_dense_ids(self):
        g = TaskGraph()
        a = g.add_task(PrimitiveKind.MARGINALIZE, COLLECT, (0, 1), 0, 4, 2)
        b = g.add_task(
            PrimitiveKind.DIVIDE, COLLECT, (0, 1), 0, 2, 2, deps=[a]
        )
        assert (a, b) == (0, 1)
        assert g.succs[a] == [b]
        assert g.deps[b] == [a]

    def test_forward_dependency_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError, match="not-yet-created"):
            g.add_task(PrimitiveKind.EXTEND, COLLECT, (0, 1), 0, 2, 4, deps=[5])

    def test_bad_phase_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError, match="phase"):
            g.add_task(PrimitiveKind.EXTEND, "sideways", (0, 1), 0, 2, 4)

    def test_roots_and_indegrees(self):
        g = TaskGraph()
        a = g.add_task(PrimitiveKind.MARGINALIZE, COLLECT, (0, 1), 0, 4, 2)
        g.add_task(PrimitiveKind.DIVIDE, COLLECT, (0, 1), 0, 2, 2, deps=[a])
        assert g.roots() == [a]
        assert g.indegrees() == [0, 1]

    def test_topological_order_valid(self):
        g = TaskGraph()
        a = g.add_task(PrimitiveKind.MARGINALIZE, COLLECT, (0, 1), 0, 4, 2)
        b = g.add_task(PrimitiveKind.DIVIDE, COLLECT, (0, 1), 0, 2, 2, deps=[a])
        c = g.add_task(PrimitiveKind.EXTEND, COLLECT, (0, 1), 0, 2, 4, deps=[b])
        order = g.topological_order()
        assert order.index(a) < order.index(b) < order.index(c)

    def test_levels_group_by_longest_path(self):
        g = TaskGraph()
        a = g.add_task(PrimitiveKind.MARGINALIZE, COLLECT, (0, 1), 0, 4, 2)
        b = g.add_task(PrimitiveKind.MARGINALIZE, COLLECT, (0, 2), 0, 4, 2)
        c = g.add_task(
            PrimitiveKind.MULTIPLY, COLLECT, (0, 1), 0, 4, 4, deps=[a, b]
        )
        levels = g.levels()
        assert sorted(levels[0]) == [a, b]
        assert levels[1] == [c]

    def test_total_and_critical_work(self):
        g = TaskGraph()
        a = g.add_task(PrimitiveKind.MULTIPLY, COLLECT, (0, 1), 0, 8, 8)
        b = g.add_task(PrimitiveKind.MULTIPLY, COLLECT, (0, 2), 0, 8, 8)
        c = g.add_task(
            PrimitiveKind.MULTIPLY, COLLECT, (0, 1), 0, 8, 8, deps=[a, b]
        )
        assert g.total_work() == 24.0
        assert g.critical_path_work() == 16.0

    def test_validate_passes_on_consistent_graph(self):
        g = TaskGraph()
        a = g.add_task(PrimitiveKind.MARGINALIZE, COLLECT, (0, 1), 0, 4, 2)
        g.add_task(PrimitiveKind.DIVIDE, COLLECT, (0, 1), 0, 2, 2, deps=[a])
        g.validate()

    def test_validate_detects_corruption(self):
        g = TaskGraph()
        a = g.add_task(PrimitiveKind.MARGINALIZE, COLLECT, (0, 1), 0, 4, 2)
        b = g.add_task(PrimitiveKind.DIVIDE, COLLECT, (0, 1), 0, 2, 2, deps=[a])
        g.deps[b] = []  # corrupt
        with pytest.raises(ValueError):
            g.validate()


class TestTaskProperties:
    def test_weight_follows_primitive_flops(self):
        t = Task(0, PrimitiveKind.MARGINALIZE, COLLECT, (0, 1), 0, 100, 10)
        assert t.weight == 100.0
        t2 = Task(1, PrimitiveKind.EXTEND, COLLECT, (0, 1), 0, 10, 100)
        assert t2.weight == 100.0

    def test_partition_size_marginalize_uses_input(self):
        t = Task(0, PrimitiveKind.MARGINALIZE, COLLECT, (0, 1), 0, 100, 10)
        assert t.partition_size == 100

    def test_partition_size_others_use_output(self):
        t = Task(0, PrimitiveKind.EXTEND, DISTRIBUTE, (0, 1), 1, 10, 100)
        assert t.partition_size == 100


class TestBuildTaskGraph:
    def test_task_count_is_eight_per_edge(self):
        tree = synthetic_tree(20, clique_width=3, seed=0)
        g = build_task_graph(tree)
        assert g.num_tasks == 8 * (tree.num_cliques - 1)

    def test_single_clique_tree_has_no_tasks(self):
        tree = synthetic_tree(1, clique_width=3, seed=0)
        assert build_task_graph(tree).num_tasks == 0

    def test_graph_is_acyclic_and_consistent(self):
        tree = synthetic_tree(30, clique_width=4, seed=1)
        g = build_task_graph(tree)
        g.validate()

    def test_pipeline_order_within_edge(self):
        tree = synthetic_tree(10, clique_width=3, seed=2)
        g = build_task_graph(tree)
        by_edge = {}
        for t in g.tasks:
            by_edge.setdefault((t.phase, t.edge), []).append(t)
        order = {
            PrimitiveKind.MARGINALIZE: 0,
            PrimitiveKind.DIVIDE: 1,
            PrimitiveKind.EXTEND: 2,
            PrimitiveKind.MULTIPLY: 3,
        }
        topo = {tid: i for i, tid in enumerate(g.topological_order())}
        for tasks in by_edge.values():
            assert len(tasks) == 4
            ranked = sorted(tasks, key=lambda t: order[t.kind])
            for a, b in zip(ranked, ranked[1:]):
                assert topo[a.tid] < topo[b.tid]

    def test_collect_strictly_precedes_distribute_per_edge(self):
        tree = synthetic_tree(12, clique_width=3, seed=3)
        g = build_task_graph(tree)
        topo = {tid: i for i, tid in enumerate(g.topological_order())}
        collect_max = {}
        distribute_min = {}
        for t in g.tasks:
            if t.phase == COLLECT:
                collect_max[t.edge] = max(
                    collect_max.get(t.edge, -1), topo[t.tid]
                )
            else:
                distribute_min[t.edge] = min(
                    distribute_min.get(t.edge, 1 << 30), topo[t.tid]
                )
        for edge in collect_max:
            assert collect_max[edge] < distribute_min[edge]

    def test_multiplies_into_same_clique_are_serialized(self):
        # A star: root 0 with several children; the root's collect
        # MULTIPLY tasks must form a chain.
        tree = synthetic_tree(8, clique_width=3, avg_children=7, seed=4)
        g = build_task_graph(tree)
        mults = [
            t
            for t in g.tasks
            if t.kind is PrimitiveKind.MULTIPLY
            and t.phase == COLLECT
            and t.clique == tree.root
        ]
        if len(mults) > 1:
            # Each multiply after the first depends on the previous one.
            tids = [t.tid for t in mults]
            for prev, cur in zip(tids, tids[1:]):
                assert prev in g.deps[cur]

    def test_roots_are_leaf_marginalizations(self):
        tree = template_tree(2, num_cliques=31, clique_width=4)
        g = build_task_graph(tree)
        for tid in g.roots():
            t = g.tasks[tid]
            assert t.kind is PrimitiveKind.MARGINALIZE
            assert t.phase == COLLECT


class TestCliqueUpdatingGraph:
    def test_collect_depends_on_children(self):
        tree = synthetic_tree(15, clique_width=3, seed=5)
        cug = build_clique_updating_graph(tree)
        for c in range(tree.num_cliques):
            deps = cug.deps[(COLLECT, c)]
            assert set(deps) == {(COLLECT, ch) for ch in tree.children[c]}

    def test_distribute_depends_on_parent(self):
        tree = synthetic_tree(15, clique_width=3, seed=6)
        cug = build_clique_updating_graph(tree)
        for c in range(tree.num_cliques):
            if c == tree.root:
                assert cug.deps[(DISTRIBUTE, c)] == [(COLLECT, c)]
            else:
                assert cug.deps[(DISTRIBUTE, c)] == [
                    (DISTRIBUTE, tree.parent[c])
                ]

    def test_topological_order_complete(self):
        tree = synthetic_tree(15, clique_width=3, seed=7)
        cug = build_clique_updating_graph(tree)
        order = cug.topological_order()
        assert len(order) == 2 * tree.num_cliques
        pos = {node: i for i, node in enumerate(order)}
        for node, deps in cug.deps.items():
            for d in deps:
                assert pos[d] < pos[node]
