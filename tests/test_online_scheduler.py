"""Online (dynamic-submission) collaborative scheduler."""

import threading
import time

import pytest

from repro.sched.online import OnlineScheduler, TaskHandle


class TestBasics:
    def test_simple_pipeline(self):
        with OnlineScheduler(num_threads=3) as pool:
            a = pool.submit(lambda: 2)
            b = pool.submit(lambda: 3)
            c = pool.submit(lambda x, y: x + y, deps=[a, b])
            assert c.result(timeout=5) == 5

    def test_dependency_results_in_order(self):
        with OnlineScheduler(num_threads=2) as pool:
            a = pool.submit(lambda: "a")
            b = pool.submit(lambda: "b")
            cat = pool.submit(lambda x, y: x + y, deps=[b, a])
            assert cat.result(timeout=5) == "ba"

    def test_submit_after_dependency_completed(self):
        with OnlineScheduler(num_threads=2) as pool:
            a = pool.submit(lambda: 10)
            assert a.result(timeout=5) == 10
            b = pool.submit(lambda x: x + 1, deps=[a])
            assert b.result(timeout=5) == 11

    def test_dynamic_fan_out(self):
        with OnlineScheduler(num_threads=4) as pool:
            seed = pool.submit(lambda: 5)
            children = [
                pool.submit(lambda x, k=k: x * k, deps=[seed])
                for k in range(10)
            ]
            total = pool.submit(
                lambda *vals: sum(vals), deps=children
            )
            assert total.result(timeout=5) == 5 * sum(range(10))

    def test_many_independent_tasks(self):
        with OnlineScheduler(num_threads=4) as pool:
            handles = [pool.submit(lambda i=i: i * i) for i in range(100)]
            assert [h.result(timeout=5) for h in handles] == [
                i * i for i in range(100)
            ]

    def test_parallel_overlap(self):
        barrier = threading.Barrier(2, timeout=5)
        with OnlineScheduler(num_threads=2) as pool:
            a = pool.submit(barrier.wait)
            b = pool.submit(barrier.wait)
            a.result(timeout=5)
            b.result(timeout=5)


class TestFailures:
    def test_exception_reraised_at_result(self):
        def boom():
            raise ValueError("kaboom")

        with OnlineScheduler(num_threads=2) as pool:
            handle = pool.submit(boom)
            with pytest.raises(ValueError, match="kaboom"):
                handle.result(timeout=5)

    def test_dependents_of_failed_task_cancelled(self):
        def boom():
            raise RuntimeError("upstream failed")

        with OnlineScheduler(num_threads=2) as pool:
            bad = pool.submit(boom)
            child = pool.submit(lambda x: x, deps=[bad])
            with pytest.raises(RuntimeError, match="upstream failed"):
                child.result(timeout=5)

    def test_submit_after_failed_dependency(self):
        def boom():
            raise RuntimeError("already dead")

        with OnlineScheduler(num_threads=2) as pool:
            bad = pool.submit(boom)
            with pytest.raises(RuntimeError):
                bad.result(timeout=5)
            late = pool.submit(lambda x: x, deps=[bad])
            with pytest.raises(RuntimeError, match="already dead"):
                late.result(timeout=5)

    def test_result_timeout(self):
        with OnlineScheduler(num_threads=1) as pool:
            slow = pool.submit(lambda: time.sleep(0.3) or 42)
            with pytest.raises(TimeoutError):
                slow.result(timeout=0.01)
            assert slow.result(timeout=5) == 42


class TestLifecycle:
    def test_submit_after_shutdown_rejected(self):
        pool = OnlineScheduler(num_threads=1)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit(lambda: 1)

    def test_shutdown_waits_for_queued_work(self):
        pool = OnlineScheduler(num_threads=2)
        handles = [
            pool.submit(lambda i=i: time.sleep(0.01) or i)
            for i in range(8)
        ]
        pool.shutdown(wait=True)
        assert [h.result(timeout=1) for h in handles] == list(range(8))

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            OnlineScheduler(num_threads=0)

    def test_handle_done_flag(self):
        with OnlineScheduler(num_threads=1) as pool:
            h = pool.submit(lambda: 1)
            h.result(timeout=5)
            assert h.done()
