"""Whole-network validation checks."""

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.bn.network import BayesianNetwork
from repro.bn.validation import check_network, network_problems
from repro.potential.table import PotentialTable


class TestNetworkValidation:
    def test_valid_network_passes(self):
        bn = random_network(10, max_parents=3, edge_probability=0.7, seed=0)
        assert network_problems(bn) == []
        check_network(bn)

    def test_missing_cpt_detected(self):
        bn = BayesianNetwork([2, 2])
        bn.set_cpt(0, PotentialTable([0], [2], np.array([0.5, 0.5])))
        problems = network_problems(bn)
        assert any("variable 1 has no CPT" in p for p in problems)
        with pytest.raises(ValueError, match="no CPT"):
            check_network(bn)

    def test_denormalized_cpt_detected(self):
        bn = BayesianNetwork([2])
        bn.set_cpt(0, PotentialTable([0], [2], np.array([0.5, 0.5])))
        # Corrupt the stored table behind the setter's back (simulating a
        # mutation after construction).
        bn.cpt(0).values[0] = 0.9
        problems = network_problems(bn)
        assert any("sum to" in p for p in problems)

    def test_negative_entry_detected(self):
        bn = BayesianNetwork([2])
        bn.set_cpt(0, PotentialTable([0], [2], np.array([0.5, 0.5])))
        bn.cpt(0).values[:] = [1.5, -0.5]
        problems = network_problems(bn)
        assert any("negative" in p for p in problems)

    def test_multiple_problems_all_reported(self):
        bn = BayesianNetwork([2, 2, 2])
        bn.set_cpt(0, PotentialTable([0], [2], np.array([0.5, 0.5])))
        problems = network_problems(bn)
        assert len(problems) == 2  # variables 1 and 2 missing CPTs

    def test_roundtrip_through_io_stays_valid(self, tmp_path):
        from repro.io.json_io import load_network, save_network

        bn = random_network(8, max_parents=2, edge_probability=0.8, seed=1)
        path = tmp_path / "n.json"
        save_network(bn, path)
        check_network(load_network(path))
