"""Event tracing of the real threaded collaborative executor.

The recorded events feed the same Trace validators used for simulated
schedules: per-thread serialization must hold (one task at a time per
thread), and chunk events of one task must all fall between the task
becoming ready and its completion.
"""

import numpy as np
import pytest

from repro.jt.generation import synthetic_tree
from repro.sched.collaborative import CollaborativeExecutor
from repro.simcore.trace import Trace
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState


@pytest.fixture
def tree():
    t = synthetic_tree(16, clique_width=4, states=2, avg_children=3, seed=91)
    t.initialize_potentials(np.random.default_rng(91))
    return t


def _run(tree, **kwargs):
    graph = build_task_graph(tree)
    executor = CollaborativeExecutor(record_events=True, **kwargs)
    stats = executor.run(graph, PropagationState(tree))
    return graph, stats


class TestEventRecording:
    def test_disabled_by_default(self, tree):
        graph = build_task_graph(tree)
        stats = CollaborativeExecutor(num_threads=2).run(
            graph, PropagationState(tree)
        )
        assert stats.events == []

    def test_every_task_appears(self, tree):
        graph, stats = _run(tree, num_threads=3)
        executed = {tid for tid, _, _, _ in stats.events}
        assert executed == set(range(graph.num_tasks))

    def test_events_form_valid_per_thread_schedule(self, tree):
        graph, stats = _run(tree, num_threads=4)
        trace = Trace(4)
        for tid, thread, start, end in stats.events:
            trace.add(tid, thread, start, end)
        trace.check_no_overlap()

    def test_timestamps_within_wall_time(self, tree):
        _, stats = _run(tree, num_threads=2)
        for _, _, start, end in stats.events:
            assert 0.0 <= start <= end
            assert end <= stats.wall_time + 0.05

    def test_partitioned_tasks_log_chunk_events(self, tree):
        graph, stats = _run(tree, num_threads=3, partition_threshold=4)
        assert stats.tasks_partitioned > 0
        counts = {}
        for tid, _, _, _ in stats.events:
            counts[tid] = counts.get(tid, 0) + 1
        # At least one task shows multiple (chunk) events.
        assert max(counts.values()) > 1

    def test_dependencies_respected_in_real_time(self, tree):
        """A task's first event must not start before every dependency's
        last event ended (modulo scheduler hand-off, which only adds
        delay, never reordering)."""
        graph, stats = _run(tree, num_threads=4)
        first_start = {}
        last_end = {}
        for tid, _, start, end in stats.events:
            first_start[tid] = min(first_start.get(tid, start), start)
            last_end[tid] = max(last_end.get(tid, end), end)
        for tid, deps in enumerate(graph.deps):
            for d in deps:
                assert first_start[tid] >= last_end[d] - 1e-6, (
                    f"task {tid} started before dependency {d} finished"
                )
