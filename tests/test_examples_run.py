"""Every example script must run to completion (bitrot guard).

Each example's ``main()`` is executed in-process with a captured stdout;
assertions are line-level smoke checks on the narrative output.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    # Some examples import siblings; keep the directory importable.
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        spec.loader.exec_module(module)
    finally:
        sys.path.pop(0)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "posteriors match" in out

    def test_medical_diagnosis(self, capsys):
        _load("medical_diagnosis").main()
        out = capsys.readouterr().out
        assert "verified against brute-force enumeration." in out
        assert "ranked by impact" in out

    def test_rerooting_demo(self, capsys):
        _load("rerooting_demo").main()
        out = capsys.readouterr().out
        assert "matches the O(N^2) brute-force search." in out

    def test_mpe_decoding(self, capsys):
        _load("mpe_decoding").main()
        out = capsys.readouterr().out
        assert "decoding errors: 0" in out

    def test_generic_dag_scheduling(self, capsys):
        _load("generic_dag_scheduling").main()
        out = capsys.readouterr().out
        assert "report:" in out

    def test_incremental_updates(self, capsys):
        _load("incremental_updates").main()
        out = capsys.readouterr().out
        assert "cold recomputation" in out

    def test_hmm_tracking(self, capsys):
        _load("hmm_tracking").main()
        out = capsys.readouterr().out
        assert "smoothed" in out and "filtered" in out

    @pytest.mark.slow
    def test_learning_pipeline(self, capsys):
        _load("learning_pipeline").main()
        out = capsys.readouterr().out
        assert "OK" in out

    @pytest.mark.slow
    def test_parallel_scaling(self, capsys):
        _load("parallel_scaling").main()
        out = capsys.readouterr().out
        assert "collaborative (proposed)" in out
        assert "< 0.9%" in out
