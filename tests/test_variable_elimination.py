"""Variable elimination: third independent exact-inference oracle."""

import numpy as np
import pytest

from repro.bn.generation import chain_network, random_network
from repro.inference.engine import InferenceEngine
from repro.inference.shafershenoy import ShaferShenoyEngine
from repro.inference.variable_elimination import ve_marginal, ve_query
from repro.jt.build import junction_tree_from_network


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    def test_single_marginals(self, seed):
        bn = random_network(
            9, cardinality=2, max_parents=3, edge_probability=0.8, seed=seed
        )
        for v in (0, 4, 8):
            assert np.allclose(
                ve_marginal(bn, v), bn.marginal_bruteforce(v)
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_posteriors(self, seed):
        bn = random_network(
            9, cardinality=2, max_parents=3, edge_probability=0.8, seed=seed
        )
        evidence = {1: 1, 6: 0}
        for v in (0, 4, 8):
            if v in evidence:
                continue
            assert np.allclose(
                ve_marginal(bn, v, evidence),
                bn.marginal_bruteforce(v, evidence),
            )

    def test_multistate(self):
        bn = random_network(
            7, cardinality=3, max_parents=2, edge_probability=0.8, seed=10
        )
        assert np.allclose(
            ve_marginal(bn, 5, {0: 2}), bn.marginal_bruteforce(5, {0: 2})
        )

    def test_joint_query_matches_joint_table(self):
        bn = random_network(
            7, max_parents=2, edge_probability=0.8, seed=11
        )
        from repro.potential.primitives import marginalize

        joint = ve_query(bn, [2, 5])
        expected = marginalize(bn.joint_table(), (2, 5)).normalize()
        assert np.allclose(joint.aligned_to((2, 5)).values, expected.values)

    def test_joint_query_with_evidence(self):
        bn = random_network(
            7, max_parents=2, edge_probability=0.8, seed=12
        )
        from repro.potential.primitives import marginalize

        joint = ve_query(bn, [0, 3], {5: 1})
        expected = marginalize(
            bn.joint_table().reduce({5: 1}), (0, 3)
        ).normalize()
        assert np.allclose(joint.aligned_to((0, 3)).values, expected.values)


class TestThreeWayAgreement:
    """HUGIN task-graph engine, Shafer-Shenoy and VE must all agree."""

    @pytest.mark.parametrize("seed", range(3))
    def test_all_engines_agree(self, seed):
        bn = random_network(
            10, max_parents=3, edge_probability=0.7, seed=100 + seed
        )
        evidence = {0: 1}
        hugin = InferenceEngine.from_network(bn)
        hugin.set_evidence(evidence)
        hugin.propagate()
        ss = ShaferShenoyEngine(junction_tree_from_network(bn))
        ss.observe(0, 1)
        for v in range(1, 10):
            a = hugin.marginal(v)
            b = ss.marginal(v)
            c = ve_marginal(bn, v, evidence)
            assert np.allclose(a, b)
            assert np.allclose(b, c)


class TestValidation:
    def test_empty_targets_rejected(self):
        bn = random_network(4, seed=0)
        with pytest.raises(ValueError, match="at least one"):
            ve_query(bn, [])

    def test_observed_target_rejected(self):
        bn = random_network(4, seed=0)
        with pytest.raises(ValueError, match="observed"):
            ve_query(bn, [1], {1: 0})

    def test_out_of_range_target_rejected(self):
        bn = random_network(4, seed=0)
        with pytest.raises(ValueError, match="out of range"):
            ve_query(bn, [9])

    def test_missing_cpts_rejected(self):
        from repro.bn.network import BayesianNetwork

        bn = BayesianNetwork([2, 2])
        with pytest.raises(ValueError, match="CPTs"):
            ve_query(bn, [0])

    def test_chain_is_efficient_shape(self):
        # VE on a long chain must not blow up combinatorially: the biggest
        # intermediate factor stays pairwise.
        bn = chain_network(18, seed=1)
        result = ve_marginal(bn, 17, {0: 1})
        assert np.isclose(result.sum(), 1.0)
