"""Evidence sensitivity analysis."""

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.inference.sensitivity import (
    evidence_impact,
    finding_strength,
    rank_findings,
)
from repro.jt.build import junction_tree_from_network
from repro.models import asia


@pytest.fixture
def asia_tree():
    bn, _ = asia()
    return junction_tree_from_network(bn)


class TestEvidenceImpact:
    def test_keys_match_evidence(self, asia_tree):
        impact = evidence_impact(asia_tree, 3, {2: 1, 6: 1, 0: 1})
        assert set(impact) == {2, 6, 0}
        assert all(v >= 0 for v in impact.values())

    def test_xray_dominates_for_lung_cancer(self, asia_tree):
        # For the lung-cancer posterior, the abnormal X-ray is far more
        # informative than the visit to Asia.
        impact = evidence_impact(asia_tree, 3, {6: 1, 0: 1})
        assert impact[6] > impact[0]

    def test_irrelevant_finding_zero_impact(self):
        bn = random_network(8, edge_probability=0.0, seed=1)
        jt = junction_tree_from_network(bn)
        # Fully disconnected network: nothing influences anything.
        impact = evidence_impact(jt, 0, {3: 1})
        assert impact[3] == pytest.approx(0.0, abs=1e-12)

    def test_observed_target_rejected(self, asia_tree):
        with pytest.raises(ValueError):
            evidence_impact(asia_tree, 3, {3: 1})

    def test_engine_state_restored_after_sweep(self, asia_tree):
        from repro.inference.shafershenoy import ShaferShenoyEngine

        evidence = {2: 1, 6: 1}
        impact_once = evidence_impact(asia_tree, 3, evidence)
        impact_twice = evidence_impact(asia_tree, 3, evidence)
        for var in evidence:
            assert impact_once[var] == pytest.approx(impact_twice[var])


class TestFindingStrength:
    def test_solo_strengths_nonnegative(self, asia_tree):
        strength = finding_strength(asia_tree, 3, {2: 1, 6: 1})
        assert all(v >= 0 for v in strength.values())

    def test_stronger_finding_ranks_higher(self, asia_tree):
        strength = finding_strength(asia_tree, 3, {6: 1, 0: 1})
        assert strength[6] > strength[0]


class TestRanking:
    def test_sorted_descending(self, asia_tree):
        ranked = rank_findings(asia_tree, 3, {2: 1, 6: 1, 0: 1})
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)

    def test_consistent_with_impact(self, asia_tree):
        evidence = {2: 1, 6: 1}
        impact = evidence_impact(asia_tree, 3, evidence)
        ranked = rank_findings(asia_tree, 3, evidence)
        assert dict(ranked) == pytest.approx(impact)


class TestInformationGain:
    def test_matches_mutual_information(self, asia_tree):
        """EIG with no evidence equals I(candidate; target) on the joint."""
        from repro.inference.sensitivity import expected_information_gain
        from repro.models import asia
        from repro.potential.info import mutual_information

        bn, _ = asia()
        joint = bn.joint_table()
        for candidate in (6, 0, 2):
            eig = expected_information_gain(asia_tree, 3, candidate)
            mi = mutual_information(joint, [candidate], [3])
            assert eig == pytest.approx(mi, abs=1e-9)

    def test_nonnegative_and_zero_for_irrelevant(self):
        from repro.inference.sensitivity import expected_information_gain

        bn = random_network(6, edge_probability=0.0, seed=4)
        jt = junction_tree_from_network(bn)
        assert expected_information_gain(jt, 0, 3) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_xray_is_the_best_test_for_lung(self, asia_tree):
        from repro.inference.sensitivity import best_next_observation

        # With only "smoker" known, the X-ray is the most informative
        # next observation for lung cancer — more than dyspnoea or asia.
        ranked = best_next_observation(
            asia_tree, 3, candidates=[0, 6, 7], evidence={2: 1}
        )
        assert ranked[0][0] == 6
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)

    def test_validation(self, asia_tree):
        from repro.inference.sensitivity import expected_information_gain

        with pytest.raises(ValueError):
            expected_information_gain(asia_tree, 3, 3)
        with pytest.raises(ValueError):
            expected_information_gain(asia_tree, 3, 6, {6: 1})
