"""Junction-tree statistics."""

import pytest

from repro.jt.generation import paper_tree, synthetic_tree, template_tree
from repro.jt.stats import (
    separator_sizes,
    summarize_tree,
    total_table_entries,
    tree_depth,
    treewidth,
    width_histogram,
)


class TestTreeStats:
    def test_treewidth_uniform_tree(self):
        tree = template_tree(2, num_cliques=25, clique_width=5)
        assert treewidth(tree) == 4

    def test_total_table_entries(self):
        tree = template_tree(2, num_cliques=25, clique_width=5)
        assert total_table_entries(tree) == 25 * 2**5

    def test_separator_sizes_count(self):
        tree = synthetic_tree(20, clique_width=4, seed=1)
        assert len(separator_sizes(tree)) == 19

    def test_separator_never_exceeds_clique(self):
        tree = synthetic_tree(20, clique_width=5, seed=2)
        for child in range(tree.num_cliques):
            parent = tree.parent[child]
            if parent is None:
                continue
            sep_size = 1
            for card in tree.separator_cards(child, parent):
                sep_size *= card
            assert sep_size <= tree.cliques[child].table_size

    def test_depth_of_chain(self):
        tree = synthetic_tree(
            10, clique_width=3, avg_children=1, seed=3
        )
        # Poisson(1) children still yields a path-ish tree; depth > 2.
        assert tree_depth(tree) >= 2

    def test_width_histogram_sums_to_cliques(self):
        tree = synthetic_tree(30, clique_width=6, seed=4)
        hist = width_histogram(tree)
        assert sum(hist.values()) == 30

    def test_summary_consistency(self):
        tree = paper_tree(3)
        stats = summarize_tree(tree)
        assert stats.num_cliques == 128
        assert stats.treewidth >= 7  # widths jitter around 10
        assert stats.num_leaves == len(tree.leaves())
        assert stats.avg_children > 0
        assert stats.max_separator_size <= stats.max_clique_size
        assert stats.depth == tree_depth(tree)

    def test_single_clique_tree(self):
        tree = synthetic_tree(1, clique_width=3, seed=5)
        stats = summarize_tree(tree)
        assert stats.depth == 0
        assert stats.num_leaves == 1
        assert stats.avg_children == 0.0
        assert stats.max_separator_size == 0
