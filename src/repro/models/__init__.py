"""Classic example networks, ready for inference.

Small hand-specified Bayesian networks from the literature, each returning
a fully parameterized :class:`~repro.bn.network.BayesianNetwork` plus a
name table.  Useful for demos, documentation and as fixed test vectors
(several posteriors are known to three decimals).
"""

from repro.models.classic import (
    asia,
    cancer,
    car_start,
    sprinkler,
    student,
)

__all__ = ["asia", "sprinkler", "cancer", "student", "car_start"]
