"""Hand-specified classic networks.

Each builder returns ``(network, names)`` where ``names`` maps variable
ids to human-readable labels.  All variables are binary unless noted;
state 1 means "true"/"present".
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.bn.cpd import tabular_cpd
from repro.bn.network import BayesianNetwork

Model = Tuple[BayesianNetwork, Dict[int, str]]


def asia() -> Model:
    """The Lauritzen-Spiegelhalter (1988) chest-clinic network.

    Reference [1] of the reproduced paper.  Eight binary variables:
    asia, tub, smoke, lung, bronc, either, xray, dysp.
    """
    names = {
        0: "asia", 1: "tub", 2: "smoke", 3: "lung",
        4: "bronc", 5: "either", 6: "xray", 7: "dysp",
    }
    bn = BayesianNetwork([2] * 8)
    bn.add_edge(0, 1)
    bn.add_edge(2, 3)
    bn.add_edge(2, 4)
    bn.add_edge(1, 5)
    bn.add_edge(3, 5)
    bn.add_edge(5, 6)
    bn.add_edge(5, 7)
    bn.add_edge(4, 7)
    bn.set_cpt(0, tabular_cpd(0, 2, [], [], np.array([0.99, 0.01])))
    bn.set_cpt(2, tabular_cpd(2, 2, [], [], np.array([0.5, 0.5])))
    bn.set_cpt(
        1, tabular_cpd(1, 2, [0], [2], np.array([[0.99, 0.01], [0.95, 0.05]]))
    )
    bn.set_cpt(
        3, tabular_cpd(3, 2, [2], [2], np.array([[0.99, 0.01], [0.90, 0.10]]))
    )
    bn.set_cpt(
        4, tabular_cpd(4, 2, [2], [2], np.array([[0.70, 0.30], [0.40, 0.60]]))
    )
    bn.set_cpt(
        5,
        tabular_cpd(
            5, 2, [1, 3], [2, 2],
            np.array([[[1.0, 0.0], [0.0, 1.0]], [[0.0, 1.0], [0.0, 1.0]]]),
        ),
    )
    bn.set_cpt(
        6, tabular_cpd(6, 2, [5], [2], np.array([[0.95, 0.05], [0.02, 0.98]]))
    )
    bn.set_cpt(
        7,
        tabular_cpd(
            7, 2, [5, 4], [2, 2],
            np.array([[[0.90, 0.10], [0.20, 0.80]],
                      [[0.30, 0.70], [0.10, 0.90]]]),
        ),
    )
    return bn, names


def sprinkler() -> Model:
    """Pearl's rain/sprinkler/wet-grass network (4 variables)."""
    names = {0: "cloudy", 1: "sprinkler", 2: "rain", 3: "wet_grass"}
    bn = BayesianNetwork([2] * 4)
    bn.add_edge(0, 1)
    bn.add_edge(0, 2)
    bn.add_edge(1, 3)
    bn.add_edge(2, 3)
    bn.set_cpt(0, tabular_cpd(0, 2, [], [], np.array([0.5, 0.5])))
    bn.set_cpt(
        1, tabular_cpd(1, 2, [0], [2], np.array([[0.5, 0.5], [0.9, 0.1]]))
    )
    bn.set_cpt(
        2, tabular_cpd(2, 2, [0], [2], np.array([[0.8, 0.2], [0.2, 0.8]]))
    )
    bn.set_cpt(
        3,
        tabular_cpd(
            3, 2, [1, 2], [2, 2],
            np.array([[[1.0, 0.0], [0.1, 0.9]],
                      [[0.1, 0.9], [0.01, 0.99]]]),
        ),
    )
    return bn, names


def cancer() -> Model:
    """The five-variable Cancer network (Korb & Nicholson)."""
    names = {
        0: "pollution", 1: "smoker", 2: "cancer", 3: "xray", 4: "dyspnoea"
    }
    bn = BayesianNetwork([2] * 5)
    bn.add_edge(0, 2)
    bn.add_edge(1, 2)
    bn.add_edge(2, 3)
    bn.add_edge(2, 4)
    # State 1 of pollution means "high".
    bn.set_cpt(0, tabular_cpd(0, 2, [], [], np.array([0.9, 0.1])))
    bn.set_cpt(1, tabular_cpd(1, 2, [], [], np.array([0.7, 0.3])))
    bn.set_cpt(
        2,
        tabular_cpd(
            2, 2, [0, 1], [2, 2],
            np.array([[[0.999, 0.001], [0.97, 0.03]],
                      [[0.95, 0.05], [0.92, 0.08]]]),
        ),
    )
    bn.set_cpt(
        3, tabular_cpd(3, 2, [2], [2], np.array([[0.8, 0.2], [0.1, 0.9]]))
    )
    bn.set_cpt(
        4, tabular_cpd(4, 2, [2], [2], np.array([[0.7, 0.3], [0.35, 0.65]]))
    )
    return bn, names


def student() -> Model:
    """Koller & Friedman's student network (multi-state variables).

    difficulty(2), intelligence(2), grade(3), sat(2), letter(2).
    """
    names = {
        0: "difficulty", 1: "intelligence", 2: "grade", 3: "sat", 4: "letter"
    }
    bn = BayesianNetwork([2, 2, 3, 2, 2])
    bn.add_edge(0, 2)
    bn.add_edge(1, 2)
    bn.add_edge(1, 3)
    bn.add_edge(2, 4)
    bn.set_cpt(0, tabular_cpd(0, 2, [], [], np.array([0.6, 0.4])))
    bn.set_cpt(1, tabular_cpd(1, 2, [], [], np.array([0.7, 0.3])))
    bn.set_cpt(
        2,
        tabular_cpd(
            2, 3, [0, 1], [2, 2],
            np.array([[[0.3, 0.4, 0.3], [0.9, 0.08, 0.02]],
                      [[0.05, 0.25, 0.7], [0.5, 0.3, 0.2]]]),
        ),
    )
    bn.set_cpt(
        3, tabular_cpd(3, 2, [1], [2], np.array([[0.95, 0.05], [0.2, 0.8]]))
    )
    bn.set_cpt(
        4,
        tabular_cpd(
            4, 2, [2], [3],
            np.array([[0.1, 0.9], [0.4, 0.6], [0.99, 0.01]]),
        ),
    )
    return bn, names


def car_start() -> Model:
    """A nine-variable car-diagnosis network (battery/fuel/starter style)."""
    names = {
        0: "battery_age", 1: "battery_ok", 2: "alternator_ok",
        3: "charging_ok", 4: "fuel", 5: "starter_ok",
        6: "engine_cranks", 7: "engine_starts", 8: "lights_on",
    }
    bn = BayesianNetwork([2] * 9)
    bn.add_edge(0, 1)
    bn.add_edge(2, 3)
    bn.add_edge(1, 3)
    bn.add_edge(3, 6)
    bn.add_edge(5, 6)
    bn.add_edge(6, 7)
    bn.add_edge(4, 7)
    bn.add_edge(1, 8)
    # battery_age: state 1 = old.
    bn.set_cpt(0, tabular_cpd(0, 2, [], [], np.array([0.7, 0.3])))
    bn.set_cpt(
        1, tabular_cpd(1, 2, [0], [2], np.array([[0.03, 0.97], [0.3, 0.7]]))
    )
    bn.set_cpt(2, tabular_cpd(2, 2, [], [], np.array([0.05, 0.95])))
    bn.set_cpt(
        3,
        tabular_cpd(
            3, 2, [2, 1], [2, 2],
            np.array([[[0.99, 0.01], [0.8, 0.2]],
                      [[0.7, 0.3], [0.02, 0.98]]]),
        ),
    )
    bn.set_cpt(4, tabular_cpd(4, 2, [], [], np.array([0.05, 0.95])))
    bn.set_cpt(5, tabular_cpd(5, 2, [], [], np.array([0.02, 0.98])))
    bn.set_cpt(
        6,
        tabular_cpd(
            6, 2, [3, 5], [2, 2],
            np.array([[[0.98, 0.02], [0.6, 0.4]],
                      [[0.95, 0.05], [0.05, 0.95]]]),
        ),
    )
    bn.set_cpt(
        7,
        tabular_cpd(
            7, 2, [6, 4], [2, 2],
            np.array([[[1.0, 0.0], [0.99, 0.01]],
                      [[0.99, 0.01], [0.02, 0.98]]]),
        ),
    )
    bn.set_cpt(
        8, tabular_cpd(8, 2, [1], [2], np.array([[0.9, 0.1], [0.05, 0.95]]))
    )
    return bn, names
