"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
* ``info`` — library version and module inventory.
* ``demo`` — a short end-to-end inference demo on a random network.
* ``experiment {fig5,fig6,fig7,fig8,fig9,rerooting-cost,all}`` —
  regenerate the paper's evaluation tables.
* ``query`` — build a random network, absorb evidence, print a marginal
  or the most probable explanation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_info(args) -> int:
    import repro

    print(f"repro {repro.__version__}")
    print(
        "Reproduction of: Xia, Feng, Prasanna — "
        "'Parallel Evidence Propagation on Multicore Processors' (PACT 2009)"
    )
    print("subsystems: bn, potential, jt, tasks, sched, simcore, inference,")
    print("            experiments, io, obs, serve, streaming, registry,")
    print("            integrity, durability")
    return 0


def _make_executor(
    name: str, threads: int, partition_threshold=None, **fault_kwargs
):
    """Instantiate one of the registered executors by CLI name.

    ``fault_kwargs`` (task_timeout / max_retries / fault_plan) configure
    the process executor's fault-tolerance layer; the thread and serial
    executors have no crash surface, so the kwargs are rejected there.
    """
    from repro.sched import (
        CollaborativeExecutor,
        ProcessSharedMemoryExecutor,
        SerialExecutor,
        WorkStealingExecutor,
    )

    if name != "process" and any(
        v is not None for v in fault_kwargs.values()
    ):
        raise ValueError(
            "fault-injection / deadline options need --executor process"
        )
    if name == "serial":
        return SerialExecutor()
    if name == "collaborative":
        return CollaborativeExecutor(
            num_threads=threads, partition_threshold=partition_threshold
        )
    if name == "workstealing":
        return WorkStealingExecutor(
            num_threads=threads, partition_threshold=partition_threshold
        )
    if name == "process":
        kwargs = {k: v for k, v in fault_kwargs.items() if v is not None}
        return ProcessSharedMemoryExecutor(
            num_workers=threads,
            partition_threshold=partition_threshold,
            **kwargs,
        )
    raise ValueError(f"unknown executor {name!r}")


EXECUTOR_CHOICES = ("serial", "collaborative", "workstealing", "process")


def _cmd_demo(args) -> int:
    from repro import InferenceEngine, random_network

    bn = random_network(
        args.variables, max_parents=3, edge_probability=0.6, seed=args.seed
    )
    engine = InferenceEngine.from_network(bn)
    print(
        f"{bn.num_variables}-variable network -> "
        f"{engine.jt.num_cliques} cliques, "
        f"{engine.task_graph.num_tasks} tasks"
    )
    engine.set_evidence({0: 1})
    fault_plan = None
    if args.inject_kill is not None:
        from repro.sched import FaultPlan

        fault_plan = FaultPlan(kill_before_dispatch={args.inject_kill: 0})
    executor = _make_executor(
        args.executor,
        args.threads,
        args.partition_threshold,
        task_timeout=args.deadline,
        max_retries=args.retries if args.retries else None,
        fault_plan=fault_plan,
        # A demo network's tables sit under the inline threshold; force
        # real dispatches so the injected fault has a worker to hit.
        inline_threshold=0 if fault_plan is not None else None,
    )
    print(f"executor: {args.executor} ({args.threads} workers)")
    if fault_plan is not None:
        print(f"fault injection: kill a worker before dispatch "
              f"{args.inject_kill}")
    engine.propagate(
        executor,
        resilience=args.resilience or None,
        trace=getattr(args, "trace", None),
    )
    target = bn.num_variables - 1
    print(
        f"P(X{target} | X0=1) = "
        f"{np.round(engine.marginal(target), 4).tolist()}"
    )
    print(f"P(evidence) = {engine.likelihood():.6f}")
    for item in args.delta or []:
        var_text, _, state_text = item.partition("=")
        var = int(var_text)
        if state_text == "-":
            engine.retract(var)
            print(f"delta: retract X{var}")
        else:
            engine.observe(var, int(state_text))
            print(f"delta: observe X{var}={state_text}")
        engine.propagate(executor, resilience=args.resilience or None)
        inc = engine.last_stats
        mode = "incremental" if inc.incremental else "full"
        print(
            f"  repropagated ({mode}): {inc.tasks_executed} tasks, "
            f"{inc.tasks_skipped} skipped of "
            f"{engine.task_graph.num_tasks}"
        )
        print(
            f"  P(X{target} | evidence) = "
            f"{np.round(engine.marginal(target), 4).tolist()}"
        )
    if args.delta:
        print(
            f"query cache: {engine.cache.hits} hits / "
            f"{engine.cache.misses} misses "
            f"(hit rate {engine.cache.hit_rate() * 100:.1f}%)"
        )
    stats = engine.last_stats
    if (
        stats.retries_total or stats.pool_restarts
        or stats.workers_restarted or stats.deadline_misses
        or stats.fault_events or stats.degradations
    ):
        print(
            f"recovery: {stats.retries_total} retries, "
            f"{stats.deadline_misses} deadline misses, "
            f"{stats.pool_restarts} pool restarts, "
            f"{stats.workers_restarted} workers restarted"
        )
        for event in stats.fault_events:
            print(f"  fault injected: {event}")
        for record in stats.degradations:
            print(f"  degraded: {record}")
    if stats.health:
        print(f"health: {stats.health}")
    if getattr(args, "trace", None):
        trace = engine.last_trace
        print(trace.summary())
        print(
            f"trace written to {args.trace} "
            f"(open in https://ui.perfetto.dev or chrome://tracing; "
            f"inspect with `repro trace report {args.trace}`)"
        )
    return 0


def _serve_demo_registry(args) -> int:
    """Multi-model variant: a registry-fronted burst across N models and
    K tenants, with an optional memory budget forcing LRU evictions."""
    import random
    import threading

    from repro import random_network
    from repro.registry import ModelRegistry, RegistryService, TenantScheduler
    from repro.serve import QueryRequest

    budget = (
        int(args.budget_mb * 1e6) if args.budget_mb is not None else None
    )
    registry = ModelRegistry(
        memory_budget=budget,
        sessions=args.sessions,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        durable_root=args.durable_root,
    )
    model_ids = [f"model-{i}" for i in range(args.models)]
    for i, model_id in enumerate(model_ids):
        registry.register(
            model_id,
            loader=lambda s=args.seed + i: random_network(
                args.variables, max_parents=3, edge_probability=0.6, seed=s
            ),
        )
    service = RegistryService(
        registry,
        scheduler=TenantScheduler(capacity=max(8, 4 * args.tenants)),
    )
    budget_label = (
        f"{args.budget_mb:g} MB budget" if budget else "no budget"
    )
    print(
        f"{args.models} models x {args.variables} variables, "
        f"{args.tenants} tenants, {args.sessions} sessions/model, "
        f"{budget_label}"
    )
    if args.durable_root is not None:
        adopted = registry.stats()["recovered_models"]
        print(
            f"durable root {args.durable_root}: {adopted} of "
            f"{args.models} models adopted warm from previous artifacts"
        )

    def client(cid: int) -> None:
        rng = random.Random(args.seed * 1000 + cid)
        tenant = f"tenant-{cid % args.tenants}"
        for _ in range(args.requests):
            delta = {
                rng.randrange(args.variables): rng.randrange(2)
                for _ in range(rng.randrange(3))
            }
            vars_ = sorted(rng.sample(range(args.variables), 2))
            service.submit(
                QueryRequest(
                    delta=delta,
                    vars=vars_,
                    deadline=args.deadline,
                    max_staleness=args.max_staleness,
                    model_id=rng.choice(model_ids),
                    tenant=tenant,
                )
            ).result(120.0)

    clients = max(args.clients, args.tenants)
    threads = [
        threading.Thread(target=client, args=(cid,), name=f"client-{cid}")
        for cid in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report = service.drain()
    print(report.format())
    return 0


def _cmd_serve_demo(args) -> int:
    """Stand up an InferenceService, fire a seeded client burst, report."""
    import random
    import threading

    from repro import random_network
    from repro.jt.build import junction_tree_from_network
    from repro.serve import EngineSessionPool, InferenceService, QueryRequest

    if args.models > 1 or args.durable_root is not None:
        # Durable artifacts live in the registry layer, so a durable
        # serve-demo always routes through it (one model is fine).
        return _serve_demo_registry(args)

    bn = random_network(
        args.variables, max_parents=3, edge_probability=0.6, seed=args.seed
    )
    pool = EngineSessionPool.from_junction_tree(
        junction_tree_from_network(bn), sessions=args.sessions
    )
    primary = fallback = None
    if args.executor == "process":
        primary = _make_executor("process", args.threads)
    elif args.executor != "serial":
        fallback = _make_executor(args.executor, args.threads)
    else:
        fallback = _make_executor("serial", 1)
    service = InferenceService(
        pool,
        primary=primary,
        fallback=fallback,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
    )
    print(
        f"{bn.num_variables}-variable network, "
        f"{pool.num_sessions} sessions, tier: {args.executor}, "
        f"max batch: {args.max_batch}"
    )

    def client(cid: int) -> None:
        rng = random.Random(args.seed * 1000 + cid)
        for _ in range(args.requests):
            delta = {
                rng.randrange(args.variables): rng.randrange(2)
                for _ in range(rng.randrange(3))
            }
            vars_ = sorted(rng.sample(range(args.variables), 2))
            service.submit(
                QueryRequest(
                    delta=delta,
                    vars=vars_,
                    deadline=args.deadline,
                    max_staleness=args.max_staleness,
                )
            ).result(60.0)

    threads = [
        threading.Thread(target=client, args=(cid,), name=f"client-{cid}")
        for cid in range(args.clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report = service.drain()
    print(report.format())
    return 0


def _cmd_stream_demo(args) -> int:
    """Stream seeded evidence ticks through a StreamingService, report."""
    import random

    import numpy as np

    from repro.bn.dbn import make_hmm
    from repro.serve import StreamingService

    rng = np.random.default_rng(args.seed)

    def stochastic(shape, axis=-1):
        table = rng.random(shape) + 0.1
        return table / table.sum(axis=axis, keepdims=True)

    states, observations = args.states, args.observations
    dbn = make_hmm(
        states,
        observations,
        initial=stochastic(states, axis=0),
        transition=stochastic((states, states)),
        emission=stochastic((states, observations)),
    )
    service = StreamingService(
        dbn,
        window=args.window,
        retire=args.retire,
        workers=args.workers,
        max_pending=args.max_pending,
        default_deadline=args.deadline,
        durable_root=args.durable_root,
    )
    if service.recovery_report is not None and service.recovery_report.streams:
        print(service.recovery_report.format())
    print(
        f"{states}-state/{observations}-symbol HMM, "
        f"{args.streams} streams x {args.ticks} ticks, "
        f"window {args.window} (retire "
        f"{args.retire if args.retire is not None else args.window // 2}), "
        f"max pending {args.max_pending}"
    )
    handles = []
    for i in range(args.streams):
        name = f"stream-{i}"
        try:
            # A durable rerun already rebuilt the stream at recovery.
            handles.append(service._handle(name))
        except KeyError:
            handles.append(service.subscribe(name=name, query_vars=[0]))
    futures = []
    for i, handle in enumerate(handles):
        seq = random.Random(args.seed * 1000 + i)
        for _ in range(args.ticks):
            delta = (
                {} if seq.random() < 0.1
                else {1: seq.randrange(observations)}
            )
            futures.append((handle, service.push_tick(handle, delta)))
    last = {}
    for handle, future in futures:
        response = future.result(60.0)
        if response.ok:
            last[handle.name] = response
    for name in sorted(last):
        response = last[name]
        belief = ", ".join(f"{p:.4f}" for p in response.marginals[0])
        print(
            f"  {name}: t={response.t} "
            f"P(state) = [{belief}]"
            f"{'  (rolled)' if response.rolled else ''}"
        )
    report = service.drain()
    print(report.format())
    return 0


def _cmd_recover(args) -> int:
    """Replay a durable root's journals and print the recovery report."""
    import os

    from repro.durability import DurableModelStore, RecoveryManager
    from repro.serve import StreamingService

    manager = RecoveryManager(args.root)
    streams = manager.stream_names()
    store = DurableModelStore(args.root)
    manifest = store.manifest()
    if not streams and not manifest:
        print(f"nothing durable under {args.root}")
        return 0

    if streams:
        dbn = manager.load_template()
        if dbn is None:
            print(
                f"{args.root}: {len(streams)} stream journal(s) but no "
                f"_template.json — cannot rebuild the sessions",
                file=sys.stderr,
            )
            return 1
        service = StreamingService(
            dbn, workers=args.workers, durable_root=args.root
        )
        report = service.recovery_report
        print(report.format())
        service.drain()
    if manifest:
        print(f"models ({len(manifest)} durable):")
        for model_id in sorted(manifest):
            meta = manifest[model_id]
            print(
                f"  {model_id}: {meta['checkpoint_bytes']} checkpoint "
                f"bytes, cold compile was {meta['compile_seconds']*1e3:.1f} "
                f"ms — a fresh registry on this root adopts it warm"
            )
        print(f"  (root: {os.path.abspath(args.root)})")
    return 0


def _cmd_trace(args) -> int:
    import json

    from repro.obs import PropagationTrace, validate_chrome_trace

    if args.trace_command == "validate":
        try:
            counts = validate_chrome_trace(args.file)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"{args.file}: invalid trace — {exc}")
            return 1
        print(
            f"{args.file}: valid Chrome trace — {counts['events']} events, "
            f"{counts['spans']} spans, {counts['counters']} counter "
            f"samples, {counts['rows']} rows"
        )
        return 0

    try:
        trace = PropagationTrace.load(args.file)
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"{args.file}: cannot load trace — {exc}")
        return 1
    if args.trace_command == "gantt":
        print(trace.summary())
        print()
        print("\n".join(trace.gantt(width=args.width)))
        return 0

    # report: metrics + observed-vs-predicted simcore calibration
    print(trace.summary())
    print()
    print(trace.metrics().format())
    print()
    try:
        report = trace.calibrate()
    except ValueError as exc:
        print(f"calibration skipped: {exc}")
        return 0
    print(report.format())
    return 0


def _cmd_query(args) -> int:
    from repro import InferenceEngine, random_network

    bn = random_network(
        args.variables, max_parents=3, edge_probability=0.6, seed=args.seed
    )
    engine = InferenceEngine.from_network(bn)
    evidence = {}
    for item in args.evidence or []:
        var, _, state = item.partition("=")
        evidence[int(var)] = int(state)
    engine.set_evidence(evidence)
    if args.mpe:
        assignment, prob = engine.mpe()
        states = " ".join(
            f"X{v}={assignment[v]}" for v in sorted(assignment)
        )
        print(f"MPE: {states}")
        print(f"P = {prob:.6g}")
    else:
        engine.propagate()
        print(
            f"P(X{args.target} | evidence) = "
            f"{np.round(engine.marginal(args.target), 6).tolist()}"
        )
    return 0


def _cmd_model(args) -> int:
    from repro import models
    from repro.inference.engine import InferenceEngine
    from repro.inference.sensitivity import rank_findings

    builders = {
        "asia": models.asia,
        "sprinkler": models.sprinkler,
        "cancer": models.cancer,
        "student": models.student,
        "car-start": models.car_start,
    }
    bn, names = builders[args.name]()
    by_name = {label: var for var, label in names.items()}
    engine = InferenceEngine.from_network(bn)
    evidence = {}
    for item in args.evidence or []:
        label, _, state = item.partition("=")
        if label not in by_name:
            print(f"unknown variable {label!r}; variables: "
                  f"{', '.join(sorted(by_name))}")
            return 1
        evidence[by_name[label]] = int(state)
    engine.set_evidence(evidence)
    engine.propagate()
    print(f"{args.name}: {bn.num_variables} variables, "
          f"{engine.jt.num_cliques} cliques")
    if evidence:
        shown = ", ".join(
            f"{names[v]}={s}" for v, s in evidence.items()
        )
        print(f"evidence: {shown}  (P = {engine.likelihood():.6f})")
    for var in sorted(names):
        if var in evidence:
            continue
        marginal = engine.marginal(var)
        states = " ".join(f"{p:.4f}" for p in marginal)
        print(f"  P({names[var]:<12}) = [{states}]")
    if len(evidence) >= 2 and args.explain is not None:
        target = by_name.get(args.explain)
        if target is None or target in evidence:
            print(f"cannot explain {args.explain!r}")
            return 1
        print(f"\nevidence ranked by impact on P({args.explain}):")
        for var, impact in rank_findings(engine.jt, target, evidence):
            print(f"  {names[var]:<12} leave-one-out KL = {impact:.4f}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import (
        format_series_table,
        run_fig5,
        run_fig6,
        run_fig7,
        run_fig8,
        run_fig9,
        run_rerooting_cost,
    )

    which = args.figure
    todo = (
        ["fig5", "fig6", "fig7", "fig8", "fig9", "rerooting-cost", "manycore"]
        if which == "all"
        else [which]
    )
    cores = (1, 2, 4, 8)
    if "fig5" in todo:
        for platform, rows in run_fig5(cores=cores).items():
            print(
                format_series_table(
                    f"Fig. 5 — rerooting speedup ({platform})",
                    "b",
                    cores,
                    {str(b): sp for b, sp in rows.items()},
                )
            )
            print()
    if "fig6" in todo:
        procs = (1, 2, 4, 6, 8)
        print(
            format_series_table(
                "Fig. 6 — PNL-like execution time (s) on IBM P655-like",
                "workload",
                procs,
                run_fig6(processors=procs),
                fmt="{:.3f}",
            )
        )
        print()
    if "fig7" in todo:
        for platform, rows in run_fig7(cores=cores).items():
            print(
                format_series_table(
                    f"Fig. 7 — speedup ({platform})",
                    "workload/method",
                    cores,
                    rows,
                )
            )
            print()
    if "fig8" in todo:
        result = run_fig8()
        print("Fig. 8 — load balance & overhead (JT1, Opteron-like)")
        for p in sorted(result.sched_ratio):
            print(
                f"  P={p}: imbalance {result.load_imbalance[p]:.3f}, "
                f"sched ratio {result.sched_ratio[p] * 100:.3f}%"
            )
        print()
    if "fig9" in todo:
        for panel, rows in run_fig9(cores=cores).items():
            print(
                format_series_table(
                    f"Fig. 9({panel})", "configuration", cores, rows
                )
            )
            print()
    if "rerooting-cost" in todo:
        result = run_rerooting_cost()
        print("Rerooting cost — Algorithm 1 vs brute force")
        for n in sorted(result.fast_seconds):
            print(
                f"  N={n}: Alg.1 {result.fast_seconds[n] * 1e3:.3f} ms, "
                f"brute {result.brute_seconds[n] * 1e3:.3f} ms, "
                f"modeled overhead {result.modeled_fraction[n]:.2e}"
            )
        print()
    if "manycore" in todo:
        from repro.experiments.manycore import run_manycore

        many_cores = (1, 2, 4, 8, 16, 32, 64)
        print(
            format_series_table(
                "Many-core projection (Section 8 outlook, fine-grained "
                "workload)",
                "scheduler",
                many_cores,
                run_manycore(cores=many_cores),
            )
        )
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel evidence propagation (PACT 2009 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and module inventory")

    demo = sub.add_parser("demo", help="end-to-end inference demo")
    demo.add_argument("--variables", type=int, default=20)
    demo.add_argument("--threads", type=int, default=4)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--executor",
        choices=EXECUTOR_CHOICES,
        default="collaborative",
        help="which executor propagates the evidence (process = "
        "shared-memory worker processes, the only one that escapes the GIL)",
    )
    demo.add_argument(
        "--partition-threshold",
        type=int,
        default=None,
        metavar="DELTA",
        help="split tasks whose table slice exceeds DELTA entries",
    )
    demo.add_argument(
        "--resilience",
        action="store_true",
        help="wrap the executor in the degradation cascade "
        "(process -> threads -> serial) with numerical health guards",
    )
    demo.add_argument(
        "--inject-kill",
        type=int,
        default=None,
        metavar="N",
        help="fault injection: SIGKILL one worker before the Nth task "
        "dispatch (process executor only)",
    )
    demo.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task deadline; overdue tasks are retried on a fresh "
        "pool (process executor only)",
    )
    demo.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry budget per task for crashes/deadline misses "
        "(process executor only)",
    )
    demo.add_argument(
        "--delta",
        action="append",
        metavar="VAR=STATE|VAR=-",
        help="after the initial propagation, apply this evidence delta "
        "(VAR=- retracts) and repropagate incrementally; repeatable, "
        "applied in order, reports task savings and cache counters",
    )
    demo.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help="record a span trace of the propagation and write it as "
        "Chrome-trace JSON (open in Perfetto)",
    )

    serve = sub.add_parser(
        "serve-demo",
        help="concurrent inference service demo: seeded client burst, "
        "then a drain report",
    )
    serve.add_argument("--variables", type=int, default=25)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--clients", type=int, default=4)
    serve.add_argument("--requests", type=int, default=10,
                       metavar="N", help="requests per client")
    serve.add_argument("--sessions", type=int, default=2,
                       help="calibrated engine sessions in the pool")
    serve.add_argument("--threads", type=int, default=2,
                       help="workers inside the serving executor tier")
    serve.add_argument("--max-queue", type=int, default=16,
                       help="admission bound (queued flights)")
    serve.add_argument(
        "--max-batch", type=int, default=1,
        help="micro-batch width: compatible queued flights served "
        "through one batched propagation (1 disables)",
    )
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS", help="per-request deadline")
    serve.add_argument(
        "--max-staleness", type=float, default=None, metavar="SECONDS",
        help="accept cached answers this old instead of shedding",
    )
    serve.add_argument(
        "--executor",
        choices=EXECUTOR_CHOICES,
        default="collaborative",
        help="serving tier (process = breaker-guarded primary with a "
        "thread-tier fallback)",
    )
    serve.add_argument(
        "--models", type=int, default=1, metavar="N",
        help="serve N distinct models through the model registry "
        "(on-demand compile, LRU eviction, per-model report breakdown); "
        "1 keeps the single-model service",
    )
    serve.add_argument(
        "--tenants", type=int, default=1, metavar="K",
        help="spread clients over K tenants with weighted fair "
        "admission (registry mode; per-tenant report breakdown)",
    )
    serve.add_argument(
        "--budget-mb", type=float, default=None, metavar="MB",
        help="global registry memory budget in megabytes; tight budgets "
        "force LRU evictions and checkpoint rehydrations (registry mode)",
    )
    serve.add_argument(
        "--durable-root", default=None, metavar="DIR",
        help="persist compiled-model artifacts under DIR and adopt any "
        "that survive there (routes through the registry; a rerun with "
        "the same DIR starts warm instead of recompiling)",
    )

    stream = sub.add_parser(
        "stream-demo",
        help="streaming DBN filtering demo: seeded evidence ticks over "
        "concurrent streams, then a drain report",
    )
    stream.add_argument("--states", type=int, default=4,
                        help="hidden states of the demo HMM")
    stream.add_argument("--observations", type=int, default=3,
                        help="observation symbols of the demo HMM")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--streams", type=int, default=3,
                        help="concurrent filtering streams")
    stream.add_argument("--ticks", type=int, default=12,
                        metavar="N", help="evidence ticks per stream")
    stream.add_argument("--window", type=int, default=6,
                        help="unrolled slices held per stream")
    stream.add_argument("--retire", type=int, default=None,
                        help="slices rolled into the prior per roll "
                        "(default window//2)")
    stream.add_argument("--workers", type=int, default=2,
                        help="worker threads shared by all streams")
    stream.add_argument("--max-pending", type=int, default=8,
                        help="per-stream tick-queue bound (backpressure)")
    stream.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS", help="per-tick deadline")
    stream.add_argument(
        "--durable-root", default=None, metavar="DIR",
        help="journal every admitted tick to a per-stream write-ahead "
        "log under DIR; a rerun (or `repro recover`) with the same DIR "
        "replays the journals and resumes the streams",
    )

    recover = sub.add_parser(
        "recover",
        help="scan a durable root, replay its stream journals, and "
        "print the recovery report",
    )
    recover.add_argument("root", metavar="DIR",
                         help="the durable root a previous serve-demo / "
                         "stream-demo wrote")
    recover.add_argument("--workers", type=int, default=2,
                         help="worker threads for the rebuilt service")

    trace = sub.add_parser(
        "trace", help="inspect a recorded propagation trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_report = trace_sub.add_parser(
        "report",
        help="metrics plus observed-vs-simcore-predicted calibration",
    )
    trace_report.add_argument("file", help="Chrome-trace JSON from --trace")
    trace_gantt = trace_sub.add_parser(
        "gantt", help="ASCII Gantt of the per-worker timelines"
    )
    trace_gantt.add_argument("file", help="Chrome-trace JSON from --trace")
    trace_gantt.add_argument("--width", type=int, default=72)
    trace_validate = trace_sub.add_parser(
        "validate", help="check the file against the Chrome trace format"
    )
    trace_validate.add_argument("file", help="Chrome-trace JSON to check")

    query = sub.add_parser("query", help="marginal or MPE query")
    query.add_argument("--variables", type=int, default=15)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--target", type=int, default=1)
    query.add_argument(
        "--evidence",
        nargs="*",
        metavar="VAR=STATE",
        help="evidence assignments, e.g. 0=1 3=0",
    )
    query.add_argument(
        "--mpe", action="store_true", help="most probable explanation"
    )

    model = sub.add_parser("model", help="query a classic example network")
    model.add_argument(
        "name",
        choices=["asia", "sprinkler", "cancer", "student", "car-start"],
    )
    model.add_argument(
        "--evidence",
        nargs="*",
        metavar="NAME=STATE",
        help="evidence by variable name, e.g. smoke=1 xray=1",
    )
    model.add_argument(
        "--explain",
        metavar="NAME",
        help="rank the evidence by impact on this variable's posterior",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper experiment"
    )
    experiment.add_argument(
        "figure",
        choices=[
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "rerooting-cost",
            "manycore",
            "all",
        ],
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "demo": _cmd_demo,
        "serve-demo": _cmd_serve_demo,
        "stream-demo": _cmd_stream_demo,
        "recover": _cmd_recover,
        "trace": _cmd_trace,
        "query": _cmd_query,
        "model": _cmd_model,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
