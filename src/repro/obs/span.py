"""The span model of the observability subsystem.

A :class:`Span` is one timed interval on one worker's timeline — a task
execution, a chunk of a partitioned task, a combiner, a scheduling wait, a
slow lock acquisition, a dispatch round-trip — tagged with everything the
metrics layer needs to attribute the time: task id, primitive kind, phase,
clique, potential-table bytes and the FLOP estimate the scheduler balanced
on.  Spans are *produced* by :class:`~repro.obs.tracer.Tracer` buffers
(which record cheap tuples on the hot path and materialize ``Span`` objects
only at finalize time) and *consumed* by the exporter, the metrics layer
and the calibration report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# Span categories (the ``cat`` field; mirrored as Chrome-trace categories).
CAT_EXECUTE = "execute"  # primitive / chunk / combine work
CAT_SCHED = "sched"  # fetch, allocate, dispatch-wait, steal
CAT_LOCK = "lock"  # slow GL/LL lock acquisitions
CAT_IPC = "ipc"  # process-executor dispatch round-trips
CAT_FAULT = "fault"  # retries, injected faults, degradations
CAT_SERVE = "serve"  # inference-service request lifecycles
CAT_STREAM = "stream"  # streaming-session tick lifecycles / window rolls
CAT_RECOVERY = "recovery"  # journal replay / checkpoint adoption on restart

CATEGORIES = (
    CAT_EXECUTE, CAT_SCHED, CAT_LOCK, CAT_IPC, CAT_FAULT, CAT_SERVE,
    CAT_STREAM, CAT_RECOVERY,
)

# Execution-span roles (stored in ``Span.role``).
ROLE_TASK = "task"  # whole-task primitive execution
ROLE_CHUNK = "chunk"  # one chunk of a partitioned task
ROLE_COMBINE = "combine"  # the final subtask T̂_n
ROLE_INLINE = "inline"  # master-inline execution (process executor)

# Well-known virtual worker rows (negative so they never collide with a
# real worker slot; exporters map them to named timeline rows).
CONTROL_ROW = -1  # degradations, run-level annotations
IPC_ROW = -2  # dispatch round-trip spans (async track)

_FLOAT_BYTES = 8  # all potential tables are float64


@dataclass
class Span:
    """One timed interval on one worker's timeline.

    ``start_ns`` / ``end_ns`` are nanoseconds relative to the trace origin
    (the tracer's creation instant), so spans from master, threads and
    worker processes share one timeline.
    """

    name: str
    cat: str
    worker: int
    start_ns: int
    end_ns: int
    role: Optional[str] = None
    tid: Optional[int] = None  # task id
    kind: Optional[str] = None  # primitive kind value
    phase: Optional[str] = None  # collect / distribute
    clique: Optional[int] = None
    edge: Optional[Tuple[int, int]] = None
    table_bytes: Optional[int] = None
    flops: Optional[float] = None
    chunk: Optional[Tuple[int, int]] = None  # (lo, hi) slice
    pid: Optional[int] = None  # OS pid (process executor workers)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return (self.end_ns - self.start_ns) * 1e-9

    def args(self) -> Dict[str, object]:
        """Non-empty tags, as they appear in the Chrome-trace ``args``."""
        out: Dict[str, object] = {}
        for key in (
            "role",
            "tid",
            "kind",
            "phase",
            "clique",
            "edge",
            "table_bytes",
            "flops",
            "chunk",
            "pid",
        ):
            value = getattr(self, key)
            if value is not None:
                out[key] = list(value) if isinstance(value, tuple) else value
        return out


@dataclass
class TaskMeta:
    """Static description of one task, embedded in saved traces.

    Carries enough structure (sizes, kind, dependencies) to rebuild the
    :class:`~repro.tasks.task.TaskGraph` from a trace file alone, which is
    what lets ``repro trace report`` replay a saved trace through the
    :mod:`repro.simcore` cost model without the original network.
    """

    tid: int
    kind: str
    phase: str
    edge: Tuple[int, int]
    clique: int
    input_size: int
    output_size: int
    flops: float
    deps: List[int] = field(default_factory=list)

    @property
    def table_bytes(self) -> int:
        return (self.input_size + self.output_size) * _FLOAT_BYTES

    def to_dict(self) -> Dict[str, object]:
        return {
            "tid": self.tid,
            "kind": self.kind,
            "phase": self.phase,
            "edge": list(self.edge),
            "clique": self.clique,
            "input_size": self.input_size,
            "output_size": self.output_size,
            "flops": self.flops,
            "deps": list(self.deps),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TaskMeta":
        return cls(
            tid=int(data["tid"]),
            kind=str(data["kind"]),
            phase=str(data["phase"]),
            edge=tuple(data["edge"]),
            clique=int(data["clique"]),
            input_size=int(data["input_size"]),
            output_size=int(data["output_size"]),
            flops=float(data["flops"]),
            deps=[int(d) for d in data.get("deps", [])],
        )

    @classmethod
    def from_task(cls, task, deps: List[int]) -> "TaskMeta":
        return cls(
            tid=task.tid,
            kind=task.kind.value,
            phase=task.phase,
            edge=tuple(task.edge),
            clique=task.clique,
            input_size=task.input_size,
            output_size=task.output_size,
            flops=task.weight,
            deps=list(deps),
        )
