"""Calibrating the simcore cost model against a measured trace.

The simulator (:mod:`repro.simcore`) predicts makespans from a platform
profile; until now nothing checked those predictions against real runs.
:func:`calibrate` closes the loop: it rebuilds the task DAG from the
metadata embedded in a :class:`~repro.obs.trace.PropagationTrace`, fits
the profile's ``flops_per_second`` to the trace's own measured execute
throughput, replays the DAG through
:class:`~repro.simcore.policies.CollaborativePolicy` at the traced worker
count, and reports predicted vs. measured makespan, critical path, and
per-core busy time.  A saved trace file is self-contained, so
``repro trace report out.json`` works without the original network.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import TraceMetrics, compute_metrics
from repro.obs.span import TaskMeta
from repro.obs.trace import PropagationTrace
from repro.potential.primitives import PrimitiveKind
from repro.simcore.policies import (
    DEFAULT_PARTITION_THRESHOLD,
    CollaborativePolicy,
)
from repro.simcore.profiles import XEON, PlatformProfile
from repro.simcore.result import SimResult
from repro.tasks.task import TaskGraph


def rebuild_task_graph(tasks: List[TaskMeta]) -> TaskGraph:
    """Reconstruct the :class:`TaskGraph` from embedded trace metadata."""
    graph = TaskGraph()
    for meta in sorted(tasks, key=lambda t: t.tid):
        tid = graph.add_task(
            kind=PrimitiveKind(meta.kind),
            phase=meta.phase,
            edge=tuple(meta.edge),
            clique=meta.clique,
            input_size=meta.input_size,
            output_size=meta.output_size,
            deps=list(meta.deps),
        )
        if tid != meta.tid:
            raise ValueError(
                f"trace task ids are not dense: expected {tid}, "
                f"got {meta.tid}"
            )
    return graph


@dataclass
class CalibrationReport:
    """Predicted-vs-measured comparison for one traced run."""

    executor: str
    num_workers: int
    profile_name: str
    fitted_flops_per_second: float
    measured_makespan: float
    predicted_makespan: float
    measured_critical_path: float
    predicted_critical_path: float
    # Per-core busy seconds: measured rows use trace worker ids, predicted
    # rows use simulated core ids (both sorted ascending for display).
    measured_busy: Dict[int, float] = field(default_factory=dict)
    predicted_busy: List[float] = field(default_factory=list)
    metrics: Optional[TraceMetrics] = None
    sim_result: Optional[SimResult] = None

    @property
    def makespan_error(self) -> float:
        """Signed relative error: (predicted - measured) / measured."""
        if self.measured_makespan <= 0:
            return 0.0
        return (
            self.predicted_makespan - self.measured_makespan
        ) / self.measured_makespan

    @property
    def critical_path_error(self) -> float:
        if self.measured_critical_path <= 0:
            return 0.0
        return (
            self.predicted_critical_path - self.measured_critical_path
        ) / self.measured_critical_path

    def format(self) -> str:
        """The ``repro trace report`` comparison table."""

        def row(label: str, measured: float, predicted: float) -> str:
            if measured > 0:
                diff = f"{(predicted - measured) / measured:+8.1%}"
            else:
                diff = "     n/a"
            return (
                f"  {label:<16} {measured * 1e3:10.2f} ms "
                f"{predicted * 1e3:10.2f} ms {diff}"
            )

        lines = [
            f"calibration: {self.executor or 'unknown executor'} run on "
            f"{self.num_workers} worker(s) vs simcore "
            f"[{self.profile_name}]",
            f"  fitted throughput: "
            f"{self.fitted_flops_per_second / 1e6:.1f} MFLOP/s",
            f"  {'':<16} {'measured':>13} {'predicted':>13} {'diff':>8}",
            row("makespan", self.measured_makespan, self.predicted_makespan),
            row(
                "critical path",
                self.measured_critical_path,
                self.predicted_critical_path,
            ),
        ]
        mean_measured = (
            sum(self.measured_busy.values()) / len(self.measured_busy)
            if self.measured_busy
            else 0.0
        )
        mean_predicted = (
            sum(self.predicted_busy) / len(self.predicted_busy)
            if self.predicted_busy
            else 0.0
        )
        lines.append(row("mean core busy", mean_measured, mean_predicted))
        return "\n".join(lines)


def calibrate(
    trace: PropagationTrace,
    profile: Optional[PlatformProfile] = None,
    partition_threshold: Optional[int] = None,
) -> CalibrationReport:
    """Replay the traced DAG through simcore and diff against measurement.

    The base ``profile`` (default :data:`~repro.simcore.profiles.XEON`)
    supplies the overhead constants; its ``flops_per_second`` is replaced
    by the throughput the trace actually achieved, so the comparison
    isolates the *scheduling* model from raw per-core speed.
    ``partition_threshold`` defaults to the one recorded in the trace's
    metadata (falling back to the simulator's default δ).
    """
    if not trace.tasks:
        raise ValueError(
            "trace has no embedded task metadata; re-record it with a "
            "task graph (engine.propagate(trace=...) always embeds one)"
        )
    base = profile if profile is not None else XEON
    metrics = compute_metrics(trace)

    execute_seconds = metrics.total_execute_seconds
    if metrics.total_flops > 0 and execute_seconds > 0:
        fitted_fps = metrics.total_flops / execute_seconds
    else:
        fitted_fps = base.flops_per_second
    fitted = dataclasses.replace(
        base,
        name=f"{base.name} (calibrated)",
        flops_per_second=fitted_fps,
    )

    if partition_threshold is None:
        partition_threshold = trace.meta.get(
            "partition_threshold", DEFAULT_PARTITION_THRESHOLD
        )
    graph = rebuild_task_graph(trace.tasks)
    policy = CollaborativePolicy(partition_threshold=partition_threshold)
    num_cores = max(trace.num_workers, 1)
    result = policy.simulate(graph, fitted, num_cores, record_trace=True)

    # Undo the memory-pressure scale so the span is in single-stream
    # seconds, comparable with the measured dependency-chain time.
    predicted_cp = (
        result.sim_graph.critical_path()
        / fitted_fps
        * fitted.memory_scale(num_cores)
    )

    return CalibrationReport(
        executor=trace.executor,
        num_workers=trace.num_workers,
        profile_name=base.name,
        fitted_flops_per_second=fitted_fps,
        measured_makespan=trace.wall_seconds,
        predicted_makespan=result.makespan,
        measured_critical_path=metrics.critical_path_seconds,
        predicted_critical_path=predicted_cp,
        measured_busy={
            w: s for w, s in sorted(metrics.busy_seconds.items())
        },
        predicted_busy=list(result.compute_time),
        metrics=metrics,
        sim_result=result,
    )
