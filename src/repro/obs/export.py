"""Trace exchange formats: Chrome Trace Event JSON and ASCII Gantt.

The JSON exporter emits the Chrome Trace Event Format (the subset Perfetto
and ``chrome://tracing`` load): ``X`` complete events for spans, ``b``/``e``
async events for the process executor's overlapping dispatch round-trips,
``C`` counter events for queue-depth samples, and ``M`` metadata events
naming the timeline rows.  A ``repro`` top-level object carries everything
needed to reload the trace losslessly — executor name, task metadata
(including the dependency structure, so a saved file is enough to replay
the run through :mod:`repro.simcore`), lock-wait totals and counters.

:func:`validate_chrome_trace` is the checker the CI trace-smoke job runs:
every event must carry the required ``ph``/``ts``/``pid``/``tid``/``name``
keys and every ``X`` event a non-negative ``dur``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.span import CAT_IPC, Span, TaskMeta
from repro.obs.trace import PropagationTrace

# All spans share one Chrome "process"; real OS pids live in span args.
_CHROME_PID = 1

REQUIRED_EVENT_KEYS = ("ph", "ts", "pid", "tid", "name")


def _chrome_tid(worker: int) -> int:
    """Map a worker row to a Chrome thread id (virtual rows after 10000)."""
    return worker if worker >= 0 else 10_000 - worker


def chrome_trace(trace: PropagationTrace) -> dict:
    """Lower a :class:`PropagationTrace` to a Chrome-trace JSON object."""
    events: List[dict] = []
    rows: Dict[int, int] = {}

    events.append(
        {
            "ph": "M",
            "ts": 0,
            "pid": _CHROME_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"repro:{trace.executor or 'propagation'}"},
        }
    )
    for worker in trace.workers():
        tid = _chrome_tid(worker)
        rows[tid] = worker
        events.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": _CHROME_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": trace.row_label(worker)},
            }
        )

    async_id = 0
    for span in trace.spans:
        tid = _chrome_tid(span.worker)
        rows.setdefault(tid, span.worker)
        ts_us = span.start_ns / 1000.0
        if span.cat == CAT_IPC:
            # Dispatch round-trips overlap on one row; async begin/end
            # pairs render as a proper async track in Perfetto.
            async_id += 1
            base = {
                "cat": span.cat,
                "id": async_id,
                "pid": _CHROME_PID,
                "tid": tid,
                "name": span.name,
            }
            events.append({**base, "ph": "b", "ts": ts_us, "args": span.args()})
            events.append({**base, "ph": "e", "ts": span.end_ns / 1000.0})
            continue
        if span.duration_ns == 0:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "cat": span.cat,
                    "ts": ts_us,
                    "pid": _CHROME_PID,
                    "tid": tid,
                    "name": span.name,
                    "args": span.args(),
                }
            )
            continue
        events.append(
            {
                "ph": "X",
                "cat": span.cat,
                "ts": ts_us,
                "dur": span.duration_ns / 1000.0,
                "pid": _CHROME_PID,
                "tid": tid,
                "name": span.name,
                "args": span.args(),
            }
        )

    for worker, ts_ns, depth in trace.queue_samples:
        tid = _chrome_tid(worker)
        rows.setdefault(tid, worker)
        events.append(
            {
                "ph": "C",
                "ts": ts_ns / 1000.0,
                "pid": _CHROME_PID,
                "tid": tid,
                "name": f"queue depth ({trace.row_label(worker)})",
                "args": {"depth": depth},
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "repro": {
            "version": 1,
            "executor": trace.executor,
            "num_workers": trace.num_workers,
            "wall_ns": trace.wall_ns,
            "lock_wait_ns": dict(trace.lock_wait_ns),
            "counters": dict(trace.counters),
            "row_names": {str(w): n for w, n in trace.row_names.items()},
            "rows": {str(tid): worker for tid, worker in rows.items()},
            "tasks": [t.to_dict() for t in trace.tasks],
            "meta": dict(trace.meta),
        },
    }


def write_chrome_trace(trace: PropagationTrace, path) -> dict:
    """Serialize to ``path``; returns the exported object."""
    obj = chrome_trace(trace)
    with open(path, "w") as fh:
        json.dump(obj, fh)
    return obj


# --------------------------------------------------------------------- #
# Validation (the CI smoke contract)
# --------------------------------------------------------------------- #


def validate_chrome_trace(obj: Union[dict, str]) -> Dict[str, int]:
    """Check Chrome Trace Event Format invariants; raise ``ValueError``.

    Accepts a parsed object or a path.  Returns summary counts
    (``events``, ``spans``, ``counters``, ``rows``) on success.
    """
    if isinstance(obj, (str, bytes)) or hasattr(obj, "__fspath__"):
        with open(obj) as fh:
            obj = json.load(fh)
    if not isinstance(obj, dict):
        raise ValueError("trace must be a JSON object")
    events = obj.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace has no traceEvents")
    problems: List[str] = []
    spans = counters = 0
    rows = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        missing = [k for k in REQUIRED_EVENT_KEYS if k not in event]
        if missing:
            problems.append(f"event {i} missing keys {missing}")
            continue
        rows.add((event["pid"], event["tid"]))
        ph = event["ph"]
        if ph == "X":
            spans += 1
            if "dur" not in event:
                problems.append(f"X event {i} has no dur")
            elif event["dur"] < 0:
                problems.append(f"X event {i} has negative dur")
            if event["ts"] < 0:
                problems.append(f"X event {i} has negative ts")
        elif ph == "C":
            counters += 1
            if "args" not in event:
                problems.append(f"C event {i} has no args")
        elif ph in ("b", "e"):
            if "id" not in event:
                problems.append(f"async event {i} has no id")
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
    if problems:
        raise ValueError(
            "invalid Chrome trace: " + "; ".join(problems)
        )
    return {
        "events": len(events),
        "spans": spans,
        "counters": counters,
        "rows": len(rows),
    }


# --------------------------------------------------------------------- #
# Loading (for ``repro trace report`` on a saved file)
# --------------------------------------------------------------------- #


def load_chrome_trace(path) -> PropagationTrace:
    """Rebuild a :class:`PropagationTrace` from an exported JSON file."""
    with open(path) as fh:
        obj = json.load(fh)
    validate_chrome_trace(obj)
    repro = obj.get("repro", {})
    rows = {int(tid): worker for tid, worker in repro.get("rows", {}).items()}

    def worker_of(event) -> int:
        return rows.get(event["tid"], event["tid"])

    spans: List[Span] = []
    samples: List[Tuple[int, int, int]] = []
    open_async: Dict[object, dict] = {}
    for event in obj["traceEvents"]:
        ph = event["ph"]
        if ph == "M":
            continue
        if ph == "C":
            samples.append(
                (
                    worker_of(event),
                    int(event["ts"] * 1000),
                    int(event.get("args", {}).get("depth", 0)),
                )
            )
            continue
        if ph == "b":
            open_async[event.get("id")] = event
            continue
        if ph == "e":
            begin = open_async.pop(event.get("id"), None)
            if begin is None:
                continue
            spans.append(
                _span_from_event(
                    begin,
                    worker_of(begin),
                    end_ns=int(event["ts"] * 1000),
                )
            )
            continue
        if ph in ("X", "i"):
            start_ns = int(event["ts"] * 1000)
            end_ns = start_ns + int(event.get("dur", 0) * 1000)
            spans.append(_span_from_event(event, worker_of(event), end_ns))
    spans.sort(key=lambda s: (s.start_ns, s.worker))
    return PropagationTrace(
        executor=repro.get("executor", ""),
        num_workers=int(repro.get("num_workers", 1)),
        wall_ns=int(repro.get("wall_ns", 0)),
        spans=spans,
        queue_samples=samples,
        lock_wait_ns={
            k: int(v) for k, v in repro.get("lock_wait_ns", {}).items()
        },
        counters=dict(repro.get("counters", {})),
        tasks=[TaskMeta.from_dict(t) for t in repro.get("tasks", [])],
        row_names={
            int(w): n for w, n in repro.get("row_names", {}).items()
        },
        meta=dict(repro.get("meta", {})),
    )


def _span_from_event(event: dict, worker: int, end_ns: int) -> Span:
    args = event.get("args", {}) or {}

    def pair(key):
        value = args.get(key)
        return tuple(value) if value is not None else None

    return Span(
        name=event["name"],
        cat=event.get("cat", ""),
        worker=worker,
        start_ns=int(event["ts"] * 1000),
        end_ns=end_ns,
        role=args.get("role"),
        tid=args.get("tid"),
        kind=args.get("kind"),
        phase=args.get("phase"),
        clique=args.get("clique"),
        edge=pair("edge"),
        table_bytes=args.get("table_bytes"),
        flops=args.get("flops"),
        chunk=pair("chunk"),
        pid=args.get("pid"),
    )


# --------------------------------------------------------------------- #
# ASCII Gantt
# --------------------------------------------------------------------- #


def ascii_gantt(trace: PropagationTrace, width: int = 72) -> List[str]:
    """Render execute spans as one ``|####|`` row per worker timeline.

    ``#`` marks execute time, ``.`` marks scheduling/lock/ipc spans, so a
    terminal user sees load balance and scheduler share at a glance —
    the textual version of Fig. 8.
    """
    span_ns = max((s.end_ns for s in trace.spans), default=0)
    if span_ns <= 0:
        return ["(empty trace)"]
    rows: List[str] = []
    label_width = max(
        (len(trace.row_label(w)) for w in trace.workers()), default=0
    )
    for worker in trace.workers():
        cells = [" "] * width
        for span in trace.spans:
            if span.worker != worker or span.duration_ns == 0:
                continue
            lo = int(span.start_ns / span_ns * (width - 1))
            hi = max(int(span.end_ns / span_ns * (width - 1)), lo)
            mark = "#" if span.cat == "execute" else "."
            for i in range(lo, hi + 1):
                if mark == "#" or cells[i] == " ":
                    cells[i] = mark
        label = trace.row_label(worker).rjust(label_width)
        rows.append(f"{label}: |{''.join(cells)}|")
    rows.append(
        f"{' ' * label_width}  0{'-' * (width - 10)}"
        f"{span_ns * 1e-6:>7.2f}ms"
    )
    return rows


# --------------------------------------------------------------------- #
# Simulator traces (repro.simcore) in the same exchange format
# --------------------------------------------------------------------- #


def sim_trace_to_chrome(
    sim_trace, path=None, name: str = "simcore"
) -> dict:
    """Export a :class:`repro.simcore.trace.Trace` as Chrome-trace JSON.

    Simulated schedules use seconds on a virtual clock; they are exported
    1 s -> 1 s so simulated and measured traces can be compared side by
    side in Perfetto.
    """
    events: List[dict] = [
        {
            "ph": "M",
            "ts": 0,
            "pid": _CHROME_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"repro-sim:{name}"},
        }
    ]
    for core in range(sim_trace.num_cores):
        events.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": _CHROME_PID,
                "tid": core,
                "name": "thread_name",
                "args": {"name": f"core-{core}"},
            }
        )
    for event in sim_trace.events:
        events.append(
            {
                "ph": "X",
                "cat": "execute",
                "ts": event.start * 1e6,
                "dur": event.duration * 1e6,
                "pid": _CHROME_PID,
                "tid": event.core,
                "name": f"node#{event.node}",
                "args": {"tid": event.node},
            }
        )
    obj = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "repro": {"version": 1, "executor": name, "simulated": True},
    }
    if path is not None:
        with open(path, "w") as fh:
            json.dump(obj, fh)
    return obj
