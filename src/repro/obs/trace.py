"""The finished trace of one propagation: spans + task metadata.

A :class:`PropagationTrace` is what :meth:`~repro.obs.tracer.Tracer.finalize`
produces and what every downstream consumer works from: the Chrome-trace
exporter (:mod:`repro.obs.export`), the metrics layer
(:mod:`repro.obs.metrics`), the simcore calibration report
(:mod:`repro.obs.calibrate`) and the ASCII Gantt renderer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.span import CAT_EXECUTE, Span, TaskMeta


@dataclass
class PropagationTrace:
    """Everything recorded about one traced propagation run.

    ``num_workers`` is the executor's worker count (the paper's ``P``);
    worker rows above it (the process executor's master slot, replacement
    workers) and the negative virtual rows (control, ipc) carry their own
    labels in ``row_names``.
    """

    executor: str = ""
    num_workers: int = 1
    wall_ns: int = 0
    spans: List[Span] = field(default_factory=list)
    # (worker, ts_ns, depth) ready-queue depth samples.
    queue_samples: List[Tuple[int, int, int]] = field(default_factory=list)
    # Total lock-acquisition wait per category ("GL" / "LL"), nanoseconds.
    lock_wait_ns: Dict[str, int] = field(default_factory=dict)
    # Merged per-buffer counters (e.g. ipc_overhead_ns, dispatches, steals).
    counters: Dict[str, float] = field(default_factory=dict)
    tasks: List[TaskMeta] = field(default_factory=list)
    row_names: Dict[int, str] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def wall_seconds(self) -> float:
        return self.wall_ns * 1e-9

    @property
    def num_spans(self) -> int:
        return len(self.spans)

    def execute_spans(self) -> List[Span]:
        """Spans of category ``execute`` (tasks, chunks, combiners)."""
        return [s for s in self.spans if s.cat == CAT_EXECUTE]

    def spans_for_task(self, tid: int) -> List[Span]:
        return [s for s in self.spans if s.tid == tid]

    def workers(self) -> List[int]:
        """Every worker row that recorded at least one span or sample."""
        rows = {s.worker for s in self.spans}
        rows.update(w for w, _, _ in self.queue_samples)
        return sorted(rows)

    def row_label(self, worker: int) -> str:
        if worker in self.row_names:
            return self.row_names[worker]
        return f"worker-{worker}"

    def busy_ns(self) -> Dict[int, int]:
        """Per-worker nanoseconds covered by execute spans."""
        busy: Dict[int, int] = {}
        for span in self.execute_spans():
            busy[span.worker] = busy.get(span.worker, 0) + span.duration_ns
        return busy

    def coverage(self, stats) -> float:
        """Fraction of the executor-measured busy time covered by spans.

        ``stats`` is the :class:`~repro.sched.stats.ExecutionStats` of the
        same run; the acceptance bar for the tracer is >= 0.95 on every
        executor (spans and stats are derived from the same timestamps, so
        in practice this is 1.0 up to float rounding).
        """
        measured = sum(stats.compute_time)
        if measured <= 0:
            return 1.0
        covered = sum(self.busy_ns().values()) * 1e-9
        return covered / measured

    # ------------------------------------------------------------------ #
    # Derived products (lazy imports keep repro.obs cycle-free)
    # ------------------------------------------------------------------ #

    def metrics(self):
        """Derived counters: see :func:`repro.obs.metrics.compute_metrics`."""
        from repro.obs.metrics import compute_metrics

        return compute_metrics(self)

    def calibrate(self, profile=None, partition_threshold=None):
        """Replay through simcore: see :func:`repro.obs.calibrate.calibrate`."""
        from repro.obs.calibrate import calibrate

        return calibrate(
            self, profile=profile, partition_threshold=partition_threshold
        )

    def to_chrome(self) -> dict:
        """The trace as a Chrome Trace Event Format object."""
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def save(self, path) -> None:
        """Write the Chrome-trace JSON (Perfetto / chrome://tracing)."""
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(self, path)

    @classmethod
    def load(cls, path) -> "PropagationTrace":
        from repro.obs.export import load_chrome_trace

        return load_chrome_trace(path)

    def gantt(self, width: int = 72) -> List[str]:
        """ASCII Gantt rows, one per worker timeline."""
        from repro.obs.export import ascii_gantt

        return ascii_gantt(self, width=width)

    # ------------------------------------------------------------------ #

    def summary(self) -> str:
        """One-paragraph human summary (the demo CLI prints this)."""
        busy = self.busy_ns()
        rows = len(self.workers())
        lock_ms = sum(self.lock_wait_ns.values()) * 1e-6
        lines = [
            f"trace: {self.num_spans} spans on {rows} timeline rows, "
            f"wall {self.wall_seconds * 1e3:.2f} ms "
            f"({self.executor or 'unknown executor'})",
            f"  busy: "
            + ", ".join(
                f"{self.row_label(w)} {ns * 1e-6:.2f} ms"
                for w, ns in sorted(busy.items())
            ),
        ]
        if lock_ms:
            per = ", ".join(
                f"{which} {ns * 1e-6:.3f} ms"
                for which, ns in sorted(self.lock_wait_ns.items())
            )
            lines.append(f"  lock wait: {per}")
        return "\n".join(lines)
