"""Low-overhead span tracer shared by every executor.

Design constraints (the Fig. 8 measurements this enables are only credible
if the observer is cheap):

* **No locks on the hot path.**  Each worker thread/slot owns one
  :class:`SpanBuffer`; recording a span is a single ``list.append`` of a
  plain tuple (append-only, atomic under the GIL).  The only lock in the
  tracer guards buffer *creation*, which happens once per worker.
* **Tuples now, objects later.**  Hot-path records are raw tuples of
  integers; :class:`~repro.obs.span.Span` objects (with task tags looked
  up from the graph) are materialized once, in :meth:`Tracer.finalize`.
* **Timestamps are ``perf_counter_ns``.**  On every supported platform
  this clock is system-wide monotonic, so spans recorded inside forked or
  spawned worker *processes* land on the same timeline as the master's —
  the process executor captures ``(t0, t1)`` worker-side and ships the
  pair back with each result, and the master merges them into per-pid
  rows at join.
* **Disabled means absent.**  Executors take ``tracer=None`` and guard
  every call site with one ``is not None`` test; the untraced path
  executes the exact pre-observability code.

Lock-wait attribution uses :class:`TimedLock`, a drop-in ``threading.Lock``
wrapper that times ``acquire`` and charges the wait to the *calling*
worker's buffer (via a thread-local bound with :meth:`Tracer.bind`).  Waits
are accumulated as per-category counters (GL = the shared global-list /
dependency lock, LL = per-thread local-list locks); only waits longer than
``slow_lock_ns`` emit an individual span, so heavy contention is visible
in the timeline without flooding the trace.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.span import (
    CAT_EXECUTE,
    CAT_FAULT,
    CONTROL_ROW,
    ROLE_COMBINE,
    Span,
    TaskMeta,
)
from repro.obs.trace import PropagationTrace

# The shared global-task-list / dependency lock (Algorithm 2's GL) and the
# per-thread local ready-list locks (LL) — the two lock classes the paper's
# Section 8 worries about.
LOCK_GL = "GL"
LOCK_LL = "LL"

# Emit an individual lock-wait span only past this wait (100 µs); shorter
# waits are still accumulated in the per-category counters.
DEFAULT_SLOW_LOCK_NS = 100_000


class SpanBuffer:
    """Per-worker append-only record buffer; no locks on any method.

    One buffer belongs to exactly one worker (thread slot, process slot or
    a virtual row); the owning worker is the only writer, the tracer reads
    it after the run has joined.
    """

    __slots__ = (
        "worker",
        "task_records",
        "misc_records",
        "samples",
        "lock_wait_ns",
        "counters",
        "slow_lock_ns",
    )

    def __init__(self, worker: int, slow_lock_ns: int = DEFAULT_SLOW_LOCK_NS):
        self.worker = worker
        # (role, tid, start_ns, end_ns, lo, hi, pid); lo == -1 -> no chunk.
        self.task_records: List[Tuple] = []
        # (name, cat, start_ns, end_ns)
        self.misc_records: List[Tuple] = []
        # (ts_ns, depth) queue-depth samples
        self.samples: List[Tuple[int, int]] = []
        self.lock_wait_ns: Dict[str, int] = {}
        self.counters: Dict[str, float] = {}
        self.slow_lock_ns = slow_lock_ns

    # -- hot path ------------------------------------------------------- #

    def task_span(
        self,
        role: str,
        tid: int,
        start_ns: int,
        end_ns: int,
        lo: int = -1,
        hi: int = -1,
        pid: Optional[int] = None,
    ) -> None:
        """Record one execution interval of task ``tid``."""
        self.task_records.append((role, tid, start_ns, end_ns, lo, hi, pid))

    def span(self, name: str, cat: str, start_ns: int, end_ns: int) -> None:
        """Record an untagged interval (sched wait, slow lock, ipc rtt)."""
        self.misc_records.append((name, cat, start_ns, end_ns))

    def instant(self, name: str, cat: str = CAT_FAULT) -> None:
        """Record a zero-length marker at the current instant."""
        now = time.perf_counter_ns()
        self.misc_records.append((name, cat, now, now))

    def lock_wait(self, which: str, wait_ns: int) -> None:
        """Charge ``wait_ns`` of lock acquisition to category ``which``."""
        self.lock_wait_ns[which] = self.lock_wait_ns.get(which, 0) + wait_ns
        if wait_ns >= self.slow_lock_ns:
            now = time.perf_counter_ns()
            self.misc_records.append(
                (f"lock-wait:{which}", "lock", now - wait_ns, now)
            )

    def count(self, key: str, delta: float = 1.0) -> None:
        self.counters[key] = self.counters.get(key, 0.0) + delta

    def sample_queue(self, depth: int) -> None:
        self.samples.append((time.perf_counter_ns(), depth))


class Tracer:
    """Factory and registry of per-worker span buffers for one run.

    Usage (executor side)::

        buf = tracer.bind(thread)          # once, at worker start
        t0 = time.perf_counter_ns()
        ...execute...
        buf.task_span("task", tid, t0, time.perf_counter_ns())

    and at the end of the run (engine side)::

        trace = tracer.finalize(graph=graph, stats=stats, executor="...")
    """

    def __init__(self, slow_lock_ns: int = DEFAULT_SLOW_LOCK_NS):
        self.origin_ns = time.perf_counter_ns()
        self.slow_lock_ns = slow_lock_ns
        self._buffers: Dict[int, SpanBuffer] = {}
        self._create_lock = threading.Lock()
        self._local = threading.local()
        self.row_names: Dict[int, str] = {}
        self.meta: Dict[str, object] = {}

    # ------------------------------------------------------------------ #

    def buffer(self, worker: int) -> SpanBuffer:
        """The (single) buffer of worker ``worker``, created on demand."""
        buf = self._buffers.get(worker)
        if buf is None:
            with self._create_lock:
                buf = self._buffers.get(worker)
                if buf is None:
                    buf = SpanBuffer(worker, self.slow_lock_ns)
                    self._buffers[worker] = buf
        return buf

    def bind(self, worker: int) -> SpanBuffer:
        """Fetch ``worker``'s buffer and make it this thread's current one.

        ``TimedLock`` charges lock waits to the *current* buffer, so every
        worker thread must bind before touching instrumented locks.
        """
        buf = self.buffer(worker)
        self._local.buf = buf
        return buf

    def current(self) -> SpanBuffer:
        """The calling thread's bound buffer (control row if unbound)."""
        buf = getattr(self._local, "buf", None)
        if buf is None:
            buf = self.bind(CONTROL_ROW)
        return buf

    def name_row(self, worker: int, name: str) -> None:
        """Label a worker's timeline row in exported traces."""
        self.row_names[worker] = name

    # ------------------------------------------------------------------ #

    def finalize(
        self,
        graph=None,
        stats=None,
        executor: str = "",
    ) -> PropagationTrace:
        """Materialize every buffered record into a :class:`PropagationTrace`.

        ``graph`` (a :class:`~repro.tasks.task.TaskGraph`) supplies the
        task tags — kind, phase, clique, sizes, FLOPs — and the dependency
        structure embedded in the trace; ``stats`` supplies wall time and
        the worker count.  Both are optional: without them the trace still
        holds correctly-timed (but untagged) spans.
        """
        origin = self.origin_ns
        spans: List[Span] = []
        queue_samples: List[Tuple[int, int, int]] = []
        lock_wait: Dict[str, int] = {}
        counters: Dict[str, float] = {}

        tasks = list(graph.tasks) if graph is not None else []
        for worker in sorted(self._buffers):
            buf = self._buffers[worker]
            for role, tid, t0, t1, lo, hi, pid in buf.task_records:
                task = tasks[tid] if 0 <= tid < len(tasks) else None
                if task is not None:
                    kind = task.kind.value
                    name = (
                        f"{ROLE_COMBINE}#{tid}"
                        if role == ROLE_COMBINE
                        else f"{kind}#{tid}"
                    )
                    flops = task.weight
                    table_bytes = (task.input_size + task.output_size) * 8
                    if lo >= 0 and task.partition_size:
                        frac = (hi - lo) / task.partition_size
                        flops *= frac
                        table_bytes = int(table_bytes * frac)
                    spans.append(
                        Span(
                            name=name,
                            cat=CAT_EXECUTE,
                            worker=worker,
                            start_ns=t0 - origin,
                            end_ns=t1 - origin,
                            role=role,
                            tid=tid,
                            kind=kind,
                            phase=task.phase,
                            clique=task.clique,
                            edge=tuple(task.edge),
                            table_bytes=table_bytes,
                            flops=flops,
                            chunk=(lo, hi) if lo >= 0 else None,
                            pid=pid,
                        )
                    )
                else:
                    spans.append(
                        Span(
                            name=f"{role}#{tid}",
                            cat=CAT_EXECUTE,
                            worker=worker,
                            start_ns=t0 - origin,
                            end_ns=t1 - origin,
                            role=role,
                            tid=tid,
                            chunk=(lo, hi) if lo >= 0 else None,
                            pid=pid,
                        )
                    )
            for name, cat, t0, t1 in buf.misc_records:
                spans.append(
                    Span(
                        name=name,
                        cat=cat,
                        worker=worker,
                        start_ns=t0 - origin,
                        end_ns=t1 - origin,
                    )
                )
            for ts, depth in buf.samples:
                queue_samples.append((worker, ts - origin, depth))
            for which, ns in buf.lock_wait_ns.items():
                lock_wait[which] = lock_wait.get(which, 0) + ns
            for key, value in buf.counters.items():
                counters[key] = counters.get(key, 0.0) + value

        spans.sort(key=lambda s: (s.start_ns, s.worker))
        if stats is not None and stats.wall_time:
            wall_ns = int(stats.wall_time * 1e9)
        else:
            wall_ns = max((s.end_ns for s in spans), default=0)

        task_meta = [
            TaskMeta.from_task(task, graph.deps[task.tid]) for task in tasks
        ]
        num_workers = (
            stats.num_threads
            if stats is not None
            else sum(1 for w in self._buffers if w >= 0) or 1
        )
        return PropagationTrace(
            executor=executor,
            num_workers=num_workers,
            wall_ns=wall_ns,
            spans=spans,
            queue_samples=queue_samples,
            lock_wait_ns=lock_wait,
            counters=counters,
            tasks=task_meta,
            row_names=dict(self.row_names),
            meta=dict(self.meta),
        )


class TimedLock:
    """Drop-in ``threading.Lock`` wrapper that meters acquisition waits.

    Supports the context-manager protocol and explicit
    ``acquire``/``release``, so instrumented executors can swap it for a
    plain lock without touching any ``with lock:`` site.  The wait is
    charged to the calling thread's bound buffer (see :meth:`Tracer.bind`).
    """

    __slots__ = ("_lock", "_tracer", "_which")

    def __init__(self, tracer: Tracer, which: str, lock=None):
        self._lock = lock if lock is not None else threading.Lock()
        self._tracer = tracer
        self._which = which

    def acquire(self) -> bool:
        # Fast path: an uncontended lock costs one try-acquire and zero
        # clock reads — only an actual *wait* is worth metering.
        if self._lock.acquire(False):
            return True
        t0 = time.perf_counter_ns()
        self._lock.acquire()
        self._tracer.current().lock_wait(
            self._which, time.perf_counter_ns() - t0
        )
        return True

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "TimedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self._lock.release()
