"""Derived metrics over a :class:`~repro.obs.trace.PropagationTrace`.

Turns raw spans into the quantities the paper reasons about: where time
went per primitive (Fig. 8's primitive-vs-scheduling split), how deep the
ready queues ran, how much of the run was spent waiting on the GL/LL
locks (Section 8's scalability concern), and the *observed* critical path
— the longest dependency chain measured through actual span durations,
the empirical counterpart of ``TaskGraph.critical_path_work()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.span import CAT_EXECUTE, CAT_IPC, CAT_SCHED, ROLE_COMBINE
from repro.obs.trace import PropagationTrace


@dataclass
class PrimitiveMetrics:
    """Aggregate execute-time accounting for one primitive kind."""

    kind: str
    count: int = 0
    seconds: float = 0.0
    flops: float = 0.0
    table_bytes: int = 0

    @property
    def flops_per_second(self) -> float:
        return self.flops / self.seconds if self.seconds > 0 else 0.0


@dataclass
class TraceMetrics:
    """Everything :func:`compute_metrics` derives from one trace."""

    wall_seconds: float
    num_workers: int
    per_primitive: Dict[str, PrimitiveMetrics] = field(default_factory=dict)
    busy_seconds: Dict[int, float] = field(default_factory=dict)
    sched_seconds: Dict[int, float] = field(default_factory=dict)
    lock_wait_seconds: Dict[str, float] = field(default_factory=dict)
    ipc_seconds: float = 0.0
    queue_depth_mean: float = 0.0
    queue_depth_max: int = 0
    # Longest dependency chain through measured per-task durations.
    critical_path_seconds: float = 0.0
    critical_path_tasks: List[int] = field(default_factory=list)
    total_flops: float = 0.0
    total_table_bytes: int = 0
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def total_execute_seconds(self) -> float:
        return sum(m.seconds for m in self.per_primitive.values())

    @property
    def effective_flops_per_second(self) -> float:
        """Aggregate FLOP throughput over time actually spent executing."""
        seconds = self.total_execute_seconds
        return self.total_flops / seconds if seconds > 0 else 0.0

    @property
    def sched_share(self) -> float:
        """Scheduling time as a fraction of busy + scheduling time."""
        busy = sum(self.busy_seconds.values())
        sched = sum(self.sched_seconds.values())
        total = busy + sched
        return sched / total if total > 0 else 0.0

    @property
    def parallel_efficiency(self) -> float:
        """Busy time / (workers x wall): 1.0 means no idle gaps at all."""
        denom = self.wall_seconds * max(self.num_workers, 1)
        return sum(self.busy_seconds.values()) / denom if denom > 0 else 0.0

    def format(self) -> str:
        """Multi-line human rendering (``repro trace report`` prints this)."""
        lines = [
            f"wall time          {self.wall_seconds * 1e3:10.2f} ms"
            f"   workers {self.num_workers}",
            f"execute time       {self.total_execute_seconds * 1e3:10.2f} ms"
            f"   ({self.effective_flops_per_second / 1e6:.1f} MFLOP/s "
            f"effective)",
            f"parallel efficiency{self.parallel_efficiency:10.2%}",
            f"observed crit path {self.critical_path_seconds * 1e3:10.2f} ms"
            f"   ({len(self.critical_path_tasks)} tasks)",
        ]
        if self.per_primitive:
            lines.append("per primitive:")
            for kind in sorted(self.per_primitive):
                m = self.per_primitive[kind]
                lines.append(
                    f"  {kind:<12} {m.count:6d} spans "
                    f"{m.seconds * 1e3:10.2f} ms "
                    f"{m.flops / 1e6:10.2f} MFLOP "
                    f"{m.table_bytes / 1e6:8.2f} MB"
                )
        if self.lock_wait_seconds:
            per = ", ".join(
                f"{which} {s * 1e3:.3f} ms"
                for which, s in sorted(self.lock_wait_seconds.items())
            )
            lines.append(f"lock wait:         {per}")
        if self.ipc_seconds:
            lines.append(
                f"ipc round-trips    {self.ipc_seconds * 1e3:10.2f} ms total"
            )
        if self.queue_depth_max:
            lines.append(
                f"ready-queue depth  mean {self.queue_depth_mean:.1f}, "
                f"max {self.queue_depth_max}"
            )
        return "\n".join(lines)


def latency_percentiles(
    seconds: List[float], points: Tuple[int, ...] = (50, 90, 99)
) -> Dict[str, float]:
    """Nearest-rank percentiles of a latency sample, ``{"p50": ...}``.

    Nearest-rank (not interpolated) so a percentile is always a latency
    that actually occurred — the convention serving dashboards use.
    Empty input yields zeros, so reports render without special-casing.
    """
    out = {f"p{p}": 0.0 for p in points}
    if not seconds:
        return out
    ordered = sorted(seconds)
    n = len(ordered)
    for p in points:
        rank = max(1, -(-(p * n) // 100))  # ceil(p * n / 100), at least 1
        out[f"p{p}"] = ordered[min(rank, n) - 1]
    return out


def observed_critical_path(
    trace: PropagationTrace,
) -> Tuple[float, List[int]]:
    """Longest dependency chain through measured task durations.

    Uses each task's total execute-span time (chunks of one partitioned
    task sum) and the dependency edges embedded in the trace's
    :class:`~repro.obs.span.TaskMeta`.  Returns ``(seconds, [tids])`` with
    the chain in execution order; tasks that never ran contribute zero.
    """
    if not trace.tasks:
        return 0.0, []
    duration: Dict[int, float] = {}
    for span in trace.execute_spans():
        if span.tid is None:
            continue
        duration[span.tid] = duration.get(span.tid, 0.0) + span.duration

    deps = {meta.tid: meta.deps for meta in trace.tasks}
    completion: Dict[int, float] = {}
    best_pred: Dict[int, Optional[int]] = {}

    # TaskMeta is emitted in tid (topological) order, so one forward pass
    # sees every dependency before its successor.
    for meta in trace.tasks:
        tid = meta.tid
        best = 0.0
        pred: Optional[int] = None
        for d in deps.get(tid, []):
            c = completion.get(d, 0.0)
            if c > best:
                best, pred = c, d
        completion[tid] = best + duration.get(tid, 0.0)
        best_pred[tid] = pred

    if not completion:
        return 0.0, []
    tail = max(completion, key=lambda t: completion[t])
    path: List[int] = []
    cursor: Optional[int] = tail
    while cursor is not None:
        path.append(cursor)
        cursor = best_pred.get(cursor)
    path.reverse()
    return completion[tail], path


def compute_metrics(trace: PropagationTrace) -> TraceMetrics:
    """Derive a :class:`TraceMetrics` from one trace."""
    per_primitive: Dict[str, PrimitiveMetrics] = {}
    busy: Dict[int, float] = {}
    sched: Dict[int, float] = {}
    ipc_seconds = 0.0
    total_flops = 0.0
    total_bytes = 0

    for span in trace.spans:
        if span.cat == CAT_EXECUTE:
            kind = span.kind or (
                ROLE_COMBINE if span.role == ROLE_COMBINE else "unknown"
            )
            metric = per_primitive.get(kind)
            if metric is None:
                metric = per_primitive[kind] = PrimitiveMetrics(kind)
            metric.count += 1
            metric.seconds += span.duration
            if span.flops:
                metric.flops += span.flops
                total_flops += span.flops
            if span.table_bytes:
                metric.table_bytes += span.table_bytes
                total_bytes += span.table_bytes
            busy[span.worker] = busy.get(span.worker, 0.0) + span.duration
        elif span.cat == CAT_SCHED:
            sched[span.worker] = sched.get(span.worker, 0.0) + span.duration
        elif span.cat == CAT_IPC:
            ipc_seconds += span.duration

    depths = [depth for _, _, depth in trace.queue_samples]
    cp_seconds, cp_tasks = observed_critical_path(trace)

    return TraceMetrics(
        wall_seconds=trace.wall_seconds,
        num_workers=trace.num_workers,
        per_primitive=per_primitive,
        busy_seconds=busy,
        sched_seconds=sched,
        lock_wait_seconds={
            which: ns * 1e-9 for which, ns in trace.lock_wait_ns.items()
        },
        ipc_seconds=ipc_seconds,
        queue_depth_mean=sum(depths) / len(depths) if depths else 0.0,
        queue_depth_max=max(depths, default=0),
        critical_path_seconds=cp_seconds,
        critical_path_tasks=cp_tasks,
        total_flops=total_flops,
        total_table_bytes=total_bytes,
        counters=dict(trace.counters),
    )
