"""repro.obs — tracing, metrics, and profiling for executors and simulator.

The observability subsystem: a low-overhead span tracer every executor can
carry (:class:`Tracer`), the finished run record (:class:`PropagationTrace`),
a Chrome-trace/Perfetto exporter with an ASCII Gantt fallback, a metrics
layer (:func:`compute_metrics`) and the simcore calibration report
(:func:`calibrate`).  See ``docs/observability.md`` for the span taxonomy
and the overhead budget.
"""

from repro.obs.calibrate import (
    CalibrationReport,
    calibrate,
    rebuild_task_graph,
)
from repro.obs.export import (
    ascii_gantt,
    chrome_trace,
    load_chrome_trace,
    sim_trace_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    PrimitiveMetrics,
    TraceMetrics,
    compute_metrics,
    observed_critical_path,
)
from repro.obs.span import (
    CAT_EXECUTE,
    CAT_FAULT,
    CAT_IPC,
    CAT_LOCK,
    CAT_SCHED,
    CATEGORIES,
    CONTROL_ROW,
    IPC_ROW,
    ROLE_CHUNK,
    ROLE_COMBINE,
    ROLE_INLINE,
    ROLE_TASK,
    Span,
    TaskMeta,
)
from repro.obs.trace import PropagationTrace
from repro.obs.tracer import (
    DEFAULT_SLOW_LOCK_NS,
    LOCK_GL,
    LOCK_LL,
    SpanBuffer,
    TimedLock,
    Tracer,
)

__all__ = [
    "CalibrationReport",
    "calibrate",
    "rebuild_task_graph",
    "ascii_gantt",
    "chrome_trace",
    "load_chrome_trace",
    "sim_trace_to_chrome",
    "validate_chrome_trace",
    "write_chrome_trace",
    "PrimitiveMetrics",
    "TraceMetrics",
    "compute_metrics",
    "observed_critical_path",
    "CAT_EXECUTE",
    "CAT_FAULT",
    "CAT_IPC",
    "CAT_LOCK",
    "CAT_SCHED",
    "CATEGORIES",
    "CONTROL_ROW",
    "IPC_ROW",
    "ROLE_CHUNK",
    "ROLE_COMBINE",
    "ROLE_INLINE",
    "ROLE_TASK",
    "Span",
    "TaskMeta",
    "PropagationTrace",
    "DEFAULT_SLOW_LOCK_NS",
    "LOCK_GL",
    "LOCK_LL",
    "SpanBuffer",
    "TimedLock",
    "Tracer",
]
