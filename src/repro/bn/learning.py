"""Maximum-likelihood parameter estimation for a known structure.

Given a network *structure* (a :class:`BayesianNetwork` whose CPTs may be
unset) and complete data, :func:`fit_cpts` estimates every conditional
probability table by (optionally smoothed) relative frequencies.  Together
with :mod:`repro.bn.sampling` this closes the loop: sample from a network,
refit, and recover the parameters — which is exactly what the tests check.
"""

from __future__ import annotations

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.potential.table import PotentialTable


def fit_cpts(
    bn: BayesianNetwork, data: np.ndarray, alpha: float = 1.0
) -> BayesianNetwork:
    """Set every CPT of ``bn`` from complete ``data`` (in place; returned).

    ``data`` has shape ``(num_samples, num_variables)`` with integer
    states.  ``alpha`` is a Dirichlet smoothing pseudo-count per cell
    (``alpha = 0`` gives raw MLE; cells with zero total fall back to
    uniform).
    """
    data = np.asarray(data)
    if data.ndim != 2 or data.shape[1] != bn.num_variables:
        raise ValueError(
            f"data must be (num_samples, {bn.num_variables}), got {data.shape}"
        )
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    if data.size and (
        data.min() < 0
        or any(
            data[:, v].max() >= bn.cardinalities[v]
            for v in range(bn.num_variables)
        )
    ):
        raise ValueError("data contains out-of-range states")

    for v in range(bn.num_variables):
        scope = list(bn.parents(v)) + [v]
        cards = [bn.cardinalities[u] for u in scope]
        counts = np.full(cards, float(alpha))
        if data.size:
            idx = tuple(data[:, u] for u in scope)
            np.add.at(counts, idx, 1.0)
        totals = counts.sum(axis=-1, keepdims=True)
        card_v = cards[-1]
        probs = np.where(
            totals > 0, counts / np.where(totals == 0, 1, totals),
            1.0 / card_v,
        )
        bn.set_cpt(v, PotentialTable(scope, cards, probs))
    return bn


def log_likelihood(bn: BayesianNetwork, data: np.ndarray) -> float:
    """Total log-likelihood of complete ``data`` under ``bn``.

    Returns ``-inf`` if any record has zero probability.
    """
    data = np.asarray(data)
    if data.ndim != 2 or data.shape[1] != bn.num_variables:
        raise ValueError(
            f"data must be (num_samples, {bn.num_variables}), got {data.shape}"
        )
    total = 0.0
    for v in range(bn.num_variables):
        cpt = bn.cpt(v)
        idx = tuple(data[:, u] for u in cpt.variables)
        probs = cpt.values[idx]
        if np.any(probs <= 0):
            return float("-inf")
        total += float(np.log(probs).sum())
    return total
