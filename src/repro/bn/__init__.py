"""Bayesian networks and their conversion prerequisites.

Provides the directed graphical model (:class:`BayesianNetwork`), random
network generators for synthetic workloads, and the structural steps used to
turn a network into a junction tree: moralization and triangulation.
"""

from repro.bn.network import BayesianNetwork
from repro.bn.generation import random_network, chain_network, naive_bayes_network
from repro.bn.moralization import moralize
from repro.bn.triangulation import triangulate, elimination_cliques
from repro.bn.dsep import d_separated, markov_blanket, reachable
from repro.bn.sampling import (
    forward_sample,
    gibbs_sampling,
    likelihood_weighting,
)
from repro.bn.learning import fit_cpts, log_likelihood
from repro.bn.chowliu import chow_liu_tree, fit_chow_liu
from repro.bn.cpd import (
    deterministic_cpd,
    noisy_or_cpd,
    tabular_cpd,
    uniform_cpd,
)
from repro.bn.dbn import DynamicBayesianNetwork, make_hmm

__all__ = [
    "BayesianNetwork",
    "random_network",
    "chain_network",
    "naive_bayes_network",
    "moralize",
    "triangulate",
    "elimination_cliques",
    "d_separated",
    "markov_blanket",
    "reachable",
    "forward_sample",
    "likelihood_weighting",
    "gibbs_sampling",
    "fit_cpts",
    "log_likelihood",
    "chow_liu_tree",
    "fit_chow_liu",
    "uniform_cpd",
    "tabular_cpd",
    "deterministic_cpd",
    "noisy_or_cpd",
    "DynamicBayesianNetwork",
    "make_hmm",
]
