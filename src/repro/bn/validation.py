"""Whole-network validation.

:func:`check_network` verifies everything inference assumes about a
:class:`~repro.bn.network.BayesianNetwork`: acyclic structure, a CPT for
every variable with the right scope and cardinalities, and normalization
over the child axis.  Use it at module boundaries (e.g. after
deserialization or hand construction) to fail fast with a precise message.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.bn.network import BayesianNetwork


def network_problems(bn: BayesianNetwork) -> List[str]:
    """All detected problems, empty when the network is fully valid."""
    problems: List[str] = []
    try:
        bn.topological_order()
    except RuntimeError:
        problems.append("structure contains a directed cycle")
    for v in range(bn.num_variables):
        try:
            cpt = bn.cpt(v)
        except KeyError:
            problems.append(f"variable {v} has no CPT")
            continue
        expected = set(bn.parents(v)) | {v}
        if set(cpt.variables) != expected:
            problems.append(
                f"variable {v}: CPT scope {sorted(cpt.variables)} != "
                f"parents+self {sorted(expected)}"
            )
            continue
        for var in cpt.variables:
            if cpt.card_of(var) != bn.cardinalities[var]:
                problems.append(
                    f"variable {v}: CPT cardinality of {var} is "
                    f"{cpt.card_of(var)}, network says "
                    f"{bn.cardinalities[var]}"
                )
        axis = cpt.variables.index(v)
        sums = cpt.values.sum(axis=axis)
        if not np.allclose(sums, 1.0, atol=1e-6):
            problems.append(
                f"variable {v}: CPT rows sum to "
                f"[{sums.min():.6f}, {sums.max():.6f}], expected 1.0"
            )
        if np.any(cpt.values < 0):
            problems.append(f"variable {v}: CPT has negative entries")
    return problems


def check_network(bn: BayesianNetwork) -> None:
    """Raise ``ValueError`` listing every problem, or return silently."""
    problems = network_problems(bn)
    if problems:
        raise ValueError(
            "invalid network:\n  " + "\n  ".join(problems)
        )
