"""Directed graphical model: DAG structure plus conditional probability tables."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.potential.table import PotentialTable


class BayesianNetwork:
    """A Bayesian network over discrete variables ``0 .. n-1``.

    The structure is a DAG; each variable ``v`` carries a conditional
    probability table ``P(v | parents(v))`` stored as a
    :class:`~repro.potential.table.PotentialTable` whose scope is
    ``parents(v) + (v,)`` and which is normalized over ``v`` for every
    parent configuration.
    """

    def __init__(self, cardinalities: Sequence[int]):
        self.cardinalities: Tuple[int, ...] = tuple(int(c) for c in cardinalities)
        if any(c < 2 for c in self.cardinalities):
            raise ValueError("every variable needs at least 2 states")
        n = len(self.cardinalities)
        self._parents: List[List[int]] = [[] for _ in range(n)]
        self._children: List[List[int]] = [[] for _ in range(n)]
        self._cpts: Dict[int, PotentialTable] = {}

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def num_variables(self) -> int:
        return len(self.cardinalities)

    def parents(self, v: int) -> Tuple[int, ...]:
        return tuple(self._parents[v])

    def children(self, v: int) -> Tuple[int, ...]:
        return tuple(self._children[v])

    def edges(self) -> List[Tuple[int, int]]:
        """All directed edges ``(parent, child)``."""
        return [
            (p, c) for c in range(self.num_variables) for p in self._parents[c]
        ]

    def add_edge(self, parent: int, child: int) -> None:
        """Add edge ``parent -> child``; rejects duplicates and cycles."""
        self._check_var(parent)
        self._check_var(child)
        if parent == child:
            raise ValueError(f"self-loop on variable {parent}")
        if parent in self._parents[child]:
            raise ValueError(f"duplicate edge {parent} -> {child}")
        if self._reachable(child, parent):
            raise ValueError(f"edge {parent} -> {child} would create a cycle")
        self._parents[child].append(parent)
        self._children[parent].append(child)
        # Any previously-set CPT for `child` no longer matches its parent set.
        self._cpts.pop(child, None)

    def _check_var(self, v: int) -> None:
        if not 0 <= v < self.num_variables:
            raise ValueError(
                f"variable {v} out of range [0, {self.num_variables})"
            )

    def _reachable(self, src: int, dst: int) -> bool:
        """Whether ``dst`` is reachable from ``src`` along directed edges."""
        stack = [src]
        seen = set()
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._children[node])
        return False

    def topological_order(self) -> List[int]:
        """Variables ordered so every parent precedes its children."""
        indegree = [len(self._parents[v]) for v in range(self.num_variables)]
        ready = [v for v, d in enumerate(indegree) if d == 0]
        order = []
        while ready:
            v = ready.pop()
            order.append(v)
            for c in self._children[v]:
                indegree[c] -= 1
                if indegree[c] == 0:
                    ready.append(c)
        if len(order) != self.num_variables:
            raise RuntimeError("graph contains a cycle")  # pragma: no cover
        return order

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #

    def set_cpt(self, v: int, table: PotentialTable) -> None:
        """Attach ``P(v | parents(v))``.

        The table's scope must be exactly ``parents(v) ∪ {v}`` and it must be
        normalized over ``v`` for every parent configuration.
        """
        self._check_var(v)
        expected = set(self._parents[v]) | {v}
        if set(table.variables) != expected:
            raise ValueError(
                f"CPT scope {set(table.variables)} != parents+self {expected}"
            )
        for var in table.variables:
            if table.card_of(var) != self.cardinalities[var]:
                raise ValueError(
                    f"CPT cardinality of variable {var} is "
                    f"{table.card_of(var)}, network says {self.cardinalities[var]}"
                )
        axis = table.variables.index(v)
        sums = table.values.sum(axis=axis)
        if not np.allclose(sums, 1.0, atol=1e-6):
            raise ValueError(f"CPT for variable {v} is not normalized over {v}")
        self._cpts[v] = table

    def cpt(self, v: int) -> PotentialTable:
        self._check_var(v)
        if v not in self._cpts:
            raise KeyError(f"variable {v} has no CPT set")
        return self._cpts[v]

    def has_all_cpts(self) -> bool:
        return len(self._cpts) == self.num_variables

    def randomize_cpts(self, rng: np.random.Generator, alpha: float = 1.0) -> None:
        """Fill every CPT with Dirichlet(``alpha``) rows (strictly positive)."""
        for v in range(self.num_variables):
            scope = list(self.parents(v)) + [v]
            cards = [self.cardinalities[u] for u in scope]
            shape = tuple(cards)
            rows = int(np.prod(shape[:-1])) if len(shape) > 1 else 1
            probs = rng.dirichlet([alpha] * shape[-1], size=rows)
            # Dirichlet can produce exact zeros in extreme draws; nudge away.
            probs = np.clip(probs, 1e-9, None)
            probs = probs / probs.sum(axis=-1, keepdims=True)
            self._cpts[v] = PotentialTable(scope, cards, probs.reshape(shape))

    # ------------------------------------------------------------------ #
    # Semantics
    # ------------------------------------------------------------------ #

    def joint_table(self) -> PotentialTable:
        """The full joint distribution; exponential in n — testing only."""
        if not self.has_all_cpts():
            raise RuntimeError("all CPTs must be set before computing the joint")
        from repro.potential.primitives import extend

        scope = tuple(range(self.num_variables))
        cards = self.cardinalities
        joint = np.ones(cards)
        for v in range(self.num_variables):
            joint = joint * extend(self._cpts[v], scope, cards).values
        return PotentialTable(scope, cards, joint)

    def marginal_bruteforce(
        self, v: int, evidence: Mapping[int, int] = None
    ) -> np.ndarray:
        """Exact posterior ``P(v | evidence)`` by full enumeration (testing only)."""
        joint = self.joint_table()
        if evidence:
            joint = joint.reduce(evidence)
        from repro.potential.primitives import marginalize

        marg = marginalize(joint, (v,))
        return marg.normalize().values
