"""Builders for common conditional probability distributions.

Convenience constructors producing :class:`~repro.potential.table.PotentialTable`
CPTs in the ``parents + (child,)`` scope convention expected by
:meth:`BayesianNetwork.set_cpt`.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Sequence

import numpy as np

from repro.potential.table import PotentialTable


def uniform_cpd(
    child: int, child_card: int
) -> PotentialTable:
    """A parentless uniform prior."""
    return PotentialTable(
        [child], [child_card], np.full(child_card, 1.0 / child_card)
    )


def tabular_cpd(
    child: int,
    child_card: int,
    parents: Sequence[int],
    parent_cards: Sequence[int],
    rows: np.ndarray,
) -> PotentialTable:
    """CPT from an explicit row table.

    ``rows`` has shape ``parent_cards + (child_card,)`` (or flat), each row
    a distribution over the child's states.
    """
    scope = list(parents) + [child]
    cards = list(parent_cards) + [child_card]
    table = PotentialTable(scope, cards, np.asarray(rows, dtype=np.float64))
    sums = table.values.sum(axis=-1)
    if not np.allclose(sums, 1.0, atol=1e-6):
        raise ValueError("each row must sum to 1")
    return table


def deterministic_cpd(
    child: int,
    child_card: int,
    parents: Sequence[int],
    parent_cards: Sequence[int],
    fn: Callable[..., int],
) -> PotentialTable:
    """Deterministic CPT: ``child = fn(*parent_states)``."""
    scope = list(parents) + [child]
    cards = list(parent_cards) + [child_card]
    values = np.zeros(cards)
    for combo in product(*(range(c) for c in parent_cards)):
        state = int(fn(*combo))
        if not 0 <= state < child_card:
            raise ValueError(
                f"fn{combo} returned {state}, outside [0, {child_card})"
            )
        values[combo + (state,)] = 1.0
    return PotentialTable(scope, cards, values)


def noisy_or_cpd(
    child: int,
    parents: Sequence[int],
    activation: Sequence[float],
    leak: float = 0.0,
) -> PotentialTable:
    """Binary noisy-OR: each active parent independently triggers the child.

    ``activation[i]`` is the probability parent ``i`` (when in state 1)
    turns the child on; ``leak`` is the probability the child turns on
    with no active parent.  All variables are binary.
    """
    if len(activation) != len(parents):
        raise ValueError("need one activation probability per parent")
    if not 0.0 <= leak < 1.0:
        raise ValueError("leak must be in [0, 1)")
    for p in activation:
        if not 0.0 <= p <= 1.0:
            raise ValueError("activation probabilities must be in [0, 1]")
    scope = list(parents) + [child]
    cards = [2] * len(scope)
    values = np.zeros(cards)
    for combo in product((0, 1), repeat=len(parents)):
        p_off = (1.0 - leak)
        for active, prob in zip(combo, activation):
            if active:
                p_off *= 1.0 - prob
        values[combo + (0,)] = p_off
        values[combo + (1,)] = 1.0 - p_off
    return PotentialTable(scope, cards, values)
