"""Triangulation of the moral graph by greedy elimination.

Exact inference needs a chordal graph; we eliminate variables one at a time,
adding fill-in edges between the survivors of each eliminated variable's
neighbourhood.  Two standard greedy criteria are provided:

* ``min-fill`` — eliminate the variable adding the fewest fill-in edges,
* ``min-degree`` — eliminate the variable with the fewest live neighbours,
* ``min-weight`` — eliminate the variable whose induced clique has the
  smallest potential-table size (product of cardinalities).

:func:`elimination_cliques` returns the maximal elimination cliques, which
seed junction-tree construction.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Sequence, Set, Tuple

HEURISTICS = ("min-fill", "min-degree", "min-weight")


def _fill_in_count(adj: Dict[int, Set[int]], v: int) -> int:
    """Number of missing edges among the live neighbours of ``v``."""
    neighbours = list(adj[v])
    missing = 0
    for a, b in combinations(neighbours, 2):
        if b not in adj[a]:
            missing += 1
    return missing


def _clique_weight(
    adj: Dict[int, Set[int]], v: int, cardinalities: Sequence[int]
) -> float:
    weight = float(cardinalities[v])
    for u in adj[v]:
        weight *= cardinalities[u]
    return weight


def triangulate(
    adjacency: Dict[int, Set[int]],
    cardinalities: Sequence[int],
    heuristic: str = "min-fill",
) -> Tuple[Dict[int, Set[int]], List[int]]:
    """Triangulate ``adjacency`` (copied, not mutated).

    Returns the chordal graph and the elimination order used.
    """
    if heuristic not in HEURISTICS:
        raise ValueError(f"unknown heuristic {heuristic!r}; pick one of {HEURISTICS}")
    # Work graph is consumed by elimination; result graph accumulates fill-in.
    work = {v: set(ns) for v, ns in adjacency.items()}
    result = {v: set(ns) for v, ns in adjacency.items()}
    order: List[int] = []
    remaining = set(work)
    while remaining:
        if heuristic == "min-fill":
            v = min(remaining, key=lambda u: (_fill_in_count(work, u), u))
        elif heuristic == "min-degree":
            v = min(remaining, key=lambda u: (len(work[u]), u))
        else:
            v = min(
                remaining,
                key=lambda u: (_clique_weight(work, u, cardinalities), u),
            )
        neighbours = list(work[v])
        for a, b in combinations(neighbours, 2):
            if b not in work[a]:
                work[a].add(b)
                work[b].add(a)
                result[a].add(b)
                result[b].add(a)
        for u in neighbours:
            work[u].discard(v)
        del work[v]
        remaining.discard(v)
        order.append(v)
    return result, order


def elimination_cliques(
    chordal: Dict[int, Set[int]], order: Sequence[int]
) -> List[Tuple[int, ...]]:
    """Maximal cliques induced by eliminating ``order`` in the chordal graph.

    Each eliminated variable together with its not-yet-eliminated neighbours
    forms a clique; cliques subsumed by an earlier one are dropped, so the
    result is the set of maximal cliques of the chordal graph.
    """
    position = {v: i for i, v in enumerate(order)}
    candidates: List[Set[int]] = []
    for v in order:
        members = {v} | {u for u in chordal[v] if position[u] > position[v]}
        candidates.append(members)
    maximal: List[Set[int]] = []
    for members in candidates:
        if not any(members < other for other in candidates):
            if members not in maximal:
                maximal.append(members)
    return [tuple(sorted(c)) for c in maximal]
