"""Chow-Liu structure learning: the best tree-shaped network from data.

Computes pairwise empirical mutual information and takes a maximum-weight
spanning tree; directing the tree away from a root gives the maximum-
likelihood *tree-structured* Bayesian network.  Tree networks compile to
width-2 junction trees, so the learned models feed directly into the
inference stack.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.bn.learning import fit_cpts
from repro.bn.network import BayesianNetwork


def empirical_mutual_information(
    data: np.ndarray, a: int, b: int, cards: Sequence[int]
) -> float:
    """Empirical mutual information (nats) between columns ``a`` and ``b``."""
    n = len(data)
    if n == 0:
        return 0.0
    joint = np.zeros((cards[a], cards[b]))
    np.add.at(joint, (data[:, a], data[:, b]), 1.0)
    joint /= n
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    ratio = np.ones_like(joint)
    denom = pa @ pb
    ratio[mask] = joint[mask] / denom[mask]
    return float((joint[mask] * np.log(ratio[mask])).sum())


def chow_liu_tree(
    data: np.ndarray,
    cardinalities: Sequence[int],
    root: int = 0,
) -> List[Tuple[int, int]]:
    """Edges ``(parent, child)`` of the Chow-Liu tree directed from ``root``."""
    data = np.asarray(data)
    n_vars = len(cardinalities)
    if data.ndim != 2 or data.shape[1] != n_vars:
        raise ValueError(
            f"data must be (num_samples, {n_vars}), got {data.shape}"
        )
    if not 0 <= root < n_vars:
        raise ValueError(f"root {root} out of range")
    if n_vars == 1:
        return []
    # Maximum-weight spanning tree over mutual information (Prim).
    mi = np.zeros((n_vars, n_vars))
    for a in range(n_vars):
        for b in range(a + 1, n_vars):
            mi[a, b] = mi[b, a] = empirical_mutual_information(
                data, a, b, cardinalities
            )
    in_tree = [False] * n_vars
    best_gain = [-np.inf] * n_vars
    best_link = [root] * n_vars
    in_tree[root] = True
    for v in range(n_vars):
        if v != root:
            best_gain[v] = mi[root, v]
    undirected: List[Tuple[int, int]] = []
    for _ in range(n_vars - 1):
        pick = max(
            (v for v in range(n_vars) if not in_tree[v]),
            key=lambda v: best_gain[v],
        )
        in_tree[pick] = True
        undirected.append((best_link[pick], pick))
        for v in range(n_vars):
            if not in_tree[v] and mi[pick, v] > best_gain[v]:
                best_gain[v] = mi[pick, v]
                best_link[v] = pick
    # The Prim parent links are already directed away from the root.
    return undirected


def fit_chow_liu(
    data: np.ndarray,
    cardinalities: Sequence[int],
    root: int = 0,
    alpha: float = 1.0,
) -> BayesianNetwork:
    """Learn structure and parameters of a tree network from data."""
    bn = BayesianNetwork(cardinalities)
    for parent, child in chow_liu_tree(data, cardinalities, root):
        bn.add_edge(parent, child)
    return fit_cpts(bn, np.asarray(data), alpha=alpha)
