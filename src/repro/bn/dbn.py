"""Dynamic Bayesian networks by 2-TBN unrolling.

A :class:`DynamicBayesianNetwork` is specified as a prior over the slice-0
variables plus a transition model (a two-slice template): intra-slice
edges and inter-slice edges from slice ``t`` to ``t + 1``.  Unrolling to
``T`` slices yields an ordinary :class:`BayesianNetwork` over
``T * num_slice_variables`` variables, which feeds directly into the
junction-tree inference stack — filtering and smoothing are then plain
posterior queries on the unrolled network.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.potential.table import PotentialTable


class DynamicBayesianNetwork:
    """A two-slice temporal template.

    Parameters
    ----------
    slice_cardinalities:
        Cardinalities of the per-slice variables ``0 .. k-1``.
    """

    def __init__(self, slice_cardinalities: Sequence[int]):
        self.slice_cards = tuple(int(c) for c in slice_cardinalities)
        if any(c < 2 for c in self.slice_cards):
            raise ValueError("every variable needs at least 2 states")
        self.k = len(self.slice_cards)
        # Edges: intra (u, v) within a slice; inter (u, v) u@t -> v@t+1.
        self.intra_edges: List[Tuple[int, int]] = []
        self.inter_edges: List[Tuple[int, int]] = []
        self._prior_cpts: Dict[int, PotentialTable] = {}
        self._transition_cpts: Dict[int, PotentialTable] = {}

    # ------------------------------------------------------------------ #
    # Template construction
    # ------------------------------------------------------------------ #

    def _check(self, v: int) -> None:
        if not 0 <= v < self.k:
            raise ValueError(f"slice variable {v} out of range [0, {self.k})")

    def add_intra_edge(self, parent: int, child: int) -> None:
        """Edge within every slice (``parent@t -> child@t``)."""
        self._check(parent)
        self._check(child)
        if parent == child:
            raise ValueError("intra-slice self loops are not allowed")
        if (parent, child) in self.intra_edges:
            raise ValueError(
                f"duplicate intra-slice edge {parent} -> {child} "
                f"in the template"
            )
        if self._intra_reaches(child, parent):
            raise ValueError(
                f"intra-slice edge {parent} -> {child} would create a "
                f"cycle in the slice template"
            )
        self.intra_edges.append((parent, child))

    def _intra_reaches(self, src: int, dst: int) -> bool:
        """Whether ``dst`` is reachable from ``src`` over intra edges."""
        stack, seen = [src], set()
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(c for (p, c) in self.intra_edges if p == node)
        return False

    def add_inter_edge(self, parent: int, child: int) -> None:
        """Temporal edge (``parent@t -> child@t+1``); self-arcs allowed."""
        self._check(parent)
        self._check(child)
        if (parent, child) in self.inter_edges:
            raise ValueError(
                f"duplicate inter-slice edge {parent}@t -> {child}@t+1 "
                f"in the template"
            )
        self.inter_edges.append((parent, child))

    def _check_scope_cards(
        self, v: int, table: PotentialTable, kind: str, limit: int
    ) -> None:
        """Template-level CPT validation (shared by prior/transition).

        Catches, *at set time and in slice-template terms*, everything
        that used to surface deep inside :meth:`unroll` as an unrolled-id
        error: scope ids outside ``[0, limit)``, repeated scope ids, a
        scope missing ``v`` itself, and cardinalities that disagree with
        ``slice_cards``.
        """
        scope = [int(u) for u in table.variables]
        for u in scope:
            if not 0 <= u < limit:
                raise ValueError(
                    f"{kind} CPT for slice variable {v}: scope id {u} "
                    f"outside [0, {limit}) — slice ids are 0..{self.k - 1}"
                    + (
                        f", previous-slice ids {self.k}..{2 * self.k - 1}"
                        if limit == 2 * self.k
                        else ""
                    )
                )
        if len(set(scope)) != len(scope):
            raise ValueError(
                f"{kind} CPT for slice variable {v}: repeated scope ids "
                f"{scope}"
            )
        if v not in scope:
            raise ValueError(
                f"{kind} CPT for slice variable {v}: scope {scope} does "
                f"not include {v} itself"
            )
        for u, card in zip(scope, table.cardinalities):
            expected = self.slice_cards[u % self.k]
            if int(card) != expected:
                raise ValueError(
                    f"{kind} CPT for slice variable {v}: scope id {u} has "
                    f"cardinality {int(card)}, but slice_cards says "
                    f"{expected}"
                )

    def set_prior_cpt(self, v: int, table: PotentialTable) -> None:
        """CPT of ``v`` at slice 0, conditioned on its intra-slice parents.

        Scope uses slice-variable ids (intra parents + ``v``).
        """
        self._check(v)
        self._check_scope_cards(v, table, "prior", self.k)
        self._prior_cpts[v] = table

    def set_transition_cpt(self, v: int, table: PotentialTable) -> None:
        """CPT of ``v`` at slice ``t >= 1``.

        Scope convention: intra-slice parents and ``v`` use their slice ids
        ``0..k-1``; previous-slice parents use ``id + k``.
        """
        self._check(v)
        self._check_scope_cards(v, table, "transition", 2 * self.k)
        self._transition_cpts[v] = table

    def interface(self) -> List[int]:
        """The forward interface: slice variables with outgoing inter edges.

        ``P(interface_t | evidence up to t)`` d-separates the past from
        the future, so it is exactly the state a filtering window must
        carry when it retires old slices (Murphy's interface algorithm).
        """
        return sorted({u for (u, _v) in self.inter_edges})

    # ------------------------------------------------------------------ #
    # Unrolling
    # ------------------------------------------------------------------ #

    def variable_at(self, v: int, t: int) -> int:
        """Unrolled id of slice-variable ``v`` at time ``t``."""
        self._check(v)
        if t < 0:
            raise ValueError("time must be non-negative")
        return t * self.k + v

    def unroll(self, num_slices: int) -> BayesianNetwork:
        """An ordinary network over ``num_slices`` time slices."""
        if num_slices < 1:
            raise ValueError("num_slices must be >= 1")
        if len(self._prior_cpts) != self.k:
            raise ValueError("every slice variable needs a prior CPT")
        if num_slices > 1 and len(self._transition_cpts) != self.k:
            raise ValueError("every slice variable needs a transition CPT")
        cards = list(self.slice_cards) * num_slices
        bn = BayesianNetwork(cards)
        for t in range(num_slices):
            for parent, child in self.intra_edges:
                bn.add_edge(self.variable_at(parent, t), self.variable_at(child, t))
        for t in range(num_slices - 1):
            for parent, child in self.inter_edges:
                bn.add_edge(
                    self.variable_at(parent, t), self.variable_at(child, t + 1)
                )
        # Slice-0 CPTs.
        for v in range(self.k):
            cpt = self._prior_cpts[v]
            scope = [self.variable_at(u, 0) for u in cpt.variables]
            bn.set_cpt(
                self.variable_at(v, 0),
                PotentialTable(scope, cpt.cardinalities, cpt.values),
            )
        # Transition CPTs for t >= 1: ids < k live at slice t, ids >= k at
        # slice t-1.
        for t in range(1, num_slices):
            for v in range(self.k):
                cpt = self._transition_cpts[v]
                scope = []
                for u in cpt.variables:
                    if u < self.k:
                        scope.append(self.variable_at(u, t))
                    else:
                        scope.append(self.variable_at(u - self.k, t - 1))
                bn.set_cpt(
                    self.variable_at(v, t),
                    PotentialTable(scope, cpt.cardinalities, cpt.values),
                )
        return bn


def make_hmm(
    num_states: int,
    num_observations: int,
    initial: np.ndarray,
    transition: np.ndarray,
    emission: np.ndarray,
) -> DynamicBayesianNetwork:
    """A hidden Markov model as a DBN (state = var 0, observation = var 1).

    ``transition[i, j] = P(state_{t+1}=j | state_t=i)``;
    ``emission[i, o] = P(obs=o | state=i)``.
    """
    initial = np.asarray(initial, dtype=np.float64)
    transition = np.asarray(transition, dtype=np.float64)
    emission = np.asarray(emission, dtype=np.float64)
    if initial.shape != (num_states,):
        raise ValueError("initial must have one entry per state")
    if transition.shape != (num_states, num_states):
        raise ValueError("transition must be square over states")
    if emission.shape != (num_states, num_observations):
        raise ValueError("emission must be (states, observations)")
    dbn = DynamicBayesianNetwork([num_states, num_observations])
    dbn.add_intra_edge(0, 1)
    dbn.add_inter_edge(0, 0)
    dbn.set_prior_cpt(0, PotentialTable([0], [num_states], initial))
    dbn.set_prior_cpt(
        1,
        PotentialTable([0, 1], [num_states, num_observations], emission),
    )
    # Transition: state@t depends on state@(t-1) (id 0 + k = 2).
    dbn.set_transition_cpt(
        0, PotentialTable([2, 0], [num_states, num_states], transition)
    )
    dbn.set_transition_cpt(
        1,
        PotentialTable([0, 1], [num_states, num_observations], emission),
    )
    return dbn
