"""Moralization: directed network -> undirected graph.

The moral graph connects every variable to its parents and "marries" all
co-parents; it is the input to triangulation.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Set

from repro.bn.network import BayesianNetwork


def moralize(bn: BayesianNetwork) -> Dict[int, Set[int]]:
    """Return the moral graph as an adjacency mapping ``v -> set of neighbours``."""
    adj: Dict[int, Set[int]] = {v: set() for v in range(bn.num_variables)}
    for child in range(bn.num_variables):
        parents = bn.parents(child)
        for p in parents:
            adj[p].add(child)
            adj[child].add(p)
        for a, b in combinations(parents, 2):
            adj[a].add(b)
            adj[b].add(a)
    return adj
