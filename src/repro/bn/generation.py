"""Random Bayesian-network generators for synthetic workloads.

The paper generates junction trees with Bayes Net Toolbox; these generators
play the same role: controlled-size networks whose CPTs are strictly
positive so propagation never divides by zero.
"""

from __future__ import annotations

from repro.bn.network import BayesianNetwork
from repro.util.rng import SeedLike, make_rng


def random_network(
    num_variables: int,
    cardinality: int = 2,
    max_parents: int = 3,
    edge_probability: float = 0.3,
    seed: SeedLike = None,
) -> BayesianNetwork:
    """A random DAG over ``num_variables`` variables with random CPTs.

    Variables are created in topological order: each variable picks up to
    ``max_parents`` parents among its predecessors, each with probability
    ``edge_probability``, so the result is acyclic by construction.
    """
    if num_variables < 1:
        raise ValueError("num_variables must be >= 1")
    if max_parents < 0:
        raise ValueError("max_parents must be >= 0")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = make_rng(seed)
    bn = BayesianNetwork([cardinality] * num_variables)
    for child in range(1, num_variables):
        limit = min(max_parents, child)
        candidates = rng.permutation(child)[:limit]
        for parent in candidates:
            if rng.random() < edge_probability:
                bn.add_edge(int(parent), child)
    bn.randomize_cpts(rng)
    return bn


def chain_network(
    num_variables: int, cardinality: int = 2, seed: SeedLike = None
) -> BayesianNetwork:
    """A Markov chain ``0 -> 1 -> ... -> n-1`` with random CPTs."""
    if num_variables < 1:
        raise ValueError("num_variables must be >= 1")
    rng = make_rng(seed)
    bn = BayesianNetwork([cardinality] * num_variables)
    for v in range(num_variables - 1):
        bn.add_edge(v, v + 1)
    bn.randomize_cpts(rng)
    return bn


def naive_bayes_network(
    num_features: int, cardinality: int = 2, seed: SeedLike = None
) -> BayesianNetwork:
    """A naive-Bayes star: class variable 0 with ``num_features`` children."""
    if num_features < 1:
        raise ValueError("num_features must be >= 1")
    rng = make_rng(seed)
    bn = BayesianNetwork([cardinality] * (num_features + 1))
    for f in range(1, num_features + 1):
        bn.add_edge(0, f)
    bn.randomize_cpts(rng)
    return bn
