"""Sampling from Bayesian networks.

* :func:`forward_sample` — ancestral sampling of complete assignments.
* :func:`likelihood_weighting` — importance-sampled posterior estimates
  under evidence; a simple *approximate* inference baseline to contrast
  with the exact junction-tree engine (the paper's opening distinction
  between exact and approximate inference).
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.util.rng import SeedLike, make_rng


def _cpt_row(bn: BayesianNetwork, v: int, assignment: np.ndarray) -> np.ndarray:
    """Conditional distribution of ``v`` given the assigned parents."""
    cpt = bn.cpt(v)
    indexer = []
    for var in cpt.variables:
        if var == v:
            indexer.append(slice(None))
        else:
            indexer.append(int(assignment[var]))
    return cpt.values[tuple(indexer)]


def forward_sample(
    bn: BayesianNetwork, num_samples: int, seed: SeedLike = None
) -> np.ndarray:
    """Ancestral samples, shape ``(num_samples, num_variables)``."""
    if num_samples < 0:
        raise ValueError("num_samples must be non-negative")
    if not bn.has_all_cpts():
        raise ValueError("all CPTs must be set before sampling")
    rng = make_rng(seed)
    order = bn.topological_order()
    out = np.zeros((num_samples, bn.num_variables), dtype=np.int64)
    for i in range(num_samples):
        for v in order:
            probs = _cpt_row(bn, v, out[i])
            out[i, v] = rng.choice(len(probs), p=probs / probs.sum())
    return out


def likelihood_weighting(
    bn: BayesianNetwork,
    target: int,
    evidence: Optional[Mapping[int, int]] = None,
    num_samples: int = 1000,
    seed: SeedLike = None,
) -> np.ndarray:
    """Estimate ``P(target | evidence)`` by likelihood weighting.

    Evidence variables are clamped and contribute their CPT probability to
    the sample weight; all other variables are forward-sampled.  Returns a
    normalized estimate (uniform if all weights vanish).
    """
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    if not bn.has_all_cpts():
        raise ValueError("all CPTs must be set before sampling")
    evidence = dict(evidence or {})
    if target in evidence:
        point = np.zeros(bn.cardinalities[target])
        point[evidence[target]] = 1.0
        return point
    rng = make_rng(seed)
    order = bn.topological_order()
    accum = np.zeros(bn.cardinalities[target])
    assignment = np.zeros(bn.num_variables, dtype=np.int64)
    for _ in range(num_samples):
        weight = 1.0
        for v in order:
            probs = _cpt_row(bn, v, assignment)
            probs = probs / probs.sum()
            if v in evidence:
                assignment[v] = evidence[v]
                weight *= probs[evidence[v]]
            else:
                assignment[v] = rng.choice(len(probs), p=probs)
        accum[assignment[target]] += weight
    total = accum.sum()
    if total <= 0:
        return np.full(bn.cardinalities[target], 1.0 / bn.cardinalities[target])
    return accum / total


def empirical_marginal(
    samples: np.ndarray, variable: int, cardinality: int
) -> np.ndarray:
    """Relative state frequencies of ``variable`` in a sample matrix."""
    counts = np.bincount(samples[:, variable], minlength=cardinality)
    return counts / max(len(samples), 1)


def gibbs_sampling(
    bn: BayesianNetwork,
    target: int,
    evidence: Optional[Mapping[int, int]] = None,
    num_samples: int = 1000,
    burn_in: int = 100,
    seed: SeedLike = None,
) -> np.ndarray:
    """Estimate ``P(target | evidence)`` by Gibbs sampling.

    Each sweep resamples every unobserved variable from its full
    conditional, which factorizes over the variable's own CPT and its
    children's CPTs (the Markov blanket).  A second approximate-inference
    baseline next to :func:`likelihood_weighting`.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    if burn_in < 0:
        raise ValueError("burn_in must be non-negative")
    if not bn.has_all_cpts():
        raise ValueError("all CPTs must be set before sampling")
    evidence = dict(evidence or {})
    if target in evidence:
        point = np.zeros(bn.cardinalities[target])
        point[evidence[target]] = 1.0
        return point
    rng = make_rng(seed)
    free = [v for v in range(bn.num_variables) if v not in evidence]

    # Initialize with a forward sample conditioned crudely on evidence.
    assignment = forward_sample(bn, 1, rng)[0]
    for var, state in evidence.items():
        assignment[var] = state

    def conditional(v: int) -> np.ndarray:
        card = bn.cardinalities[v]
        probs = _cpt_row(bn, v, assignment).copy()
        for child in bn.children(v):
            cpt = bn.cpt(child)
            indexer = []
            for var in cpt.variables:
                if var == v:
                    indexer.append(slice(None))
                else:
                    indexer.append(int(assignment[var]))
            probs = probs * cpt.values[tuple(indexer)]
        total = probs.sum()
        if total <= 0:
            return np.full(card, 1.0 / card)
        return probs / total

    counts = np.zeros(bn.cardinalities[target])
    for sweep in range(burn_in + num_samples):
        for v in free:
            probs = conditional(v)
            assignment[v] = rng.choice(len(probs), p=probs)
        if sweep >= burn_in:
            counts[assignment[target]] += 1
    return counts / counts.sum()
