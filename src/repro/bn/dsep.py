"""d-separation queries on Bayesian networks (Bayes-ball algorithm).

``d_separated(bn, xs, ys, zs)`` decides whether every active trail between
``xs`` and ``ys`` is blocked given observations ``zs``.  d-separation is a
*sound* independence oracle: if it returns True, the joint distribution
factorized by the network satisfies ``X ⟂ Y | Z`` for every
parameterization.  Used both as a library feature and as a test oracle for
the inference engine.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Set

from repro.bn.network import BayesianNetwork


def _ancestors(bn: BayesianNetwork, seeds: Set[int]) -> Set[int]:
    out = set(seeds)
    stack = list(seeds)
    while stack:
        node = stack.pop()
        for parent in bn.parents(node):
            if parent not in out:
                out.add(parent)
                stack.append(parent)
    return out


def reachable(
    bn: BayesianNetwork, source: int, observed: Iterable[int]
) -> Set[int]:
    """Variables reachable from ``source`` via active trails given ``observed``.

    The Bayes-ball traversal over (node, direction) states: ``"up"`` means
    the trail arrived from a child (travelling toward parents), ``"down"``
    means it arrived from a parent.  The source itself is always included.
    """
    observed = set(observed)
    if source in observed:
        raise ValueError("source variable must not be observed")
    obs_ancestors = _ancestors(bn, observed)

    visited = set()
    result = {source}
    queue = deque([(source, "up")])
    while queue:
        node, direction = queue.popleft()
        if (node, direction) in visited:
            continue
        visited.add((node, direction))
        if node not in observed:
            result.add(node)
        if direction == "up":
            # Arrived from a child: an unobserved node passes to parents
            # and children alike.
            if node not in observed:
                for parent in bn.parents(node):
                    queue.append((parent, "up"))
                for child in bn.children(node):
                    queue.append((child, "down"))
        else:
            # Arrived from a parent.
            if node not in observed:
                # Chain: continue to children.
                for child in bn.children(node):
                    queue.append((child, "down"))
            if node in obs_ancestors:
                # Collider (or ancestor of one that is observed): the
                # v-structure is activated; bounce back to parents.
                for parent in bn.parents(node):
                    queue.append((parent, "up"))
    return result


def d_separated(
    bn: BayesianNetwork,
    xs: Iterable[int],
    ys: Iterable[int],
    zs: Iterable[int] = (),
) -> bool:
    """Whether ``xs`` and ``ys`` are d-separated given ``zs``."""
    xs, ys, zs = set(xs), set(ys), set(zs)
    if xs & ys:
        return False
    if (xs | ys) & zs:
        raise ValueError("query variables must not be observed")
    for x in xs:
        if reachable(bn, x, zs) & ys:
            return False
    return True


def markov_blanket(bn: BayesianNetwork, variable: int) -> Set[int]:
    """Parents, children and co-parents of ``variable``.

    Conditioning on the Markov blanket d-separates the variable from the
    rest of the network.
    """
    blanket: Set[int] = set(bn.parents(variable))
    for child in bn.children(variable):
        blanket.add(child)
        blanket.update(bn.parents(child))
    blanket.discard(variable)
    return blanket
