"""Torn-write detection primitives for the shared-memory arena.

A pool worker that executes a task (or chunk) stamps a crc32 over the
flat arena regions it wrote; the master recomputes the crc over the same
regions when the result future resolves and raises
:class:`TornWriteError` on mismatch.  The task DAG guarantees no other
writer touches those regions between the worker's stamp and the
master's verify (successors only become ready once the result is
absorbed), so a mismatch can mean only one thing: the bytes in the
arena are not the bytes the worker computed — a torn write, a stray
writer, or memory corruption.

crc32 (:func:`zlib.crc32`) is the right tool here: it is not
cryptographic, but the adversary is a SIGKILL mid-``memcpy``, not an
attacker, and it runs at memory bandwidth so stamping every dispatch
stays off the critical path.
"""

from __future__ import annotations

import zlib
from typing import Optional, Sequence

import numpy as np

from repro.sched.faults import TaskExecutionError


class TornWriteError(TaskExecutionError):
    """The arena bytes do not match the checksum the worker stamped.

    Carries full task attribution (tid, kind, phase, edge, chunk) via
    :class:`~repro.sched.faults.TaskExecutionError`, so a torn chunk in
    a 200-clique run is pinned to its exact write range.  Deliberately
    *not* retryable: once the arena disagrees with what a worker
    computed, every table downstream of the tear is suspect, so the run
    fails fast and the serving layer recycles the session from a
    checkpoint instead.
    """


def crc32_array(
    values: np.ndarray, lo: Optional[int] = None, hi: Optional[int] = None
) -> int:
    """crc32 over one array's bytes, optionally restricted to ``[lo:hi)``
    of its flat index space."""
    flat = np.ascontiguousarray(values).reshape(-1)
    if lo is not None:
        flat = flat[lo:hi]
    return zlib.crc32(np.ascontiguousarray(flat).tobytes())


def crc32_regions(
    regions: Sequence[np.ndarray],
    lo: Optional[int] = None,
    hi: Optional[int] = None,
) -> int:
    """Rolling crc32 over several flat regions (same ``[lo:hi)`` slice of
    each).

    Region order matters and callers on both sides of the process
    boundary must use the same one — :meth:`_ShmOps.written_flat
    <repro.sched.process._ShmOps.written_flat>` is the single source of
    that order.
    """
    crc = 0
    for region in regions:
        flat = np.ascontiguousarray(region).reshape(-1)
        if lo is not None:
            flat = flat[lo:hi]
        crc = zlib.crc32(np.ascontiguousarray(flat).tobytes(), crc)
    return crc
