"""State integrity and crash recovery for calibrated propagation state.

The shared-address-space design of Algorithm 2 makes a killed worker
dangerous in a way the snapshot rollback of the resilient executors
cannot see: a worker killed *mid-chunk-write* leaves a torn table whose
entries are perfectly finite — the numerical health guard
(:func:`~repro.sched.faults.scan_tables`) passes, and the wrong
posterior would be served silently.  This package closes that hole and
its recovery half:

* :mod:`repro.integrity.checksum` — crc32 stamps computed by workers
  over exactly the arena regions a task writes, re-verified by the
  master when the result arrives.  A mismatch raises
  :class:`TornWriteError` attributing the corruption to a specific
  ``(tid, chunk)``.
* :mod:`repro.integrity.checkpoint` — persistence for a calibrated
  :class:`~repro.tasks.state.PropagationState` (npz + manifest with
  tree/evidence signatures and a whole-state checksum), so a long-lived
  session warm-restarts from disk (or from an in-memory baseline held
  by :class:`~repro.serve.service.EngineSessionPool`) instead of paying
  a full repropagation.  Mismatched trees or tampered files are refused
  with typed errors, never loaded quietly.
"""

from repro.integrity.checksum import (
    TornWriteError,
    crc32_array,
    crc32_regions,
)
from repro.integrity.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointCorrupt,
    CheckpointError,
    CheckpointMismatch,
    evidence_signature,
    load_state,
    read_manifest,
    save_state,
    tree_signature,
)

__all__ = [
    "TornWriteError",
    "crc32_array",
    "crc32_regions",
    "CHECKPOINT_FORMAT",
    "CheckpointError",
    "CheckpointMismatch",
    "CheckpointCorrupt",
    "evidence_signature",
    "tree_signature",
    "save_state",
    "load_state",
    "read_manifest",
]
