"""Checkpoint/restore for a calibrated :class:`PropagationState`.

Format: one ``.npz`` archive with exactly two entries — a
``__manifest__`` JSON document and a single ``__tables__`` float64
vector packing every working table back to back in canonical key
order.  One packed vector instead of one npz entry per table matters:
a serving-scale tree holds thousands of small tables, and the per-entry
zip + npy-header overhead of reading them individually costs more than
the whole restore is allowed to (warm restart must beat recalibration
by a wide margin).  The manifest records:

* the checkpoint format version,
* :func:`tree_signature` of the junction tree the state was calibrated
  on (clique scopes, topology *and* prior potentials — a checkpoint is
  only valid against the exact tree it came from),
* the table index: each packed table's key — clique potentials
  (``pot:<i>``), separators (``sep:<p>:<c>``) and pipeline
  intermediates (``inter:<phase>:<p>:<c>:<stage>``, which includes the
  stored child messages the incremental planner needs) — with its
  entry count, in pack order,
* the hard evidence and soft-evidence weight vectors, with their
  canonical :func:`evidence_signature`,
* a whole-state crc32 over the key index and the packed bytes.

``float64`` round-trips through npz bit-exactly, so a state restored
by :func:`load_state` answers queries *bit-identically* to the state
that was saved.  Loading validates everything it can and refuses with a
typed error instead of returning a silently-wrong state:
:class:`CheckpointMismatch` for a foreign tree or inconsistent evidence
record, :class:`CheckpointCorrupt` for bytes that fail the whole-state
checksum or a structurally broken archive.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from typing import Dict, List, Mapping, Optional, Tuple
from weakref import WeakKeyDictionary

import numpy as np

CHECKPOINT_FORMAT = 1

_MANIFEST_KEY = "__manifest__"
_TABLES_KEY = "__tables__"

# Restore plans (decoded table keys + resolved scopes) memoized per live
# junction tree.  Warm restart is repeated by design — the session pool
# recycles every poisoned engine from the same baseline against the same
# tree — so the name-decoding and scope-resolution work is paid once.
# Entries are (tree_signature, joined_names, plan); both are re-checked
# before reuse, so a mutated tree or a different archive never hits a
# stale plan.
_RESTORE_PLANS: "WeakKeyDictionary" = WeakKeyDictionary()


class CheckpointError(RuntimeError):
    """Base class for checkpoint save/load refusals."""


class CheckpointMismatch(CheckpointError):
    """The checkpoint belongs to a different tree or evidence record."""


class CheckpointCorrupt(CheckpointError):
    """The checkpoint's bytes fail validation (truncated/tampered/torn)."""


def tree_signature(jt) -> str:
    """Canonical fingerprint of a junction tree *including* its priors.

    Covers clique scopes and cardinalities, the parent vector (hence the
    root and every separator), and the bytes of each clique's prior
    potential — two trees agree on this signature exactly when a
    propagation state calibrated on one is meaningful on the other.
    """
    h = hashlib.sha256()
    h.update(f"cliques:{jt.num_cliques};root:{jt.root}".encode())
    for clique in jt.cliques:
        h.update(
            f"|{clique.index}:{clique.variables}:{clique.cardinalities}".encode()
        )
    h.update(f"|parent:{tuple(jt.parent)}".encode())
    for i in range(jt.num_cliques):
        values = np.ascontiguousarray(jt.potential(i).values, dtype=np.float64)
        h.update(f"|pot:{i}:".encode())
        h.update(values.tobytes())
    return h.hexdigest()


def evidence_signature(
    evidence: Mapping[int, int], soft_evidence: Mapping[int, np.ndarray]
) -> str:
    """Canonical fingerprint of an evidence record (hard + soft).

    Mirrors :meth:`repro.inference.evidence.Evidence.signature`'s
    canonical ordering, rendered as a string so it survives a JSON
    manifest round-trip unchanged.
    """
    hard = tuple(sorted((int(v), int(s)) for v, s in evidence.items()))
    soft = tuple(
        (int(v), tuple(float(w) for w in np.asarray(weights).reshape(-1)))
        for v, weights in sorted(
            soft_evidence.items(), key=lambda item: int(item[0])
        )
    )
    return repr((hard, soft))


# --------------------------------------------------------------------- #
# Key encoding (npz archive names <-> PropagationState table keys)
# --------------------------------------------------------------------- #


def _encode_key(key: tuple) -> str:
    if key[0] == "pot":
        return f"pot:{key[1]}"
    if key[0] == "sep":
        parent, child = key[1]
        return f"sep:{parent}:{child}"
    phase, (parent, child), stage = key[1], key[2], key[3]
    return f"inter:{phase}:{parent}:{child}:{stage}"


def _decode_key(name: str) -> tuple:
    parts = name.split(":")
    if parts[0] == "pot" and len(parts) == 2:
        return ("pot", int(parts[1]))
    if parts[0] == "sep" and len(parts) == 3:
        return ("sep", (int(parts[1]), int(parts[2])))
    if parts[0] == "inter" and len(parts) == 5:
        return ("inter", parts[1], (int(parts[2]), int(parts[3])), parts[4])
    raise CheckpointCorrupt(f"unrecognized checkpoint table key {name!r}")


def _state_checksum(names: List[str], packed: np.ndarray) -> int:
    """crc32 over the table-key index and the packed table bytes.

    Two crc updates total, not two per table: the key list (pack order
    is part of what the checksum protects — swapping two same-sized
    tables must not validate) followed by the whole packed vector.
    """
    crc = zlib.crc32("\x00".join(names).encode())
    flat = np.ascontiguousarray(packed, dtype=np.float64)
    return zlib.crc32(flat.tobytes(), crc)


# --------------------------------------------------------------------- #
# Save / load
# --------------------------------------------------------------------- #


def save_state(state, path) -> Dict[str, object]:
    """Write ``state`` (a calibrated :class:`PropagationState`) to ``path``.

    ``path`` may be a filesystem path or a binary file-like object (the
    session pool checkpoints into a ``BytesIO`` baseline).  Returns the
    manifest that was embedded.  Batched states are refused — a
    checkpoint captures one session's calibration, not a transient
    micro-batch.

    Filesystem writes are **crash-atomic**: the archive is written to a
    temp file, fsync'd, then ``os.replace``'d over the target, so a
    process killed mid-save leaves either the previous checkpoint or
    the new one — never a torn archive at the target path.
    """
    if getattr(state, "batch", None) is not None:
        raise CheckpointError(
            "checkpointing batched states is not supported; checkpoint the "
            "single-case session state instead"
        )
    arrays: Dict[str, np.ndarray] = {}
    for i, table in state.potentials.items():
        arrays[_encode_key(("pot", i))] = np.asarray(
            table.values, dtype=np.float64
        )
    for edge, table in state.separators.items():
        arrays[_encode_key(("sep", edge))] = np.asarray(
            table.values, dtype=np.float64
        )
    for (phase, edge, stage), table in state._inter.items():
        arrays[_encode_key(("inter", phase, edge, stage))] = np.asarray(
            table.values, dtype=np.float64
        )
    names = sorted(arrays)
    if names:
        packed = np.concatenate(
            [np.ascontiguousarray(arrays[n]).reshape(-1) for n in names]
        )
    else:
        packed = np.empty(0, dtype=np.float64)
    manifest = {
        "format": CHECKPOINT_FORMAT,
        "tree_signature": tree_signature(state.jt),
        "evidence": {str(v): int(s) for v, s in state.evidence.items()},
        "soft_evidence": {
            str(v): [float(w) for w in np.asarray(weights).reshape(-1)]
            for v, weights in state.soft_evidence.items()
        },
        "evidence_signature": evidence_signature(
            state.evidence, state.soft_evidence
        ),
        "state_checksum": _state_checksum(names, packed),
        # NUL-joined keys + a flat size list instead of a list of pairs:
        # the manifest is parsed on every warm restart, and json.loads
        # of 761 two-element lists costs more than the rest of the parse.
        "table_names": "\x00".join(names),
        "table_sizes": [int(arrays[n].size) for n in names],
        "tables": len(names),
    }
    entries = {
        _MANIFEST_KEY: np.array(json.dumps(manifest)),
        _TABLES_KEY: packed,
    }
    if hasattr(path, "write"):
        np.savez(path, **entries)
        return manifest
    # Replicate np.savez's suffix behavior before building the temp
    # name, so the atomic replace lands on the same final path.
    target = str(path)
    if not target.endswith(".npz"):
        target += ".npz"
    tmp = f"{target}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **entries)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    dir_fd = os.open(os.path.dirname(target) or ".", os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return manifest


def read_manifest(path) -> Dict[str, object]:
    """The embedded manifest of a checkpoint, without loading its tables."""
    with np.load(path, allow_pickle=False) as data:
        if _MANIFEST_KEY not in data:
            raise CheckpointCorrupt("checkpoint has no manifest")
        return json.loads(str(data[_MANIFEST_KEY][()]))


def load_state(
    jt,
    path,
    expect_evidence_signature: Optional[str] = None,
):
    """Load a checkpoint against ``jt``; returns the restored state.

    Validation, cheapest first: format version, :func:`tree_signature`
    match (:class:`CheckpointMismatch` on a foreign tree), whole-state
    checksum over the table bytes (:class:`CheckpointCorrupt`), and the
    manifest's own evidence record against its recorded signature.  Pass
    ``expect_evidence_signature`` to additionally pin the checkpoint to
    a specific evidence set (the engine does not by default — restoring
    *adopts* the checkpoint's evidence).
    """
    from repro.tasks.state import PropagationState

    try:
        with np.load(path, allow_pickle=False) as data:
            if _MANIFEST_KEY not in data:
                raise CheckpointCorrupt("checkpoint has no manifest")
            manifest = json.loads(str(data[_MANIFEST_KEY][()]))
            if _TABLES_KEY not in data:
                raise CheckpointCorrupt(
                    "checkpoint has no packed table vector"
                )
            packed = np.asarray(data[_TABLES_KEY], dtype=np.float64)
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointCorrupt(
            f"unreadable checkpoint: {type(exc).__name__}: {exc}"
        ) from exc

    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointMismatch(
            f"checkpoint format {manifest.get('format')!r} != "
            f"{CHECKPOINT_FORMAT} (this build)"
        )
    expected_tree = manifest.get("tree_signature")
    actual_tree = tree_signature(jt)
    if expected_tree != actual_tree:
        raise CheckpointMismatch(
            "checkpoint was calibrated on a different junction tree "
            f"(checkpoint {str(expected_tree)[:12]}…, "
            f"this tree {actual_tree[:12]}…)"
        )
    joined = manifest.get("table_names", "")
    names = joined.split("\x00") if joined else []
    sizes = [int(s) for s in manifest.get("table_sizes", [])]
    if len(names) != len(sizes):
        raise CheckpointCorrupt(
            f"manifest lists {len(names)} table keys but {len(sizes)} sizes"
        )
    if sum(sizes) != packed.size:
        raise CheckpointCorrupt(
            f"packed table vector has {packed.size} entries, the manifest "
            f"index implies {sum(sizes)}"
        )
    recorded = manifest.get("state_checksum")
    actual = _state_checksum(names, packed)
    if recorded != actual:
        raise CheckpointCorrupt(
            f"whole-state checksum mismatch (recorded {recorded}, "
            f"recomputed {actual}); refusing to load a torn checkpoint"
        )
    evidence = {int(v): int(s) for v, s in manifest.get("evidence", {}).items()}
    soft_evidence = {
        int(v): np.asarray(weights, dtype=np.float64)
        for v, weights in manifest.get("soft_evidence", {}).items()
    }
    recorded_sig = manifest.get("evidence_signature")
    if recorded_sig != evidence_signature(evidence, soft_evidence):
        raise CheckpointMismatch(
            "manifest evidence record does not match its recorded signature"
        )
    if (
        expect_evidence_signature is not None
        and recorded_sig != expect_evidence_signature
    ):
        raise CheckpointMismatch(
            "checkpoint evidence signature does not match the expected one"
        )

    from repro.potential.table import PotentialTable

    cached = _RESTORE_PLANS.get(jt)
    if cached is not None and cached[0] == actual_tree and cached[1] == joined:
        plan = cached[2]
    else:
        plan = _build_plan(jt, names)
        try:
            _RESTORE_PLANS[jt] = (actual_tree, joined, plan)
        except TypeError:  # non-weakref-able tree stand-ins stay uncached
            pass

    state = PropagationState.__new__(PropagationState)
    state.jt = jt
    state.evidence = evidence
    state.soft_evidence = soft_evidence
    state.batch = None
    state.case_evidence = None
    state.potentials = {}
    state.separators = {}
    state._inter = {}
    # The restored tables are disjoint views into ``packed`` (which this
    # state owns outright), so no per-table copy is needed — the point
    # of the packed format is that warm restart does O(tables) cheap
    # slicing, not O(tables) archive reads.
    containers = (state.potentials, state.separators, state._inter)
    offset = 0
    for (which, dkey, scope, cards, expected), name, size in zip(
        plan, names, sizes
    ):
        values = packed[offset:offset + size]
        offset += size
        containers[which][dkey] = _table(
            PotentialTable, scope, cards, expected, values, name
        )
    return state


def _build_plan(jt, names: List[str]) -> List[tuple]:
    """Decode checkpoint table keys and resolve their scopes on ``jt``.

    Returns one ``(container, dict_key, scope, cards, expected)`` entry
    per name, where ``container`` indexes (potentials, separators,
    intermediates).  Scope lookups are cached per clique and per edge —
    thousands of tables share a few hundred scopes — and the whole plan
    is memoized per tree so repeated warm restarts skip this entirely.
    """
    from repro.tasks.task import COLLECT

    clique_scopes = [
        (c.variables, c.cardinalities, c.table_size) for c in jt.cliques
    ]
    sep_scopes: Dict[Tuple[int, int], tuple] = {}

    def _sep_scope(parent: int, child: int) -> tuple:
        cached = sep_scopes.get((parent, child))
        if cached is None:
            sep = jt.separator(child, parent)
            cards = jt.separator_cards(child, parent)
            expected = 1
            for c in cards:
                expected *= c
            cached = (sep, cards, expected)
            sep_scopes[(parent, child)] = cached
        return cached

    plan: List[tuple] = []
    seen_pots = set()
    for name in names:
        key = _decode_key(name)
        if key[0] == "pot":
            i = key[1]
            if not 0 <= i < jt.num_cliques:
                raise CheckpointMismatch(
                    f"checkpoint clique {i} does not exist in this tree"
                )
            seen_pots.add(i)
            scope, cards, expected = clique_scopes[i]
            plan.append((0, i, scope, cards, expected))
        elif key[0] == "sep":
            parent, child = key[1]
            scope, cards, expected = _sep_scope(parent, child)
            plan.append((1, (parent, child), scope, cards, expected))
        else:
            _, phase, (parent, child), stage = key
            if stage == "extended":
                target = parent if phase == COLLECT else child
                scope, cards, expected = clique_scopes[target]
            else:  # sep_new / ratio live on the separator scope
                scope, cards, expected = _sep_scope(parent, child)
            plan.append(
                (2, (phase, (parent, child), stage), scope, cards, expected)
            )
    missing = [i for i in range(jt.num_cliques) if i not in seen_pots]
    if missing:
        raise CheckpointCorrupt(
            f"checkpoint is missing clique potentials {missing[:5]}"
        )
    return plan


def _table(cls, variables, cardinalities, expected, values, name):
    """Rebuild one table without re-running scope validation.

    The scope metadata comes from the *live* junction tree (not the
    archive), so only the entry count needs checking here; bypassing
    ``PotentialTable.__init__`` keeps warm restart's per-table cost to a
    reshape and four slot assignments.
    """
    if values.size != expected:
        raise CheckpointCorrupt(
            f"table {name!r} has {values.size} entries, scope implies "
            f"{expected}"
        )
    table = cls.__new__(cls)
    table.variables = variables
    table.cardinalities = cardinalities
    table.values = values.reshape(cardinalities or ())
    table.batch = None
    return table
