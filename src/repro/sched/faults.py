"""Deterministic fault injection and failure attribution for executors.

Production propagation runs die in three characteristic ways: a worker
process is killed (OOM killer, preemption), a task hangs (page-cache
stall, runaway kernel), or a potential table silently turns to NaN/Inf
garbage.  Recovery code for those paths is untestable unless the faults
themselves can be injected on demand and deterministically, so this
module provides:

* :class:`FaultPlan` — a declarative schedule of faults (kill a worker
  before dispatch #N, delay task T by S seconds, corrupt task T's
  output) consumed by :class:`~repro.sched.process.ProcessSharedMemoryExecutor`
  and by the simulator policies (:mod:`repro.simcore.policies`).  Every
  fault fires exactly once, so a retried task runs clean and recovery
  can be asserted against the serial oracle.
* :class:`TaskExecutionError` — the worker-side exception wrapper that
  pins a failure to its task id, primitive kind, phase, tree edge and
  (for partitioned work) chunk range, so a crash deep in a 200-clique
  run is attributable from the master's traceback alone.
* :func:`scan_tables` / :class:`HealthReport` — the numerical health
  guard run after propagation: NaN / Inf / total-underflow detection
  over the clique tables, feeding the log-space fallback in
  :class:`~repro.sched.resilient.ResilientExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

CORRUPTION_MODES = ("nan", "inf", "garbage")


class TaskExecutionError(RuntimeError):
    """A task failed inside a worker; carries full task attribution.

    Raised by the worker entry points so the master (and the user's
    traceback) sees *which* task failed — id, primitive kind, phase,
    tree edge, and chunk range for partitioned work — instead of only
    the failing primitive's own message.

    Picklable across the process boundary: ``concurrent.futures``
    round-trips worker exceptions through pickle, so the constructor
    signature is reproduced exactly by :meth:`__reduce__`.
    """

    def __init__(
        self,
        message: str,
        tid: Optional[int] = None,
        kind: Optional[str] = None,
        phase: Optional[str] = None,
        edge: Optional[Tuple[int, int]] = None,
        chunk: Optional[Tuple[int, int]] = None,
    ):
        super().__init__(message)
        self.tid = tid
        self.kind = kind
        self.phase = phase
        self.edge = edge
        self.chunk = chunk

    def __reduce__(self):
        return (
            self.__class__,
            (self.args[0], self.tid, self.kind, self.phase, self.edge,
             self.chunk),
        )

    @classmethod
    def wrap(cls, exc: BaseException, spec, chunk=None) -> "TaskExecutionError":
        """Build from a raw exception and a worker-side task spec."""
        kind = getattr(spec.kind, "value", str(spec.kind))
        where = f"task {spec.tid} ({kind}, {spec.phase}, edge {spec.edge}"
        if chunk is not None:
            where += f", chunk [{chunk[0]}, {chunk[1]})"
        where += ")"
        return cls(
            f"{where} failed: {type(exc).__name__}: {exc}",
            tid=spec.tid,
            kind=kind,
            phase=spec.phase,
            edge=tuple(spec.edge),
            chunk=tuple(chunk) if chunk is not None else None,
        )


@dataclass
class FaultRecord:
    """One fault the executor actually observed/injected (for stats)."""

    kind: str  # "kill" | "delay" | "corrupt" | "deadline" | "pool-broken"
    tid: Optional[int] = None
    detail: str = ""


@dataclass
class FaultPlan:
    """A deterministic schedule of injectable faults.

    All faults are *one-shot*: once taken they never fire again, so a
    recovered/retried task executes cleanly and the run can be asserted
    to converge.  The plan object itself tracks consumption, making it
    single-use — build a fresh plan per run.

    Parameters
    ----------
    kill_before_dispatch:
        ``{dispatch_index: worker_offset}`` — before the Nth pool
        dispatch (0-based, counted across tasks, chunks and combines),
        SIGKILL the pool worker at ``worker_offset`` (modulo the live
        worker count).  Exercises the ``BrokenProcessPool`` restart path.
    delay_task:
        ``{tid: seconds}`` — the worker sleeps before executing the
        task, on its first dispatch only.  Combined with a per-task
        deadline this exercises the timeout/redispatch path.
    corrupt_task:
        ``{tid: mode}`` with mode in :data:`CORRUPTION_MODES` — after
        the task's first execution its output table is overwritten with
        NaN / Inf / garbage, exercising the numerical health guard.
    fail_task:
        ``{tid: times}`` — the worker raises an injected exception on
        the task's first ``times`` dispatches (then runs clean),
        exercising the bounded retry-with-backoff path without killing
        any process.
    sim_kill_core:
        ``{task_index: core}`` — simulator-only: core dies before it
        would start its Nth task (see :mod:`repro.simcore.policies`).
    sim_delay_task:
        ``{node_index: seconds}`` — simulator-only per-node delay.
    """

    kill_before_dispatch: Dict[int, int] = field(default_factory=dict)
    delay_task: Dict[int, float] = field(default_factory=dict)
    corrupt_task: Dict[int, str] = field(default_factory=dict)
    fail_task: Dict[int, int] = field(default_factory=dict)
    sim_kill_core: Dict[int, int] = field(default_factory=dict)
    sim_delay_task: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self):
        for tid, mode in self.corrupt_task.items():
            if mode not in CORRUPTION_MODES:
                raise ValueError(
                    f"corruption mode for task {tid} must be one of "
                    f"{CORRUPTION_MODES}, got {mode!r}"
                )
        for tid, seconds in self.delay_task.items():
            if seconds < 0:
                raise ValueError(f"delay for task {tid} must be >= 0")
        for tid, times in self.fail_task.items():
            if times < 1:
                raise ValueError(f"fail count for task {tid} must be >= 1")
        self._taken_kills: set = set()
        self._taken_delays: set = set()
        self._taken_corruptions: set = set()
        self._taken_failures: Dict[int, int] = {}
        self._taken_sim_kills: set = set()
        self._taken_sim_delays: set = set()

    # ------------------------------------------------------------------ #
    # One-shot consumption (master-side; workers never see the plan)
    # ------------------------------------------------------------------ #

    def take_kill(self, dispatch_index: int) -> Optional[int]:
        """Worker offset to SIGKILL before this dispatch, or ``None``."""
        if (
            dispatch_index in self.kill_before_dispatch
            and dispatch_index not in self._taken_kills
        ):
            self._taken_kills.add(dispatch_index)
            return self.kill_before_dispatch[dispatch_index]
        return None

    def take_delay(self, tid: int) -> float:
        """Seconds the worker should sleep before running ``tid`` (0 = none)."""
        if tid in self.delay_task and tid not in self._taken_delays:
            self._taken_delays.add(tid)
            return self.delay_task[tid]
        return 0.0

    def take_corruption(self, tid: int) -> Optional[str]:
        """Corruption mode to apply after running ``tid``, or ``None``."""
        if tid in self.corrupt_task and tid not in self._taken_corruptions:
            self._taken_corruptions.add(tid)
            return self.corrupt_task[tid]
        return None

    def take_failure(self, tid: int) -> bool:
        """True if the next dispatch of ``tid`` should raise an injected error."""
        budget = self.fail_task.get(tid, 0)
        used = self._taken_failures.get(tid, 0)
        if used < budget:
            self._taken_failures[tid] = used + 1
            return True
        return False

    def take_sim_kill(self, task_index: int) -> Optional[int]:
        if (
            task_index in self.sim_kill_core
            and task_index not in self._taken_sim_kills
        ):
            self._taken_sim_kills.add(task_index)
            return self.sim_kill_core[task_index]
        return None

    def take_sim_delay(self, node_index: int) -> float:
        if (
            node_index in self.sim_delay_task
            and node_index not in self._taken_sim_delays
        ):
            self._taken_sim_delays.add(node_index)
            return self.sim_delay_task[node_index]
        return 0.0

    @property
    def empty(self) -> bool:
        return not (
            self.kill_before_dispatch
            or self.delay_task
            or self.corrupt_task
            or self.fail_task
            or self.sim_kill_core
            or self.sim_delay_task
        )


def corrupt_array(flat: np.ndarray, mode: str) -> None:
    """Overwrite ``flat`` in place per ``mode`` (worker-side injection)."""
    if mode == "nan":
        flat[...] = np.nan
    elif mode == "inf":
        flat[...] = np.inf
    elif mode == "garbage":
        # Deterministic garbage: sign-alternating huge values.
        flat[...] = np.where(
            np.arange(flat.size).reshape(flat.shape) % 2 == 0, -1e300, 1e300
        )
    else:  # pragma: no cover - validated at plan construction
        raise ValueError(f"unknown corruption mode {mode!r}")


# --------------------------------------------------------------------- #
# Numerical health guard
# --------------------------------------------------------------------- #


@dataclass
class HealthReport:
    """Outcome of a NaN/Inf/underflow scan over a set of tables."""

    nan_tables: List[object] = field(default_factory=list)
    inf_tables: List[object] = field(default_factory=list)
    underflowed_tables: List[object] = field(default_factory=list)
    tables_scanned: int = 0

    @property
    def healthy(self) -> bool:
        return not (self.nan_tables or self.inf_tables)

    @property
    def underflowed(self) -> bool:
        return bool(self.underflowed_tables)

    def summary(self) -> str:
        if self.healthy and not self.underflowed:
            return f"healthy ({self.tables_scanned} tables)"
        bits = []
        if self.nan_tables:
            bits.append(f"NaN in {self.nan_tables}")
        if self.inf_tables:
            bits.append(f"Inf in {self.inf_tables}")
        if self.underflowed_tables:
            bits.append(f"underflow in {self.underflowed_tables}")
        return "; ".join(bits)


def scan_tables(tables: Mapping[object, object]) -> HealthReport:
    """NaN / Inf / total-underflow scan over ``{key: PotentialTable}``.

    A table *underflows* when every entry is exactly zero — the signature
    of joint mass shrinking below ``float64``'s reach, which the
    log-space engine (:mod:`repro.potential.logspace`) avoids.
    """
    report = HealthReport()
    for key, table in tables.items():
        values = np.asarray(table.values)
        report.tables_scanned += 1
        if np.isnan(values).any():
            report.nan_tables.append(key)
        elif np.isinf(values).any():
            report.inf_tables.append(key)
        elif values.size and not values.any():
            report.underflowed_tables.append(key)
    return report


def check_state_health(state) -> HealthReport:
    """Health scan over a :class:`~repro.tasks.state.PropagationState`."""
    return scan_tables(state.potentials)
