"""Deterministic fault injection and failure attribution for executors.

Production propagation runs die in three characteristic ways: a worker
process is killed (OOM killer, preemption), a task hangs (page-cache
stall, runaway kernel), or a potential table silently turns to NaN/Inf
garbage.  Recovery code for those paths is untestable unless the faults
themselves can be injected on demand and deterministically, so this
module provides:

* :class:`FaultPlan` — a declarative schedule of faults (kill a worker
  before dispatch #N, delay task T by S seconds, corrupt task T's
  output) consumed by :class:`~repro.sched.process.ProcessSharedMemoryExecutor`
  and by the simulator policies (:mod:`repro.simcore.policies`).  Every
  fault fires exactly once, so a retried task runs clean and recovery
  can be asserted against the serial oracle.
* :class:`TaskExecutionError` — the worker-side exception wrapper that
  pins a failure to its task id, primitive kind, phase, tree edge and
  (for partitioned work) chunk range, so a crash deep in a 200-clique
  run is attributable from the master's traceback alone.
* :func:`scan_tables` / :class:`HealthReport` — the numerical health
  guard run after propagation: NaN / Inf / total-underflow detection
  over the clique tables, feeding the log-space fallback in
  :class:`~repro.sched.resilient.ResilientExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

CORRUPTION_MODES = ("nan", "inf", "garbage")


class InjectedCrash(BaseException):
    """A deterministic simulated process death at a planned crash point.

    Derives from :class:`BaseException` so the ordinary ``except
    Exception`` recovery paths — which a real ``SIGKILL`` would never
    give a chance to run — cannot swallow it: the injection cuts the
    worker exactly as hard as the crash it stands in for.  Raised by
    :class:`~repro.durability.journal.TickJournal` appends and the
    streaming service's tick lifecycle when a
    :class:`FaultPlan` crash point fires.
    """


class TaskExecutionError(RuntimeError):
    """A task failed inside a worker; carries full task attribution.

    Raised by the worker entry points so the master (and the user's
    traceback) sees *which* task failed — id, primitive kind, phase,
    tree edge, and chunk range for partitioned work — instead of only
    the failing primitive's own message.

    Picklable across the process boundary: ``concurrent.futures``
    round-trips worker exceptions through pickle, so the constructor
    signature is reproduced exactly by :meth:`__reduce__`.
    """

    def __init__(
        self,
        message: str,
        tid: Optional[int] = None,
        kind: Optional[str] = None,
        phase: Optional[str] = None,
        edge: Optional[Tuple[int, int]] = None,
        chunk: Optional[Tuple[int, int]] = None,
    ):
        super().__init__(message)
        self.tid = tid
        self.kind = kind
        self.phase = phase
        self.edge = edge
        self.chunk = chunk

    def __reduce__(self):
        return (
            self.__class__,
            (self.args[0], self.tid, self.kind, self.phase, self.edge,
             self.chunk),
        )

    @classmethod
    def wrap(cls, exc: BaseException, spec, chunk=None) -> "TaskExecutionError":
        """Build from a raw exception and a worker-side task spec."""
        kind = getattr(spec.kind, "value", str(spec.kind))
        where = f"task {spec.tid} ({kind}, {spec.phase}, edge {spec.edge}"
        if chunk is not None:
            where += f", chunk [{chunk[0]}, {chunk[1]})"
        where += ")"
        return cls(
            f"{where} failed: {type(exc).__name__}: {exc}",
            tid=spec.tid,
            kind=kind,
            phase=spec.phase,
            edge=tuple(spec.edge),
            chunk=tuple(chunk) if chunk is not None else None,
        )


@dataclass
class FaultRecord:
    """One fault the executor actually observed/injected (for stats)."""

    kind: str  # "kill" | "delay" | "corrupt" | "deadline" | "pool-broken"
    tid: Optional[int] = None
    detail: str = ""


@dataclass
class FaultPlan:
    """A deterministic schedule of injectable faults.

    All faults are *one-shot*: once taken they never fire again, so a
    recovered/retried task executes cleanly and the run can be asserted
    to converge.  The plan object itself tracks consumption, making it
    single-use — build a fresh plan per run.

    Parameters
    ----------
    kill_before_dispatch:
        ``{dispatch_index: worker_offset}`` — before the Nth pool
        dispatch (0-based, counted across tasks, chunks and combines),
        SIGKILL the pool worker at ``worker_offset`` (modulo the live
        worker count).  Exercises the ``BrokenProcessPool`` restart path.
    delay_task:
        ``{tid: seconds}`` — the worker sleeps before executing the
        task, on its first dispatch only.  Combined with a per-task
        deadline this exercises the timeout/redispatch path.
    corrupt_task:
        ``{tid: mode}`` with mode in :data:`CORRUPTION_MODES` — after
        the task's first execution its output table is overwritten with
        NaN / Inf / garbage, exercising the numerical health guard.  A
        value may also be ``(mode, column)`` to corrupt only one batch
        column of a batched table (the batch axis is leading), which is
        how the per-case quarantine path is exercised.
    fail_task:
        ``{tid: times}`` — the worker raises an injected exception on
        the task's first ``times`` dispatches (then runs clean),
        exercising the bounded retry-with-backoff path without killing
        any process.
    torn_write:
        ``{tid: entries}`` — after the task's first pool execution the
        worker stamps its checksum over the *correct* output, then
        scribbles ``entries`` finite garbage values into the written
        region, simulating a write torn between stamp and master read
        (kill mid-``memcpy``, stray writer).  The health scan cannot see
        finite garbage; only the crc verification in
        :class:`~repro.sched.process.ProcessSharedMemoryExecutor`
        catches it, raising
        :class:`~repro.integrity.checksum.TornWriteError`.
    sim_kill_core:
        ``{task_index: core}`` — simulator-only: core dies before it
        would start its Nth task (see :mod:`repro.simcore.policies`).
    sim_delay_task:
        ``{node_index: seconds}`` — simulator-only per-node delay.
    crash_after_journal_append:
        Tick sequence numbers after whose journal append the serving
        process "dies" (:class:`InjectedCrash`): the tick is durable
        but never executed — recovery must replay it (at-least-once).
    crash_before_ack:
        Tick sequence numbers whose execution completes and whose
        response resolves, but whose ack record never becomes durable:
        recovery sees an unacked tick and must replay it *idempotently*
        (the evidence set, not the work order, determines posteriors).
    torn_append:
        ``{seq: keep_bytes}`` — the journal append for ``seq`` writes
        only the first ``keep_bytes`` bytes of the framed record before
        the process dies, leaving a torn tail the next open must
        truncate.  ``keep_bytes`` is clamped inside the frame so the
        record is genuinely unreadable.
    """

    kill_before_dispatch: Dict[int, int] = field(default_factory=dict)
    delay_task: Dict[int, float] = field(default_factory=dict)
    corrupt_task: Dict[int, object] = field(default_factory=dict)
    fail_task: Dict[int, int] = field(default_factory=dict)
    torn_write: Dict[int, int] = field(default_factory=dict)
    sim_kill_core: Dict[int, int] = field(default_factory=dict)
    sim_delay_task: Dict[int, float] = field(default_factory=dict)
    crash_after_journal_append: Sequence[int] = ()
    crash_before_ack: Sequence[int] = ()
    torn_append: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        for tid, spec in self.corrupt_task.items():
            mode = spec[0] if isinstance(spec, tuple) else spec
            if mode not in CORRUPTION_MODES:
                raise ValueError(
                    f"corruption mode for task {tid} must be one of "
                    f"{CORRUPTION_MODES}, got {mode!r}"
                )
            if isinstance(spec, tuple) and (
                len(spec) != 2 or int(spec[1]) < 0
            ):
                raise ValueError(
                    f"batched corruption for task {tid} must be "
                    f"(mode, column) with column >= 0, got {spec!r}"
                )
        for tid, seconds in self.delay_task.items():
            if seconds < 0:
                raise ValueError(f"delay for task {tid} must be >= 0")
        for tid, times in self.fail_task.items():
            if times < 1:
                raise ValueError(f"fail count for task {tid} must be >= 1")
        for tid, entries in self.torn_write.items():
            if entries < 1:
                raise ValueError(
                    f"torn-write entry count for task {tid} must be >= 1"
                )
        for seq in tuple(self.crash_after_journal_append) + tuple(
            self.crash_before_ack
        ):
            if seq < 0:
                raise ValueError(f"crash-point seq must be >= 0, got {seq}")
        for seq, keep in self.torn_append.items():
            if seq < 0 or keep < 1:
                raise ValueError(
                    f"torn append needs seq >= 0 and keep_bytes >= 1, "
                    f"got seq {seq} keeping {keep}"
                )
        self._taken_kills: set = set()
        self._taken_delays: set = set()
        self._taken_corruptions: set = set()
        self._taken_failures: Dict[int, int] = {}
        self._taken_torn: set = set()
        self._taken_sim_kills: set = set()
        self._taken_sim_delays: set = set()
        self._taken_crash_appends: set = set()
        self._taken_crash_acks: set = set()
        self._taken_torn_appends: set = set()

    # ------------------------------------------------------------------ #
    # One-shot consumption (master-side; workers never see the plan)
    # ------------------------------------------------------------------ #

    def take_kill(self, dispatch_index: int) -> Optional[int]:
        """Worker offset to SIGKILL before this dispatch, or ``None``."""
        if (
            dispatch_index in self.kill_before_dispatch
            and dispatch_index not in self._taken_kills
        ):
            self._taken_kills.add(dispatch_index)
            return self.kill_before_dispatch[dispatch_index]
        return None

    def take_delay(self, tid: int) -> float:
        """Seconds the worker should sleep before running ``tid`` (0 = none)."""
        if tid in self.delay_task and tid not in self._taken_delays:
            self._taken_delays.add(tid)
            return self.delay_task[tid]
        return 0.0

    def take_corruption(self, tid: int):
        """Corruption spec to apply after running ``tid``, or ``None``.

        The spec is a bare mode string, or ``(mode, column)`` when only
        one batch column of a batched table should be corrupted.
        """
        if tid in self.corrupt_task and tid not in self._taken_corruptions:
            self._taken_corruptions.add(tid)
            return self.corrupt_task[tid]
        return None

    def take_torn(self, tid: int) -> Optional[int]:
        """Entries to scribble after ``tid``'s checksum stamp, or ``None``."""
        if tid in self.torn_write and tid not in self._taken_torn:
            self._taken_torn.add(tid)
            return self.torn_write[tid]
        return None

    def take_failure(self, tid: int) -> bool:
        """True if the next dispatch of ``tid`` should raise an injected error."""
        budget = self.fail_task.get(tid, 0)
        used = self._taken_failures.get(tid, 0)
        if used < budget:
            self._taken_failures[tid] = used + 1
            return True
        return False

    def take_sim_kill(self, task_index: int) -> Optional[int]:
        if (
            task_index in self.sim_kill_core
            and task_index not in self._taken_sim_kills
        ):
            self._taken_sim_kills.add(task_index)
            return self.sim_kill_core[task_index]
        return None

    def take_sim_delay(self, node_index: int) -> float:
        if (
            node_index in self.sim_delay_task
            and node_index not in self._taken_sim_delays
        ):
            self._taken_sim_delays.add(node_index)
            return self.sim_delay_task[node_index]
        return 0.0

    def take_crash_after_append(self, seq: int) -> bool:
        """True if the process should die right after ``seq``'s append."""
        if (
            seq in self.crash_after_journal_append
            and seq not in self._taken_crash_appends
        ):
            self._taken_crash_appends.add(seq)
            return True
        return False

    def take_crash_before_ack(self, seq: int) -> bool:
        """True if the process should die before ``seq``'s ack append."""
        if seq in self.crash_before_ack and seq not in self._taken_crash_acks:
            self._taken_crash_acks.add(seq)
            return True
        return False

    def take_torn_append(self, seq: int) -> Optional[int]:
        """Frame bytes to keep of ``seq``'s torn append, or ``None``."""
        if seq in self.torn_append and seq not in self._taken_torn_appends:
            self._taken_torn_appends.add(seq)
            return self.torn_append[seq]
        return None

    @property
    def empty(self) -> bool:
        return not (
            self.kill_before_dispatch
            or self.delay_task
            or self.corrupt_task
            or self.fail_task
            or self.torn_write
            or self.sim_kill_core
            or self.sim_delay_task
            or self.crash_after_journal_append
            or self.crash_before_ack
            or self.torn_append
        )


def corrupt_array(flat: np.ndarray, mode, column: Optional[int] = None) -> None:
    """Overwrite ``flat`` in place per ``mode`` (worker-side injection).

    ``mode`` may be ``(mode, column)`` — equivalent to passing ``column``
    explicitly — restricting the damage to one slice of the leading
    (batch) axis, so batched quarantine attribution can be exercised
    without poisoning every case.
    """
    if isinstance(mode, tuple):
        mode, column = mode
    target = flat if column is None else flat[int(column)]
    if mode == "nan":
        target[...] = np.nan
    elif mode == "inf":
        target[...] = np.inf
    elif mode == "garbage":
        # Deterministic garbage: sign-alternating huge values.
        target[...] = np.where(
            np.arange(target.size).reshape(target.shape) % 2 == 0,
            -1e300,
            1e300,
        )
    else:  # pragma: no cover - validated at plan construction
        raise ValueError(f"unknown corruption mode {mode!r}")


# --------------------------------------------------------------------- #
# Numerical health guard
# --------------------------------------------------------------------- #


@dataclass
class HealthReport:
    """Outcome of a NaN/Inf/underflow scan over a set of tables.

    For *batched* tables (leading batch axis) the scan additionally
    attributes each finding to the batch columns it lives in:
    ``nan_columns[key]`` lists the columns of table ``key`` containing a
    NaN, and :meth:`poisoned_columns` unions every attribution into the
    set of cases that must not be served — the single scan
    ``_serve_batch`` quarantines from, instead of re-scanning each
    case's marginals per variable.
    """

    nan_tables: List[object] = field(default_factory=list)
    inf_tables: List[object] = field(default_factory=list)
    underflowed_tables: List[object] = field(default_factory=list)
    tables_scanned: int = 0
    # Batch-column attribution, {table_key: [column, ...]}; populated
    # only for batched tables, and only for non-empty findings.
    nan_columns: Dict[object, List[int]] = field(default_factory=dict)
    inf_columns: Dict[object, List[int]] = field(default_factory=dict)
    underflow_columns: Dict[object, List[int]] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        return not (self.nan_tables or self.inf_tables)

    @property
    def underflowed(self) -> bool:
        return bool(self.underflowed_tables)

    def poisoned_columns(self) -> set:
        """Batch columns that must not be served: non-finite anywhere, or
        fully underflowed (their posteriors would normalize to 0/0)."""
        poisoned: set = set()
        for columns in self.nan_columns.values():
            poisoned.update(columns)
        for columns in self.inf_columns.values():
            poisoned.update(columns)
        for columns in self.underflow_columns.values():
            poisoned.update(columns)
        return poisoned

    def summary(self) -> str:
        if self.healthy and not self.underflowed:
            return f"healthy ({self.tables_scanned} tables)"
        bits = []
        if self.nan_tables:
            bits.append(f"NaN in {self.nan_tables}")
        if self.inf_tables:
            bits.append(f"Inf in {self.inf_tables}")
        if self.underflowed_tables:
            bits.append(f"underflow in {self.underflowed_tables}")
        poisoned = self.poisoned_columns()
        if poisoned:
            bits.append(f"batch columns {sorted(poisoned)}")
        return "; ".join(bits)


def scan_tables(tables: Mapping[object, object]) -> HealthReport:
    """NaN / Inf / total-underflow scan over ``{key: PotentialTable}``.

    A table *underflows* when every entry is exactly zero — the signature
    of joint mass shrinking below ``float64``'s reach, which the
    log-space engine (:mod:`repro.potential.logspace`) avoids.  Batched
    tables are scanned per batch column (one vectorized reduction over
    the case axis, not a Python loop per case): a column underflows when
    *its* entries are all zero, and every finding is recorded in the
    report's ``*_columns`` attribution maps.
    """
    report = HealthReport()
    for key, table in tables.items():
        values = np.asarray(table.values)
        report.tables_scanned += 1
        batch = getattr(table, "batch", None)
        if batch is not None:
            cases = values.reshape(batch, -1)
            nan_cols = np.flatnonzero(np.isnan(cases).any(axis=1))
            inf_cols = np.flatnonzero(np.isinf(cases).any(axis=1))
            under_cols = np.flatnonzero(~(cases != 0).any(axis=1))
            if nan_cols.size:
                report.nan_tables.append(key)
                report.nan_columns[key] = [int(c) for c in nan_cols]
            elif inf_cols.size:
                report.inf_tables.append(key)
            elif under_cols.size:
                report.underflowed_tables.append(key)
            if inf_cols.size:
                report.inf_columns[key] = [int(c) for c in inf_cols]
            if under_cols.size:
                report.underflow_columns[key] = [int(c) for c in under_cols]
            continue
        if np.isnan(values).any():
            report.nan_tables.append(key)
        elif np.isinf(values).any():
            report.inf_tables.append(key)
        elif values.size and not values.any():
            report.underflowed_tables.append(key)
    return report


def check_state_health(state) -> HealthReport:
    """Health scan over a :class:`~repro.tasks.state.PropagationState`."""
    return scan_tables(state.potentials)
