"""Degradation-cascade executor wrapper: finish the run, record why.

:class:`ResilientExecutor` wraps any executor with three layers of
last-resort robustness that the executor itself cannot provide:

* **Degradation cascade** — if a tier raises (crashed pool past its
  restart budget, exhausted retries, anything), the propagation state is
  rolled back to its pre-run snapshot and the next tier runs instead.
  The default cascade mirrors the deployment ladder: shared-memory
  processes → collaborative threads → serial, each strictly simpler and
  more reliable than the one before.
* **Numerical health guard** — after every successful tier the clique
  tables are scanned for NaN/Inf (:func:`repro.sched.faults.scan_tables`).
  Poisoned results degrade to the next tier exactly like a crash, so a
  corrupted shared buffer cannot leak into posteriors.
* **Log-space rescue** — a run whose tables fully underflowed (every
  entry exactly zero) is re-run in the log domain via
  :mod:`repro.potential.logspace`; clique potentials are replaced by
  their stably-normalized linear forms and the true log-likelihood is
  recorded in ``stats.log_likelihood`` (the linear ``state.likelihood()``
  is meaningless after underflow).

Every step taken is recorded as a :class:`DegradationRecord` in
``stats.degradations``, so an operator can see that a run *finished* but
also exactly what it cost to finish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sched.faults import HealthReport, check_state_health
from repro.sched.stats import ExecutionStats
from repro.tasks.state import PropagationState
from repro.tasks.task import TaskGraph


@dataclass
class DegradationRecord:
    """One step down the cascade (or a log-space rescue) and its cause."""

    from_executor: str
    to_executor: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.from_executor} -> {self.to_executor}: {self.reason}"


def _executor_name(executor) -> str:
    return type(executor).__name__


def _run_tier(tier, graph, state, tracer, deadline=None):
    """Run one tier, forwarding tracer/deadline only if the tier accepts them.

    Third-party executors predating the observability subsystem (or the
    cooperative deadline checks) keep working inside a traced,
    deadline-bounded cascade — just untraced and unbounded.
    """
    if tracer is None and deadline is None:
        return tier.run(graph, state)
    import inspect

    try:
        params = inspect.signature(tier.run).parameters
    except (TypeError, ValueError):
        params = {}
    kwargs = {}
    if tracer is not None and "tracer" in params:
        kwargs["tracer"] = tracer
    if deadline is not None and "deadline" in params:
        kwargs["deadline"] = deadline
    return tier.run(graph, state, **kwargs)


def default_cascade(primary) -> List[object]:
    """Fallback tiers below ``primary``: processes → threads → serial.

    The thread tier reuses the primary's worker count and partition
    threshold where it exposes them, so a degraded run still balances
    load the same way — it only gives up on escaping the GIL.
    """
    from repro.sched.collaborative import CollaborativeExecutor
    from repro.sched.process import ProcessSharedMemoryExecutor
    from repro.sched.serial import SerialExecutor

    if isinstance(primary, SerialExecutor):
        return []
    if isinstance(primary, ProcessSharedMemoryExecutor):
        threads = CollaborativeExecutor(
            num_threads=primary.num_workers,
            partition_threshold=primary.partition_threshold,
            max_chunks=primary.max_chunks,
        )
        return [threads, SerialExecutor()]
    return [SerialExecutor()]


class ResilientExecutor:
    """Run a task graph through a cascade of ever-simpler executors.

    Parameters
    ----------
    executor:
        The primary (fastest, least reliable) tier; defaults to a
        :class:`~repro.sched.serial.SerialExecutor` — wrap your real
        executor to get the safety layers.
    fallbacks:
        Tiers tried in order after the primary; defaults to
        :func:`default_cascade` of the primary.
    health_check:
        Scan clique tables for NaN/Inf after each tier and treat a
        poisoned result as that tier's failure.
    logspace_fallback:
        Re-run a fully-underflowed propagation in the log domain
        (hard-evidence runs only; soft evidence is recorded and skipped).
    """

    def __init__(
        self,
        executor=None,
        fallbacks: Optional[Sequence] = None,
        health_check: bool = True,
        logspace_fallback: bool = True,
    ):
        from repro.sched.serial import SerialExecutor

        self.executor = executor if executor is not None else SerialExecutor()
        self.fallbacks = (
            list(fallbacks) if fallbacks is not None
            else default_cascade(self.executor)
        )
        self.health_check = health_check
        self.logspace_fallback = logspace_fallback

    # ------------------------------------------------------------------ #
    # State snapshot/rollback (tiers mutate the state in place)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _snapshot(state: PropagationState):
        return (
            {i: t.copy() for i, t in state.potentials.items()},
            {e: t.copy() for e, t in state.separators.items()},
            {k: t.copy() for k, t in state._inter.items()},
        )

    @staticmethod
    def _restore(state: PropagationState, snap) -> None:
        pots, seps, inter = snap
        state.potentials = {i: t.copy() for i, t in pots.items()}
        state.separators = {e: t.copy() for e, t in seps.items()}
        state._inter = {k: t.copy() for k, t in inter.items()}

    # ------------------------------------------------------------------ #

    def run(
        self,
        graph: TaskGraph,
        state: PropagationState,
        tracer=None,
        deadline: Optional[float] = None,
    ) -> ExecutionStats:
        """Run the cascade; ``deadline`` (absolute ``time.monotonic()``)
        is forwarded to every tier that supports cooperative checks.  A
        deadline overrun is *not* a degradation trigger: a slower tier
        cannot beat the clock the faster one already missed, so the
        ``phase="deadline"`` error re-raises immediately."""
        tiers = [self.executor] + self.fallbacks
        snapshot = self._snapshot(state)
        records: List[DegradationRecord] = []
        last_exc: Optional[BaseException] = None
        stats: Optional[ExecutionStats] = None
        report: Optional[HealthReport] = None

        def mark_degradation(record: DegradationRecord) -> None:
            records.append(record)
            if tracer is not None:
                from repro.obs.span import CONTROL_ROW

                tracer.name_row(CONTROL_ROW, "control")
                tracer.buffer(CONTROL_ROW).instant(
                    f"degrade:{record.from_executor}->{record.to_executor}",
                    "fault",
                )

        for i, tier in enumerate(tiers):
            name = _executor_name(tier)
            next_name = (
                _executor_name(tiers[i + 1]) if i + 1 < len(tiers) else "none"
            )
            if i > 0:
                self._restore(state, snapshot)
            try:
                stats = _run_tier(tier, graph, state, tracer, deadline)
            except Exception as exc:
                from repro.sched.faults import TaskExecutionError

                if (
                    isinstance(exc, TaskExecutionError)
                    and exc.phase == "deadline"
                ):
                    raise
                last_exc = exc
                mark_degradation(DegradationRecord(
                    name, next_name, f"{type(exc).__name__}: {exc}"))
                stats = None
                continue
            if self.health_check:
                report = check_state_health(state)
                if not report.healthy:
                    mark_degradation(DegradationRecord(
                        name, next_name, f"unhealthy result: {report.summary()}"
                    ))
                    stats = None
                    continue
            break

        if stats is None:
            detail = "; ".join(str(r) for r in records)
            raise RuntimeError(
                f"every executor tier failed: {detail}"
            ) from last_exc

        # Record which tier actually finished: after a degradation the
        # requested executor's name/threshold would mislabel the run.
        stats.completed_executor = _executor_name(tier)
        stats.completed_partition_threshold = getattr(
            tier, "partition_threshold", None
        )

        if report is not None:
            stats.health = report.summary()
            if report.underflowed and self.logspace_fallback:
                rescued = self._rescue_logspace(state, stats, records)
                if rescued:
                    stats.health = check_state_health(state).summary()
        stats.degradations.extend(records)
        return stats

    # ------------------------------------------------------------------ #

    def _rescue_logspace(
        self,
        state: PropagationState,
        stats: ExecutionStats,
        records: List[DegradationRecord],
    ) -> bool:
        """Re-run an underflowed propagation in the log domain.

        Replaces each clique potential with its stably-normalized linear
        form (so per-clique and per-variable marginals read off exactly
        as usual) and records the evidence log-likelihood in
        ``stats.log_likelihood``.  Returns True when the rescue ran.
        """
        from repro.potential.logspace import propagate_reference_log
        from repro.potential.table import PotentialTable

        if state.soft_evidence:
            records.append(DegradationRecord(
                "logspace", "none",
                "underflow detected but log-space rescue does not support "
                "soft evidence",
            ))
            return False
        if getattr(state, "batch", None) is not None:
            records.append(DegradationRecord(
                "logspace", "none",
                "underflow detected but log-space rescue does not support "
                "batched states",
            ))
            return False
        log_pots = propagate_reference_log(state.jt, state.evidence)
        for i, log_table in log_pots.items():
            state.potentials[i] = PotentialTable(
                log_table.variables,
                log_table.cardinalities,
                log_table.normalized_linear(),
            )
        stats.log_likelihood = log_pots[state.jt.root].log_total()
        records.append(DegradationRecord(
            "linear", "logspace",
            "clique tables underflowed; re-ran propagation in log domain",
        ))
        return True
