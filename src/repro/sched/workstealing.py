"""Work-stealing executor: the paper's Section 8 future-work direction.

The collaborative scheduler's Allocate module pushes every ready task
through shared locks, which the paper identifies as the looming bottleneck
("as more cores are integrated into a single chip, some overheads such as
lock contention will increase dramatically").  The classic remedy is work
*stealing*: each thread owns a deque, pushes the tasks it makes ready onto
its own bottom, and only touches another thread's deque — stealing from
the top — when its own is empty.  Shared-lock traffic then scales with the
steal count instead of the task count.

Results are numerically identical to every other executor; the matching
simulator-side ablation lives in the benchmarks.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import List, Optional

from repro.sched.faults import TaskExecutionError
from repro.sched.stats import ExecutionStats
from repro.tasks.partition_plan import plan_partition
from repro.tasks.state import PropagationState
from repro.tasks.task import TaskGraph


class _ChunkSet:
    """Chunk bookkeeping for one partitioned task (see CollaborativeExecutor)."""

    __slots__ = ("task", "ranges", "results", "remaining", "lock")

    def __init__(self, task, ranges):
        self.task = task
        self.ranges = ranges
        self.results: List[Optional[object]] = [None] * len(ranges)
        self.remaining = len(ranges)
        self.lock = threading.Lock()


class WorkStealingExecutor:
    """Per-thread deques with steal-when-empty scheduling.

    Parameters mirror :class:`~repro.sched.collaborative.CollaborativeExecutor`
    minus the allocation heuristic (ownership replaces it).
    """

    def __init__(
        self,
        num_threads: int = 4,
        partition_threshold: Optional[int] = None,
        max_chunks: int = 32,
    ):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if partition_threshold is not None and partition_threshold < 1:
            raise ValueError("partition_threshold must be >= 1 or None")
        if max_chunks < 2:
            raise ValueError("max_chunks must be >= 2")
        self.num_threads = num_threads
        self.partition_threshold = partition_threshold
        self.max_chunks = max_chunks

    def run(
        self,
        graph: TaskGraph,
        state: PropagationState,
        tracer=None,
        deadline: Optional[float] = None,
    ) -> ExecutionStats:
        """Run the graph; ``deadline`` is an absolute ``time.monotonic()``
        instant checked cooperatively before every pop/steal.  An overrun
        raises :class:`~repro.sched.faults.TaskExecutionError` with
        ``phase="deadline"`` (counted in ``stats.deadline_misses``)."""
        p = self.num_threads
        if tracer is not None:
            from repro.obs.tracer import LOCK_GL, LOCK_LL, TimedLock

            dep_lock = TimedLock(tracer, LOCK_GL)
            deque_locks = [TimedLock(tracer, LOCK_LL) for _ in range(p)]
            bufs = [tracer.buffer(i) for i in range(p)]
        else:
            dep_lock = threading.Lock()
            deque_locks = [threading.Lock() for _ in range(p)]
            bufs = None
        dep_count = graph.indegrees()
        remaining = [graph.num_tasks]

        deques: List[deque] = [deque() for _ in range(p)]

        stats = ExecutionStats(
            num_threads=p,
            compute_time=[0.0] * p,
            sched_time=[0.0] * p,
            tasks_per_thread=[0] * p,
        )
        stats_lock = threading.Lock()
        abort: List[Optional[BaseException]] = [None]

        def push_local(thread: int, item) -> None:
            with deque_locks[thread]:
                deques[thread].append(item)

        def pop_or_steal(thread: int):
            # Own work first (LIFO for locality)...
            with deque_locks[thread]:
                if deques[thread]:
                    return deques[thread].pop()
            # ...then steal oldest work from the first non-empty victim.
            for offset in range(1, p):
                victim = (thread + offset) % p
                item = None
                with deque_locks[victim]:
                    if deques[victim]:
                        item = deques[victim].popleft()
                if item is not None:
                    if bufs is not None:
                        bufs[thread].instant(f"steal<-{victim}", "sched")
                        bufs[thread].count("steals")
                    return item
            return None

        def complete(thread: int, tid: int) -> None:
            """Resolve successors; newly-ready tasks stay with this thread."""
            for succ in graph.succs[tid]:
                with dep_lock:
                    dep_count[succ] -= 1
                    ready = dep_count[succ] == 0
                if ready:
                    push_local(thread, ("task", succ))
            with dep_lock:
                remaining[0] -= 1

        def run_chunk(thread: int, cset: _ChunkSet, idx: int) -> None:
            lo, hi = cset.ranges[idx]
            t0 = time.perf_counter_ns()
            result = state.execute_chunk(cset.task, lo, hi)
            t1 = time.perf_counter_ns()
            if bufs is not None:
                bufs[thread].task_span("chunk", cset.task.tid, t0, t1, lo, hi)
            with stats_lock:
                stats.compute_time[thread] += (t1 - t0) * 1e-9
                stats.chunks_executed += 1
            with cset.lock:
                cset.results[idx] = result
                cset.remaining -= 1
                last = cset.remaining == 0
            if last:
                t0 = time.perf_counter_ns()
                state.combine_chunks(cset.task, cset.results, cset.ranges)
                t1 = time.perf_counter_ns()
                if bufs is not None:
                    bufs[thread].task_span("combine", cset.task.tid, t0, t1)
                with stats_lock:
                    stats.compute_time[thread] += (t1 - t0) * 1e-9
                    stats.tasks_executed += 1
                    stats.tasks_per_thread[thread] += 1
                complete(thread, cset.task.tid)

        def run_task(thread: int, tid: int) -> None:
            task = graph.tasks[tid]
            ranges = plan_partition(
                task, self.partition_threshold, self.max_chunks
            )
            if ranges is not None:
                cset = _ChunkSet(task, ranges)
                if bufs is not None:
                    bufs[thread].instant(f"partition#{tid}", "sched")
                with stats_lock:
                    stats.tasks_partitioned += 1
                for idx in range(1, len(ranges)):
                    push_local(thread, ("chunk", cset, idx))
                run_chunk(thread, cset, 0)
                return
            t0 = time.perf_counter_ns()
            state.execute(task)
            t1 = time.perf_counter_ns()
            if bufs is not None:
                bufs[thread].task_span("task", tid, t0, t1)
            with stats_lock:
                stats.compute_time[thread] += (t1 - t0) * 1e-9
                stats.tasks_executed += 1
                stats.tasks_per_thread[thread] += 1
            complete(thread, tid)

        def check_deadline() -> None:
            if deadline is not None and time.monotonic() >= deadline:
                with stats_lock:
                    stats.deadline_misses += 1
                raise TaskExecutionError(
                    f"work-stealing propagation exceeded its deadline with "
                    f"~{remaining[0]} of {graph.num_tasks} tasks unexecuted",
                    phase="deadline",
                )

        def worker(thread: int) -> None:
            if tracer is not None:
                tracer.bind(thread)
            try:
                while abort[0] is None:
                    check_deadline()
                    t0 = time.perf_counter_ns()
                    item = pop_or_steal(thread)
                    t1 = time.perf_counter_ns()
                    with stats_lock:
                        stats.sched_time[thread] += (t1 - t0) * 1e-9
                    if item is None:
                        with dep_lock:
                            done = remaining[0] == 0
                        if done:
                            break
                        time.sleep(1e-5)
                        continue
                    if bufs is not None:
                        bufs[thread].span("fetch", "sched", t0, t1)
                        bufs[thread].sample_queue(len(deques[thread]))
                    if item[0] == "task":
                        run_task(thread, item[1])
                    else:
                        run_chunk(thread, item[1], item[2])
            except BaseException as exc:
                abort[0] = exc

        for offset, tid in enumerate(graph.roots()):
            push_local(offset % p, ("task", tid))

        start_ns = time.perf_counter_ns()
        threads = [
            threading.Thread(target=worker, args=(i,), name=f"steal-{i}")
            for i in range(p)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats.wall_time = (time.perf_counter_ns() - start_ns) * 1e-9
        if abort[0] is not None:
            raise abort[0]
        if remaining[0] != 0:
            raise RuntimeError(
                f"work-stealing finished with {remaining[0]} tasks unexecuted"
            )
        return stats
