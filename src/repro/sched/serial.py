"""Reference serial executor: tasks in topological order, one thread."""

from __future__ import annotations

import time
from typing import Optional

from repro.sched.stats import ExecutionStats
from repro.tasks.state import PropagationState
from repro.tasks.task import TaskGraph


class SerialExecutor:
    """Runs every task in a fixed topological order on the calling thread.

    This is both the correctness oracle for the parallel executors and the
    ``P = 1`` baseline for speedup measurements.
    """

    def run(
        self,
        graph: TaskGraph,
        state: PropagationState,
        tracer=None,
        deadline: Optional[float] = None,
    ) -> ExecutionStats:
        """Run the graph; ``deadline`` is an absolute ``time.monotonic()``
        instant checked between tasks (the serial form of the parallel
        executors' fetch-boundary check), raising
        :class:`~repro.sched.faults.TaskExecutionError` with
        ``phase="deadline"`` on overrun."""
        buf = tracer.bind(0) if tracer is not None else None
        start_ns = time.perf_counter_ns()
        compute_ns = 0
        executed = 0
        stats = ExecutionStats(num_threads=1)
        for tid in graph.topological_order():
            if deadline is not None and time.monotonic() >= deadline:
                from repro.sched.faults import TaskExecutionError

                stats.deadline_misses += 1
                raise TaskExecutionError(
                    f"serial propagation exceeded its deadline with "
                    f"{graph.num_tasks - executed} of {graph.num_tasks} "
                    f"tasks unexecuted",
                    phase="deadline",
                )
            t0 = time.perf_counter_ns()
            state.execute(graph.tasks[tid])
            t1 = time.perf_counter_ns()
            compute_ns += t1 - t0
            executed += 1
            if buf is not None:
                buf.task_span("task", tid, t0, t1)
        wall = (time.perf_counter_ns() - start_ns) * 1e-9
        compute = compute_ns * 1e-9
        return ExecutionStats(
            num_threads=1,
            wall_time=wall,
            tasks_executed=graph.num_tasks,
            compute_time=[compute],
            sched_time=[max(wall - compute, 0.0)],
            tasks_per_thread=[graph.num_tasks],
        )
