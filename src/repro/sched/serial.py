"""Reference serial executor: tasks in topological order, one thread."""

from __future__ import annotations

import time

from repro.sched.stats import ExecutionStats
from repro.tasks.state import PropagationState
from repro.tasks.task import TaskGraph


class SerialExecutor:
    """Runs every task in a fixed topological order on the calling thread.

    This is both the correctness oracle for the parallel executors and the
    ``P = 1`` baseline for speedup measurements.
    """

    def run(self, graph: TaskGraph, state: PropagationState) -> ExecutionStats:
        start = time.perf_counter()
        compute = 0.0
        for tid in graph.topological_order():
            t0 = time.perf_counter()
            state.execute(graph.tasks[tid])
            compute += time.perf_counter() - t0
        wall = time.perf_counter() - start
        return ExecutionStats(
            num_threads=1,
            wall_time=wall,
            tasks_executed=graph.num_tasks,
            compute_time=[compute],
            sched_time=[max(wall - compute, 0.0)],
            tasks_per_thread=[graph.num_tasks],
        )
