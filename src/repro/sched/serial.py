"""Reference serial executor: tasks in topological order, one thread."""

from __future__ import annotations

import time

from repro.sched.stats import ExecutionStats
from repro.tasks.state import PropagationState
from repro.tasks.task import TaskGraph


class SerialExecutor:
    """Runs every task in a fixed topological order on the calling thread.

    This is both the correctness oracle for the parallel executors and the
    ``P = 1`` baseline for speedup measurements.
    """

    def run(
        self,
        graph: TaskGraph,
        state: PropagationState,
        tracer=None,
    ) -> ExecutionStats:
        buf = tracer.bind(0) if tracer is not None else None
        start_ns = time.perf_counter_ns()
        compute_ns = 0
        for tid in graph.topological_order():
            t0 = time.perf_counter_ns()
            state.execute(graph.tasks[tid])
            t1 = time.perf_counter_ns()
            compute_ns += t1 - t0
            if buf is not None:
                buf.task_span("task", tid, t0, t1)
        wall = (time.perf_counter_ns() - start_ns) * 1e-9
        compute = compute_ns * 1e-9
        return ExecutionStats(
            num_threads=1,
            wall_time=wall,
            tasks_executed=graph.num_tasks,
            compute_time=[compute],
            sched_time=[max(wall - compute, 0.0)],
            tasks_per_thread=[graph.num_tasks],
        )
