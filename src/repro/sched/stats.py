"""Execution statistics shared by all executors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class ExecutionStats:
    """What an executor did and how long each part took.

    ``compute_time`` / ``sched_time`` are per-thread (index = thread id);
    the paper's Fig. 8 plots exactly these: per-thread primitive time for
    load balance, and the scheduling share of execution time.

    The process executor records one extra trailing slot in the per-worker
    lists for work its master process ran inline (small tasks it keeps out
    of the dispatch path), plus the process-specific counters below.
    """

    num_threads: int = 1
    wall_time: float = 0.0
    tasks_executed: int = 0
    tasks_partitioned: int = 0
    chunks_executed: int = 0
    compute_time: List[float] = field(default_factory=list)
    sched_time: List[float] = field(default_factory=list)
    tasks_per_thread: List[int] = field(default_factory=list)
    # Optional per-task event log (task id, thread, start, end) relative
    # to the run's start; populated when the executor records events.
    events: List[tuple] = field(default_factory=list)
    # Process-executor extras: tasks the master ran inline instead of
    # dispatching, bytes of the shared-memory arena, and the worker
    # process pids in per-slot order (for correlating with OS tooling).
    # After a crash recovery, replacement workers get their own trailing
    # slots (after the master's), so pids are never merged across lives.
    tasks_inline: int = 0
    shared_bytes: int = 0
    worker_pids: List[int] = field(default_factory=list)
    # Fault-tolerance accounting: dispatch retries (worker exceptions and
    # missed deadlines), per-dispatch deadline misses, arena-preserving
    # pool restarts, replacement workers observed, injected/observed
    # fault records (repro.sched.faults.FaultRecord), and the degradation
    # steps a ResilientExecutor took to finish the run.
    retries_total: int = 0
    deadline_misses: int = 0
    pool_restarts: int = 0
    workers_restarted: int = 0
    fault_events: List[object] = field(default_factory=list)
    degradations: List[object] = field(default_factory=list)
    # Post-run numerical health summary (set by ResilientExecutor) and,
    # when the log-space fallback ran, the log-likelihood of the evidence
    # (the linear-domain state.likelihood() is unreliable after a rescue).
    health: str = ""
    log_likelihood: Optional[float] = None

    def degraded(self) -> bool:
        """True when a ResilientExecutor had to fall back or rescue."""
        return bool(self.degradations)

    def total_compute(self) -> float:
        return sum(self.compute_time)

    def total_sched(self) -> float:
        return sum(self.sched_time)

    def sched_ratio(self) -> float:
        """Scheduling overhead as a fraction of total busy time."""
        busy = self.total_compute() + self.total_sched()
        if busy == 0:
            return 0.0
        return self.total_sched() / busy

    def per_worker_summary(self) -> List[dict]:
        """One dict per worker slot: pid (if known), compute time, tasks.

        For the process executor the final slot (pid ``None`` unless
        recorded) is the master's inline-execution share.
        """
        rows = []
        for slot, compute in enumerate(self.compute_time):
            rows.append(
                {
                    "slot": slot,
                    "pid": self.worker_pids[slot]
                    if slot < len(self.worker_pids)
                    else None,
                    "compute_time": compute,
                    "sched_time": self.sched_time[slot]
                    if slot < len(self.sched_time)
                    else 0.0,
                    "tasks": self.tasks_per_thread[slot]
                    if slot < len(self.tasks_per_thread)
                    else 0,
                }
            )
        return rows

    def load_imbalance(self) -> float:
        """max/mean per-thread compute time; 1.0 means perfectly balanced."""
        if not self.compute_time or max(self.compute_time) == 0:
            return 1.0
        mean = sum(self.compute_time) / len(self.compute_time)
        if mean == 0:
            return 1.0
        return max(self.compute_time) / mean
