"""Execution statistics shared by all executors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass
class SpanRecord:
    """One task-execution interval in ``ExecutionStats.events``.

    ``start`` / ``end`` are seconds relative to the run's start; ``worker``
    is the executing thread/slot.  For backward compatibility the record
    still unpacks like the old free-form 4-tuple::

        tid, worker, start, end = record
    """

    tid: int
    worker: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __iter__(self) -> Iterator:
        return iter((self.tid, self.worker, self.start, self.end))

    def __getitem__(self, index):
        return (self.tid, self.worker, self.start, self.end)[index]

    def __len__(self) -> int:
        return 4


@dataclass
class ExecutionStats:
    """What an executor did and how long each part took.

    ``compute_time`` / ``sched_time`` are per-thread (index = thread id);
    the paper's Fig. 8 plots exactly these: per-thread primitive time for
    load balance, and the scheduling share of execution time.

    The process executor records one extra trailing slot in the per-worker
    lists for work its master process ran inline (small tasks it keeps out
    of the dispatch path), plus the process-specific counters below; it
    marks that slot in ``master_slot`` so load metrics can separate the
    master's opportunistic inline work from the real workers.
    """

    num_threads: int = 1
    wall_time: float = 0.0
    tasks_executed: int = 0
    tasks_partitioned: int = 0
    chunks_executed: int = 0
    compute_time: List[float] = field(default_factory=list)
    sched_time: List[float] = field(default_factory=list)
    tasks_per_thread: List[int] = field(default_factory=list)
    # Optional per-task event log (SpanRecord: task id, worker, start, end
    # relative to the run's start); populated when the executor records
    # events.  Entries unpack like 4-tuples for older consumers.
    events: List[SpanRecord] = field(default_factory=list)
    # Process-executor extras: tasks the master ran inline instead of
    # dispatching, bytes of the shared-memory arena, and the worker
    # process pids in per-slot order (for correlating with OS tooling).
    # After a crash recovery, replacement workers get their own trailing
    # slots (after the master's), so pids are never merged across lives.
    tasks_inline: int = 0
    shared_bytes: int = 0
    worker_pids: List[int] = field(default_factory=list)
    # Index of the master's inline-work slot in the per-slot lists, or
    # None when every slot is a real worker (thread executors).
    master_slot: Optional[int] = None
    # Fault-tolerance accounting: dispatch retries (worker exceptions and
    # missed deadlines), per-dispatch deadline misses, arena-preserving
    # pool restarts, replacement workers observed, injected/observed
    # fault records (repro.sched.faults.FaultRecord), and the degradation
    # steps a ResilientExecutor took to finish the run.
    retries_total: int = 0
    deadline_misses: int = 0
    pool_restarts: int = 0
    workers_restarted: int = 0
    # Torn writes the arena checksum verification caught (each one raised
    # a TornWriteError; a nonzero count can only appear on a failed run).
    torn_writes_detected: int = 0
    fault_events: List[object] = field(default_factory=list)
    degradations: List[object] = field(default_factory=list)
    # Post-run numerical health summary (set by ResilientExecutor) and,
    # when the log-space fallback ran, the log-likelihood of the evidence
    # (the linear-domain state.likelihood() is unreliable after a rescue).
    health: str = ""
    log_likelihood: Optional[float] = None
    # The executor that actually completed the run.  Set by
    # ResilientExecutor to the surviving cascade tier — after a
    # degradation this differs from the *requested* executor, and trace
    # labels must reflect reality, not the request.
    completed_executor: str = ""
    completed_partition_threshold: Optional[int] = None
    # Incremental-repropagation accounting: whether the run executed a
    # restricted task graph, and how many tasks of the full graph were
    # skipped by reusing the previous propagation's tables.
    incremental: bool = False
    tasks_skipped: int = 0

    def degraded(self) -> bool:
        """True when a ResilientExecutor had to fall back or rescue."""
        return bool(self.degradations)

    def total_compute(self) -> float:
        return sum(self.compute_time)

    def total_sched(self) -> float:
        return sum(self.sched_time)

    def sched_ratio(self) -> float:
        """Scheduling overhead as a fraction of total busy time."""
        busy = self.total_compute() + self.total_sched()
        if busy == 0:
            return 0.0
        return self.total_sched() / busy

    def worker_slots(self) -> List[int]:
        """Indices of the per-slot lists that belong to real workers.

        Excludes the process executor's master slot (inline work the
        master ran opportunistically); thread executors have no master
        slot, so every index qualifies.
        """
        return [
            slot
            for slot in range(len(self.compute_time))
            if slot != self.master_slot
        ]

    def per_worker_summary(self) -> List[dict]:
        """One dict per slot: role, pid (if known), compute time, tasks.

        Rows cover every slot — real workers, replacement workers after a
        pool restart, and (process executor) the master's inline-execution
        share, marked by ``role == "master"``.
        """
        rows = []
        for slot, compute in enumerate(self.compute_time):
            rows.append(
                {
                    "slot": slot,
                    "role": "master" if slot == self.master_slot else "worker",
                    "pid": self.worker_pids[slot]
                    if slot < len(self.worker_pids)
                    else None,
                    "compute_time": compute,
                    "sched_time": self.sched_time[slot]
                    if slot < len(self.sched_time)
                    else 0.0,
                    "tasks": self.tasks_per_thread[slot]
                    if slot < len(self.tasks_per_thread)
                    else 0,
                }
            )
        return rows

    def load_imbalance(self) -> float:
        """max/mean per-worker compute time; 1.0 means perfectly balanced.

        Only real worker slots count: averaging in the process executor's
        master slot (mostly-idle inline work) used to deflate the mean
        and overstate imbalance.
        """
        compute = [self.compute_time[s] for s in self.worker_slots()]
        if not compute or max(compute) == 0:
            return 1.0
        mean = sum(compute) / len(compute)
        if mean == 0:
            return 1.0
        return max(compute) / mean
