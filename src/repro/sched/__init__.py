"""Executors that run a task graph against a propagation state.

All executors produce numerically identical results; they differ in *how*
tasks are ordered and (for the threaded ones) interleaved:

* :class:`SerialExecutor` — reference topological execution.
* :class:`CollaborativeExecutor` — the paper's Algorithm 2 on real Python
  threads: per-thread Allocate/Fetch/Partition/Execute modules around a
  shared global task list and per-thread local ready lists.
* :class:`LevelParallelExecutor` — OpenMP-style level-synchronous
  parallel-for with a barrier per level (baseline 1).
* :class:`DataParallelExecutor` — every primitive split across all threads
  with a fork/join per task (baseline 2).

Because of the GIL these threaded executors demonstrate *correctness* of the
scheduling algorithms, not wall-clock speedup; speedup curves are produced
by the multicore simulator in :mod:`repro.simcore`, which executes the same
policies over the same task graphs with a calibrated cost model.
"""

from repro.sched.stats import ExecutionStats
from repro.sched.serial import SerialExecutor
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.baselines import DataParallelExecutor, LevelParallelExecutor
from repro.sched.workstealing import WorkStealingExecutor
from repro.sched.generic import run_dag
from repro.sched.online import OnlineScheduler, TaskHandle

__all__ = [
    "ExecutionStats",
    "SerialExecutor",
    "CollaborativeExecutor",
    "LevelParallelExecutor",
    "DataParallelExecutor",
    "WorkStealingExecutor",
    "run_dag",
    "OnlineScheduler",
    "TaskHandle",
]
