"""Executors that run a task graph against a propagation state.

All executors produce numerically equivalent results; they differ in *how*
tasks are ordered, interleaved, and mapped onto hardware:

* :class:`SerialExecutor` — reference topological execution.
* :class:`CollaborativeExecutor` — the paper's Algorithm 2 on real Python
  threads: per-thread Allocate/Fetch/Partition/Execute modules around a
  shared global task list and per-thread local ready lists.
* :class:`LevelParallelExecutor` — OpenMP-style level-synchronous
  parallel-for with a barrier per level (baseline 1).
* :class:`DataParallelExecutor` — every primitive split across all threads
  with a fork/join per task (baseline 2).
* :class:`WorkStealingExecutor` — per-thread deques with steal-when-empty
  (the Section 8 future-work direction).
* :class:`ProcessSharedMemoryExecutor` — Algorithm 2 across worker
  *processes* with all potential tables in ``multiprocessing``
  shared memory (zero-copy numpy views), the one executor that escapes
  the GIL and can therefore show genuine multicore wall-clock speedup.

The threaded executors are GIL-bound, so they demonstrate scheduling
correctness and load balance rather than speedup; for wall-clock speedup
use the process executor on sufficiently large tables (see
``benchmarks/bench_real_executors.py``), or the multicore simulator in
:mod:`repro.simcore`, which replays the same policies over the same task
graphs with a calibrated cost model.

Fault tolerance: :class:`ResilientExecutor` wraps any executor in a
degradation cascade (processes → threads → serial) with numerical health
guards and a log-space underflow rescue; :class:`FaultPlan` injects
deterministic crashes/delays/corruption for testing the recovery paths,
and the process executor natively supports per-task deadlines, bounded
retry with backoff, and arena-preserving pool restarts after a crash.
"""

from repro.sched.stats import ExecutionStats, SpanRecord
from repro.sched.serial import SerialExecutor
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.baselines import DataParallelExecutor, LevelParallelExecutor
from repro.sched.workstealing import WorkStealingExecutor
from repro.sched.process import ProcessSharedMemoryExecutor
from repro.sched.generic import run_dag
from repro.sched.online import OnlineScheduler, TaskHandle
from repro.sched.faults import (
    FaultPlan,
    FaultRecord,
    HealthReport,
    TaskExecutionError,
    check_state_health,
    scan_tables,
)
from repro.sched.resilient import DegradationRecord, ResilientExecutor

__all__ = [
    "ExecutionStats",
    "SpanRecord",
    "SerialExecutor",
    "CollaborativeExecutor",
    "LevelParallelExecutor",
    "DataParallelExecutor",
    "WorkStealingExecutor",
    "ProcessSharedMemoryExecutor",
    "run_dag",
    "OnlineScheduler",
    "TaskHandle",
    "FaultPlan",
    "FaultRecord",
    "HealthReport",
    "TaskExecutionError",
    "check_state_health",
    "scan_tables",
    "DegradationRecord",
    "ResilientExecutor",
]
