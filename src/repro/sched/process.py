"""Shared-memory process executor: Algorithm 2 on real cores, past the GIL.

The threaded executors in this package demonstrate the paper's scheduling
*correctness* but are GIL-bound, so their wall clock cannot show multicore
speedup.  :class:`ProcessSharedMemoryExecutor` runs the same task DAG across
worker *processes* with every potential table, separator and pipeline
intermediate placed in one ``multiprocessing.shared_memory`` arena:

* Workers attach to the arena once (at pool start) and build zero-copy
  numpy views over it via :meth:`PotentialTable.from_buffer`; no table is
  ever pickled during execution.
* The master process runs the Allocate module: it tracks dependency
  degrees, dispatches ready tasks, and applies the Partition module
  (:func:`~repro.tasks.partition_plan.plan_partition`) to split tasks whose
  slice exceeds δ into chunk subtasks spread over the pool.
* Chunks of EXTEND / MULTIPLY / DIVIDE own disjoint slices of the flat
  output and write them in place, so — exactly as
  :func:`~repro.tasks.partition_plan.combine_flops` models — their combiner
  degenerates to bookkeeping.  MARGINALIZE chunks return small partial
  separator tables; the last subtask ``T̂_n`` is a pool-executed combiner
  that sums them into the shared output.
* Tasks whose partitionable slice is at most ``inline_threshold`` entries
  run inline in the master over the same shared views, keeping the tiny
  separator-sized divides off the IPC path.

Results match :class:`~repro.sched.serial.SerialExecutor` to floating-point
round-off (identical when no marginalization is partitioned).  Speedup
needs genuinely parallel hardware and tables large enough that numpy time
dominates dispatch; ``benchmarks/bench_real_executors.py`` records the
curve.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.integrity.checksum import TornWriteError, crc32_regions
from repro.potential import partition as chunked
from repro.potential.primitives import PrimitiveKind, divide, extend, marginalize
from repro.potential.table import PotentialTable
from repro.sched.faults import (
    FaultPlan,
    FaultRecord,
    TaskExecutionError,
    corrupt_array,
)
from repro.sched.stats import ExecutionStats
from repro.tasks.partition_plan import plan_partition
from repro.tasks.state import PropagationState
from repro.tasks.task import TaskGraph

_FLOAT_BYTES = np.dtype(np.float64).itemsize


class _Slot(NamedTuple):
    """Location and scope of one table inside the shared arena."""

    offset: int  # byte offset
    variables: Tuple[int, ...]
    cardinalities: Tuple[int, ...]


class _TaskSpec(NamedTuple):
    """Everything a worker needs to execute one task (no numeric payload)."""

    tid: int
    kind: PrimitiveKind
    phase: str
    edge: Tuple[int, int]
    source: int
    target: int


def _attach_tables(buf, layout: Dict[tuple, _Slot]) -> Dict[tuple, PotentialTable]:
    """Zero-copy table views over a shared buffer, one per layout slot."""
    return {
        key: PotentialTable.from_buffer(
            slot.variables, slot.cardinalities, buf, slot.offset
        )
        for key, slot in layout.items()
    }


class _ShmOps:
    """Primitive execution against shared-memory table views.

    Mirrors :class:`~repro.tasks.state.PropagationState` semantics but
    writes results into preallocated buffers instead of rebinding table
    objects, so master and workers observe each other's updates.
    """

    def __init__(self, tables: Dict[tuple, PotentialTable]):
        self.tables = tables

    def _keys(self, spec: _TaskSpec):
        inter = lambda stage: ("inter", spec.phase, spec.edge, stage)  # noqa: E731
        return {
            "src": ("pot", spec.source),
            "tgt": ("pot", spec.target),
            "sep": ("sep", spec.edge),
            "sep_new": inter("sep_new"),
            "ratio": inter("ratio"),
            "extended": inter("extended"),
        }

    def run_task(self, spec: _TaskSpec) -> None:
        k = self._keys(spec)
        t = self.tables
        if spec.kind is PrimitiveKind.MARGINALIZE:
            out = t[k["sep_new"]]
            out.values[...] = marginalize(t[k["src"]], out.variables).values
        elif spec.kind is PrimitiveKind.DIVIDE:
            sep_new, sep, ratio = t[k["sep_new"]], t[k["sep"]], t[k["ratio"]]
            ratio.values[...] = divide(sep_new, sep).values
            sep.values[...] = sep_new.values
        elif spec.kind is PrimitiveKind.EXTEND:
            out = t[k["extended"]]
            out.values[...] = extend(
                t[k["ratio"]], out.variables, out.cardinalities
            ).values
        elif spec.kind is PrimitiveKind.MULTIPLY:
            t[k["tgt"]].values[...] *= t[k["extended"]].values
        else:
            raise ValueError(f"task {spec.tid} has unexpected kind {spec.kind}")

    def run_chunk(self, spec: _TaskSpec, lo: int, hi: int) -> Optional[np.ndarray]:
        """One chunk; returns a partial table only for MARGINALIZE."""
        k = self._keys(spec)
        t = self.tables
        if spec.kind is PrimitiveKind.MARGINALIZE:
            onto = t[k["sep_new"]].variables
            partial = chunked.marginalize_chunk(t[k["src"]], onto, lo, hi)
            return partial.values.reshape(-1)
        if spec.kind is PrimitiveKind.DIVIDE:
            sep_new = t[k["sep_new"]].values.reshape(-1)
            sep = t[k["sep"]].values.reshape(-1)
            chunked.divide_chunk_into(
                t[k["ratio"]].values.reshape(-1), sep_new, sep, lo, hi
            )
            # The old separator slice is consumed above; promote the new one.
            sep[lo:hi] = sep_new[lo:hi]
            return None
        if spec.kind is PrimitiveKind.EXTEND:
            out = t[k["extended"]]
            chunked.extend_chunk_into(
                out.values.reshape(-1),
                t[k["ratio"]],
                out.variables,
                out.cardinalities,
                lo,
                hi,
            )
            return None
        if spec.kind is PrimitiveKind.MULTIPLY:
            chunked.multiply_chunk_into(
                t[k["tgt"]].values.reshape(-1),
                t[k["extended"]].values.reshape(-1),
                lo,
                hi,
            )
            return None
        raise ValueError(f"task {spec.tid} has unexpected kind {spec.kind}")

    def combine_marginalize(self, spec: _TaskSpec, parts: List[np.ndarray]) -> None:
        """The last subtask ``T̂_n``: sum chunk partials into the shared output."""
        out = self.tables[("inter", spec.phase, spec.edge, "sep_new")]
        chunked.add_partials_into(out.values.reshape(-1), parts)

    def written_flat(
        self, spec: _TaskSpec, chunk: bool = False
    ) -> List[np.ndarray]:
        """Flat views of every arena region a task (or chunk) writes.

        The checksum contract: a worker stamps crc32 over exactly these
        regions (in this order) after executing, and the master verifies
        the same regions when the result arrives — so the list and its
        order are the protocol, shared across the process boundary via
        this one method.  DIVIDE writes two regions (the ratio *and* the
        promoted separator); MARGINALIZE chunks write nothing shared
        (their partials travel back by pickle), so they return no
        regions and carry no checksum.
        """
        k = self._keys(spec)
        if spec.kind is PrimitiveKind.MARGINALIZE:
            if chunk:
                return []
            return [self.tables[k["sep_new"]].values.reshape(-1)]
        if spec.kind is PrimitiveKind.DIVIDE:
            return [
                self.tables[k["ratio"]].values.reshape(-1),
                self.tables[k["sep"]].values.reshape(-1),
            ]
        if spec.kind is PrimitiveKind.EXTEND:
            return [self.tables[k["extended"]].values.reshape(-1)]
        return [self.tables[k["tgt"]].values.reshape(-1)]

    def output_table(self, spec: _TaskSpec) -> PotentialTable:
        """The table a task writes (fault injection / recovery target)."""
        k = self._keys(spec)
        if spec.kind is PrimitiveKind.MARGINALIZE:
            return self.tables[k["sep_new"]]
        if spec.kind is PrimitiveKind.DIVIDE:
            return self.tables[k["ratio"]]
        if spec.kind is PrimitiveKind.EXTEND:
            return self.tables[k["extended"]]
        return self.tables[k["tgt"]]

    def mutated_flat(self, spec: _TaskSpec) -> Optional[np.ndarray]:
        """Flat view of the buffer a task mutates *non-idempotently*.

        MARGINALIZE and EXTEND fully overwrite their output, so a retry
        after a mid-task crash recomputes the same values.  DIVIDE
        promotes the separator (``sep <- sep_new``) and MULTIPLY updates
        the target in place (``tgt *= extended``); re-running either over
        a partially-updated buffer is wrong, so recovery must restore
        this region from a pre-dispatch snapshot first.
        """
        k = self._keys(spec)
        if spec.kind is PrimitiveKind.DIVIDE:
            return self.tables[k["sep"]].values.reshape(-1)
        if spec.kind is PrimitiveKind.MULTIPLY:
            return self.tables[k["tgt"]].values.reshape(-1)
        return None


# --------------------------------------------------------------------- #
# Worker-process entry points (module-level so they pickle by reference)
# --------------------------------------------------------------------- #

_WORKER: Dict[str, object] = {}


def _worker_init(shm_name: str, layout: Dict[tuple, _Slot], specs) -> None:
    # Attaching re-registers the segment with the resource tracker, but pool
    # workers inherit the master's tracker (fork and spawn alike on POSIX),
    # where re-adding an already-tracked name is a no-op — so the master
    # stays the sole owner of cleanup and no unregister dance is needed.
    shm = shared_memory.SharedMemory(name=shm_name)
    _WORKER["shm"] = shm
    _WORKER["ops"] = _ShmOps(_attach_tables(shm.buf, layout))
    _WORKER["specs"] = specs


def _worker_ping():
    """No-op task: forces worker spawn and reports the worker's pid."""
    return os.getpid()


def _apply_faults(spec: _TaskSpec, delay: float, fail: bool) -> None:
    if delay:
        time.sleep(delay)
    if fail:
        raise ValueError("injected task failure (FaultPlan.fail_task)")


def _stamp_and_tear(
    spec: _TaskSpec, chunk: bool, lo, hi, checksum: bool, torn
) -> Optional[int]:
    """Worker-side checksum stamp over the regions this task wrote.

    Returns the crc32 the master should verify against, or ``None`` when
    checksumming is off (or the task wrote nothing shared).  ``torn``
    injects a torn write: the crc is stamped over the *correct* output
    first, then ``torn`` entries of the written region are scribbled
    with finite garbage — the exact signature of a write torn between
    the worker's stamp and the master's read, invisible to the NaN/Inf
    health scan and caught only by the crc verification.
    """
    if not checksum and torn is None:
        return None
    regions = _WORKER["ops"].written_flat(spec, chunk=chunk)
    if not regions:
        return None
    crc = crc32_regions(regions, lo, hi)
    if torn:
        seg = regions[0] if lo is None else regions[0][lo:hi]
        n = min(int(torn), seg.size)
        if n:
            seg[:n] = 0.5
    return crc


# Each entry point returns ``(pid, elapsed_s, payload, t0_ns, t1_ns, crc)``.
# The ns pair is captured worker-side on the system-wide monotonic clock
# (perf_counter_ns is CLOCK_MONOTONIC on Linux, fork and spawn alike), so
# the master can merge worker execution spans onto its own timeline — the
# process-executor form of per-pid buffers merged at join.  ``crc`` is the
# torn-write-detection stamp (None when checksumming is off).


def _exec_task(
    tid: int, delay: float = 0.0, corrupt=None, fail: bool = False,
    torn=None, checksum: bool = False,
):
    spec = _WORKER["specs"][tid]
    t0 = time.perf_counter_ns()
    try:
        _apply_faults(spec, delay, fail)
        _WORKER["ops"].run_task(spec)
        if corrupt is not None:
            corrupt_array(_WORKER["ops"].output_table(spec).values, corrupt)
        crc = _stamp_and_tear(spec, False, None, None, checksum, torn)
    except TaskExecutionError:
        raise
    except Exception as exc:
        raise TaskExecutionError.wrap(exc, spec) from exc
    t1 = time.perf_counter_ns()
    return os.getpid(), (t1 - t0) * 1e-9, None, t0, t1, crc


def _exec_chunk(
    tid: int, lo: int, hi: int,
    delay: float = 0.0, corrupt=None, fail: bool = False,
    torn=None, checksum: bool = False,
):
    spec = _WORKER["specs"][tid]
    t0 = time.perf_counter_ns()
    try:
        _apply_faults(spec, delay, fail)
        partial = _WORKER["ops"].run_chunk(spec, lo, hi)
        if corrupt is not None:
            if partial is not None:
                corrupt_array(partial, corrupt)
            else:
                out = _WORKER["ops"].output_table(spec).values.reshape(-1)
                corrupt_array(out[lo:hi], corrupt)
        crc = _stamp_and_tear(spec, True, lo, hi, checksum, torn)
    except TaskExecutionError:
        raise
    except Exception as exc:
        raise TaskExecutionError.wrap(exc, spec, chunk=(lo, hi)) from exc
    t1 = time.perf_counter_ns()
    return os.getpid(), (t1 - t0) * 1e-9, partial, t0, t1, crc


def _exec_combine(
    tid: int, parts: List[np.ndarray],
    delay: float = 0.0, corrupt=None, fail: bool = False,
    torn=None, checksum: bool = False,
):
    spec = _WORKER["specs"][tid]
    t0 = time.perf_counter_ns()
    try:
        _apply_faults(spec, delay, fail)
        _WORKER["ops"].combine_marginalize(spec, parts)
        if corrupt is not None:
            corrupt_array(_WORKER["ops"].output_table(spec).values, corrupt)
        crc = _stamp_and_tear(spec, False, None, None, checksum, torn)
    except TaskExecutionError:
        raise
    except Exception as exc:
        raise TaskExecutionError.wrap(exc, spec) from exc
    t1 = time.perf_counter_ns()
    return os.getpid(), (t1 - t0) * 1e-9, None, t0, t1, crc


class _ChunkProgress:
    """Outstanding chunks of one partitioned task (master-side bookkeeping)."""

    __slots__ = ("ranges", "parts", "remaining")

    def __init__(self, ranges):
        self.ranges = ranges
        self.parts: List[Optional[np.ndarray]] = [None] * len(ranges)
        self.remaining = len(ranges)


class _Dispatch:
    """One pool submission and its recovery bookkeeping.

    ``kind`` is ``"task"``, ``"chunk"`` or ``"combine"``; ``snapshot``
    holds the pre-dispatch copy of the non-idempotently mutated region
    (DIVIDE's separator, MULTIPLY's target slice) restored before any
    retry, ``deadline`` the monotonic-clock instant after which the
    dispatch counts as hung, and ``submit_ns`` the submission timestamp
    used for tracing the dispatch round-trip.
    """

    __slots__ = ("kind", "tid", "idx", "lo", "hi",
                 "attempts", "deadline", "snapshot", "submit_ns")

    def __init__(self, kind: str, tid: int, idx: int = 0,
                 lo: int = 0, hi: int = 0):
        self.kind = kind
        self.tid = tid
        self.idx = idx
        self.lo = lo
        self.hi = hi
        self.attempts = 0
        self.deadline: Optional[float] = None
        self.snapshot: Optional[np.ndarray] = None
        self.submit_ns: int = 0


def _kill_pids(pids) -> None:
    """SIGKILL each pid, ignoring already-dead or foreign processes."""
    for pid in pids:
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass


class ProcessSharedMemoryExecutor:
    """Algorithm 2 over a process pool with shared-memory potential tables.

    Parameters
    ----------
    num_workers:
        Worker-process count (the paper's ``P``; the master is extra and
        only runs sub-``inline_threshold`` tasks).
    partition_threshold:
        The paper's δ in table entries; tasks above it are split into chunk
        subtasks spread over the pool.  ``None`` disables partitioning.
    max_chunks:
        Upper bound on chunks per partitioned task.
    inline_threshold:
        Tasks whose partitionable slice has at most this many entries run
        inline in the master instead of paying a dispatch round-trip.
        ``0`` forces everything through the pool (useful for testing).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheapest) and ``spawn`` elsewhere.
    task_timeout:
        Per-dispatch deadline in seconds.  A pooled task/chunk that does
        not complete in time is treated as hung: the pool's workers are
        killed, the pool is restarted over the same shared arena, and
        every in-flight dispatch is re-issued (the overdue one counts
        against its retry budget).  ``None`` (default) disables deadlines.
    max_retries:
        How many times one dispatch may be retried after a worker-side
        exception or a missed deadline before the run fails.  ``0``
        (default) fails fast, exactly like the pre-fault-tolerance
        executor.
    retry_backoff:
        Base of the exponential backoff slept before the n-th retry of a
        failed dispatch (``retry_backoff * 2**(n-1)`` seconds).
    max_pool_restarts:
        Hard cap on arena-preserving pool restarts (crash recovery and
        deadline recovery combined) before the run gives up.
    fault_plan:
        A :class:`~repro.sched.faults.FaultPlan` of injected faults for
        deterministic recovery testing.  Plans are single-use; pass a
        fresh one per ``run()``.  Faults apply to pool-dispatched work
        (inline master-side tasks are never faulted).
    verify_writes:
        Torn-write detection: workers stamp a crc32 over exactly the
        arena regions each pooled task/chunk wrote, and the master
        re-verifies those bytes when the result arrives, raising
        :class:`~repro.integrity.checksum.TornWriteError` (attributed to
        the tid and chunk range) on mismatch instead of absorbing a torn
        table.  ``None`` (default) enables verification exactly when
        resilience features are active — the fault-free fast path pays
        no checksum cost; ``True``/``False`` force it.  Detection is
        deliberately non-retryable: after a stamped checksum disagrees
        with the arena, every downstream table is suspect, so the run
        fails fast and the serving layer recycles the session from a
        checkpoint.

    Resilience features (a deadline, a retry budget, or a fault plan)
    switch the pool to eager worker spawn so worker pids are known up
    front; ``stats.worker_pids`` then lists every worker that was ever
    alive, with replacement workers appended after the master's slot.
    """

    # The shared arena lays tables out per single case; batched states are
    # refused (TaskExecutionError) so callers fall back to per-case runs.
    supports_batched_state = False

    def __init__(
        self,
        num_workers: int = 4,
        partition_threshold: Optional[int] = None,
        max_chunks: int = 32,
        inline_threshold: int = 2048,
        start_method: Optional[str] = None,
        task_timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff: float = 0.05,
        max_pool_restarts: int = 3,
        fault_plan: Optional[FaultPlan] = None,
        verify_writes: Optional[bool] = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if partition_threshold is not None and partition_threshold < 1:
            raise ValueError("partition_threshold must be >= 1 or None")
        if max_chunks < 2:
            raise ValueError("max_chunks must be >= 2")
        if inline_threshold < 0:
            raise ValueError("inline_threshold must be >= 0")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be > 0 or None")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be >= 0")
        methods = mp.get_all_start_methods()
        if start_method is not None and start_method not in methods:
            raise ValueError(
                f"start_method must be one of {methods}, got {start_method!r}"
            )
        self.num_workers = num_workers
        self.partition_threshold = partition_threshold
        self.max_chunks = max_chunks
        self.inline_threshold = inline_threshold
        self.start_method = start_method or (
            "fork" if "fork" in methods else methods[0]
        )
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.max_pool_restarts = max_pool_restarts
        self.fault_plan = fault_plan
        self.verify_writes = verify_writes
        # Live pool-worker pids (refreshed at every pool (re)start when
        # resilience features are active); lets tests and monitors target
        # a worker externally, e.g. ``os.kill(executor.worker_pids()[0], 9)``.
        self._pool_pids: List[int] = []

    @property
    def _resilient(self) -> bool:
        return (
            self.task_timeout is not None
            or self.max_retries > 0
            or self.fault_plan is not None
        )

    def worker_pids(self) -> List[int]:
        """Pids of the current pool's workers (resilient mode only)."""
        return list(self._pool_pids)

    # ------------------------------------------------------------------ #

    def _build_layout(self, plan):
        """Byte offsets for every planned table; returns (layout, total_bytes)."""
        layout: Dict[tuple, _Slot] = {}
        offset = 0
        for key, variables, cards, _init in plan:
            layout[key] = _Slot(offset, tuple(variables), tuple(cards))
            count = 1
            for c in cards:
                count *= c
            offset += count * _FLOAT_BYTES
        return layout, offset

    def run(
        self,
        graph: TaskGraph,
        state: PropagationState,
        tracer=None,
        deadline: Optional[float] = None,
    ) -> ExecutionStats:
        """Run the graph; ``deadline`` is an absolute ``time.monotonic()``
        instant for the *whole run* (distinct from ``task_timeout``, the
        per-dispatch budget).  The master checks it at every dispatch and
        wait boundary; an overrun raises
        :class:`~repro.sched.faults.TaskExecutionError` with
        ``phase="deadline"`` after quiescing the pool."""
        p = self.num_workers
        master_slot = p  # trailing per-worker stats slot for inline work
        stats = ExecutionStats(
            num_threads=p,
            compute_time=[0.0] * (p + 1),
            sched_time=[0.0] * (p + 1),
            tasks_per_thread=[0] * (p + 1),
            worker_pids=[0] * (p + 1),
            master_slot=master_slot,
        )
        stats.worker_pids[master_slot] = os.getpid()
        if graph.num_tasks == 0:
            return stats
        if getattr(state, "batch", None) is not None:
            raise TaskExecutionError(
                "process executor does not support batched states; "
                "run each case separately"
            )

        plan = state.shared_table_plan(graph)
        layout, total_bytes = self._build_layout(plan)
        specs = {}
        for task in graph.tasks:
            source, _sep_vars, _sep_cards, target = state.edge_scopes(task)
            specs[task.tid] = _TaskSpec(
                task.tid, task.kind, task.phase, task.edge, source, target
            )
        shm = shared_memory.SharedMemory(create=True, size=max(total_bytes, 1))
        stats.shared_bytes = total_bytes
        start = time.perf_counter()
        try:
            tables = _attach_tables(shm.buf, layout)
            for key, _vars, _cards, init in plan:
                if init is None:
                    tables[key].values[...] = 0.0
                else:
                    tables[key].values[...] = init
            ops = _ShmOps(tables)
            ctx = mp.get_context(self.start_method)

            def make_pool() -> ProcessPoolExecutor:
                return ProcessPoolExecutor(
                    max_workers=p,
                    mp_context=ctx,
                    initializer=_worker_init,
                    initargs=(shm.name, layout, specs),
                )

            self._schedule(
                graph, specs, ops, make_pool, stats, master_slot, tracer,
                deadline=deadline,
            )
            stats.wall_time = time.perf_counter() - start
            state.absorb_shared(tables)
        except BaseException as exc:
            # Frames in the traceback pin the numpy views over the arena;
            # clear them so the buffer can actually be released below.
            traceback.clear_frames(exc.__traceback__)
            raise
        finally:
            # Drop every view before freeing the arena (numpy arrays keep
            # the exported buffer alive, which would make close() fail).
            tables = ops = None
            try:
                shm.close()
            except BufferError:  # a stray view survived; unlink regardless
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # already unlinked by a dying tracker
                pass
        return stats

    # ------------------------------------------------------------------ #

    def _schedule(
        self, graph, specs, ops, make_pool, stats, master_slot, tracer=None,
        deadline=None,
    ):
        """The master's Allocate loop: dispatch ready tasks, resolve deps.

        In resilient mode (a deadline, a retry budget, or a fault plan)
        the loop additionally: snapshots the non-idempotently mutated
        region of each DIVIDE/MULTIPLY dispatch so it can be restored
        before any retry; retries worker-side failures with exponential
        backoff; detects ``BrokenProcessPool`` and missed deadlines,
        kills the (possibly hung) workers, restarts the pool over the
        same shared arena, and re-issues every in-flight dispatch.
        """
        p = self.num_workers
        resilient = self._resilient
        verify = (
            self.verify_writes
            if self.verify_writes is not None
            else resilient
        )
        plan = self.fault_plan
        dep_count = graph.indegrees()
        ready = deque(graph.roots())
        pending: Dict[object, _Dispatch] = {}
        requeue: List[_Dispatch] = []
        progress: Dict[int, _ChunkProgress] = {}
        completed = 0
        pid_slots: Dict[int, int] = {}
        counters = {"dispatch": 0}
        broken = [False]

        if tracer is not None:
            # The master thread is the only writer of every buffer here:
            # worker-process spans arrive as (t0, t1) pairs in results and
            # are recorded master-side into the owning worker's row.
            from repro.obs.span import CAT_FAULT, CAT_IPC, CAT_SCHED, IPC_ROW

            mbuf = tracer.bind(master_slot)
            tracer.name_row(master_slot, "master")
            tracer.name_row(IPC_ROW, "ipc")
            ipc_buf = tracer.buffer(IPC_ROW)
        else:
            mbuf = ipc_buf = None

        def slot_of(pid: int) -> int:
            slot = pid_slots.get(pid)
            if slot is None:
                if len(pid_slots) < p:
                    slot = len(pid_slots)
                else:
                    # Replacement worker after a crash/restart: its own
                    # stats row, appended after the master's slot, instead
                    # of silently merging into slot p-1.
                    slot = len(stats.compute_time)
                    stats.compute_time.append(0.0)
                    stats.sched_time.append(0.0)
                    stats.tasks_per_thread.append(0)
                    stats.worker_pids.append(0)
                    stats.workers_restarted += 1
                pid_slots[pid] = slot
                stats.worker_pids[slot] = pid
                if tracer is not None:
                    tracer.name_row(slot, f"worker-{slot} (pid {pid})")
            return slot

        def finish(tid: int, slot: int) -> None:
            nonlocal completed
            completed += 1
            stats.tasks_executed += 1
            stats.tasks_per_thread[slot] += 1
            for succ in graph.succs[tid]:
                dep_count[succ] -= 1
                if dep_count[succ] == 0:
                    ready.append(succ)

        def start_pool():
            new = make_pool()
            if resilient:
                # Eager spawn: one ping fills the pool, so worker pids are
                # known before any real dispatch (kill faults and hung-pool
                # recovery need someone to signal).
                try:
                    new.submit(_worker_ping).result(timeout=60.0)
                except Exception:
                    new.shutdown(wait=False, cancel_futures=True)
                    raise
                self._pool_pids = sorted(getattr(new, "_processes", None) or {})
                for wpid in self._pool_pids:
                    slot_of(wpid)
            else:
                self._pool_pids = []
            return new

        pool = start_pool()

        def take_snapshot(disp: "_Dispatch"):
            if not resilient or disp.kind == "combine":
                return None
            flat = ops.mutated_flat(specs[disp.tid])
            if flat is None:
                return None
            if disp.kind == "chunk":
                return flat[disp.lo:disp.hi].copy()
            return flat.copy()

        def restore_snapshot(disp: "_Dispatch") -> None:
            if disp.kind == "combine":
                # Re-zero a possibly partially-summed MARGINALIZE output so
                # the additive combiner restarts from a clean slate.
                ops.output_table(specs[disp.tid]).values[...] = 0.0
                return
            if disp.snapshot is None:
                return
            flat = ops.mutated_flat(specs[disp.tid])
            if disp.kind == "chunk":
                flat[disp.lo:disp.hi] = disp.snapshot
            else:
                flat[:] = disp.snapshot

        def dispatch(disp: "_Dispatch") -> None:
            if broken[0]:
                requeue.append(disp)
                return
            if plan is not None and self._pool_pids:
                offset = plan.take_kill(counters["dispatch"])
                if offset is not None:
                    victim = self._pool_pids[offset % len(self._pool_pids)]
                    _kill_pids([victim])
                    stats.fault_events.append(FaultRecord(
                        "kill", disp.tid,
                        f"SIGKILL worker {victim} before dispatch "
                        f"{counters['dispatch']}",
                    ))
                    if mbuf is not None:
                        mbuf.instant(f"fault:kill pid {victim}", CAT_FAULT)
            delay = plan.take_delay(disp.tid) if plan is not None else 0.0
            corrupt = plan.take_corruption(disp.tid) if plan is not None else None
            fail = plan.take_failure(disp.tid) if plan is not None else False
            torn = None
            if plan is not None and not (
                disp.kind == "chunk"
                and specs[disp.tid].kind is PrimitiveKind.MARGINALIZE
            ):
                # MARGINALIZE chunks write nothing shared (partials travel
                # by pickle), so a torn write there cannot exist; leave the
                # fault armed for a dispatch that actually writes the arena.
                torn = plan.take_torn(disp.tid)
            if delay:
                stats.fault_events.append(
                    FaultRecord("delay", disp.tid, f"{delay:g}s"))
            if corrupt is not None:
                stats.fault_events.append(
                    FaultRecord("corrupt", disp.tid, str(corrupt)))
            if fail:
                stats.fault_events.append(
                    FaultRecord("fail", disp.tid, "injected exception"))
            if torn is not None:
                stats.fault_events.append(FaultRecord(
                    "torn", disp.tid,
                    f"{torn} entries scribbled after checksum stamp"))
            if mbuf is not None and (
                delay or corrupt is not None or fail or torn is not None
            ):
                mbuf.instant(f"fault:inject#{disp.tid}", CAT_FAULT)
            disp.submit_ns = time.perf_counter_ns()
            try:
                if disp.kind == "task":
                    fut = pool.submit(
                        _exec_task, disp.tid, delay, corrupt, fail,
                        torn, verify)
                elif disp.kind == "chunk":
                    fut = pool.submit(
                        _exec_chunk, disp.tid, disp.lo, disp.hi,
                        delay, corrupt, fail, torn, verify)
                else:
                    fut = pool.submit(
                        _exec_combine, disp.tid, progress[disp.tid].parts,
                        delay, corrupt, fail, torn, verify)
            except BrokenProcessPool:
                if not resilient:
                    raise
                broken[0] = True
                requeue.append(disp)
                return
            counters["dispatch"] += 1
            if self.task_timeout is not None:
                disp.deadline = time.monotonic() + self.task_timeout
            pending[fut] = disp

        def recover(reason: str) -> None:
            """Arena-preserving pool restart + re-dispatch of in-flight work."""
            nonlocal pool
            if not resilient:
                raise RuntimeError(
                    f"process pool broke ({reason}) with resilience disabled"
                )
            if mbuf is not None:
                mbuf.instant(f"fault:pool-restart ({reason})", CAT_FAULT)
            requeue.extend(pending.values())
            pending.clear()
            while True:
                stats.pool_restarts += 1
                if stats.pool_restarts > self.max_pool_restarts:
                    raise RuntimeError(
                        f"process executor giving up after "
                        f"{stats.pool_restarts - 1} pool restarts ({reason})"
                    )
                # Hung workers never drain the call queue; kill them so
                # shutdown() returns instead of joining a sleeping child.
                _kill_pids(self._pool_pids)
                try:
                    pool.shutdown(wait=True, cancel_futures=True)
                except Exception:
                    pass
                pool = start_pool()
                broken[0] = False
                batch, requeue[:] = list(requeue), []
                for disp in batch:
                    restore_snapshot(disp)
                for disp in batch:
                    dispatch(disp)
                if not broken[0]:
                    return
                requeue.extend(pending.values())
                pending.clear()

        def handle_deadlines() -> None:
            if self.task_timeout is None or not pending:
                return
            now = time.monotonic()
            overdue = [
                d for d in pending.values()
                if d.deadline is not None and d.deadline <= now
            ]
            if not overdue:
                return
            stats.deadline_misses += len(overdue)
            for disp in overdue:
                disp.attempts += 1
                spec = specs[disp.tid]
                stats.fault_events.append(FaultRecord(
                    "deadline", disp.tid,
                    f"attempt {disp.attempts} exceeded "
                    f"{self.task_timeout:g}s",
                ))
                if mbuf is not None:
                    mbuf.instant(f"fault:deadline#{disp.tid}", CAT_FAULT)
                if disp.attempts > self.max_retries:
                    raise TaskExecutionError(
                        f"task {disp.tid} ({spec.kind.value}, {spec.phase}, "
                        f"edge {spec.edge}) missed its "
                        f"{self.task_timeout:g}s deadline "
                        f"{disp.attempts} time(s)",
                        tid=disp.tid,
                        kind=spec.kind.value,
                        phase=spec.phase,
                        edge=tuple(spec.edge),
                        chunk=(disp.lo, disp.hi)
                        if disp.kind == "chunk" else None,
                    )
                stats.retries_total += 1
            recover("deadline miss")

        def check_run_deadline() -> None:
            """Whole-run deadline (distinct from the per-dispatch timeout)."""
            if deadline is not None and time.monotonic() >= deadline:
                stats.deadline_misses += 1
                raise TaskExecutionError(
                    f"process propagation exceeded its deadline with "
                    f"{graph.num_tasks - completed} of {graph.num_tasks} "
                    f"tasks unexecuted",
                    phase="deadline",
                )

        try:
            while completed < graph.num_tasks:
                check_run_deadline()
                while ready:
                    tid = ready.popleft()
                    task = graph.tasks[tid]
                    ranges = plan_partition(
                        task, self.partition_threshold, self.max_chunks
                    )
                    if ranges is not None:
                        stats.tasks_partitioned += 1
                        progress[tid] = _ChunkProgress(ranges)
                        for idx, (lo, hi) in enumerate(ranges):
                            disp = _Dispatch("chunk", tid, idx, lo, hi)
                            disp.snapshot = take_snapshot(disp)
                            dispatch(disp)
                    elif task.partition_size <= self.inline_threshold:
                        t0 = time.perf_counter_ns()
                        ops.run_task(specs[tid])
                        t1 = time.perf_counter_ns()
                        if mbuf is not None:
                            mbuf.task_span(
                                "inline", tid, t0, t1, pid=os.getpid()
                            )
                        stats.compute_time[master_slot] += (t1 - t0) * 1e-9
                        stats.tasks_inline += 1
                        finish(tid, master_slot)
                    else:
                        disp = _Dispatch("task", tid)
                        disp.snapshot = take_snapshot(disp)
                        dispatch(disp)
                if broken[0]:
                    stats.fault_events.append(FaultRecord(
                        "pool-broken", None, "pool broke during dispatch"))
                    recover("broken pool during dispatch")
                    continue
                if completed == graph.num_tasks:
                    break
                if not pending:
                    raise RuntimeError(
                        f"process executor stalled with "
                        f"{graph.num_tasks - completed} tasks unexecuted"
                    )
                timeout = None
                if self.task_timeout is not None:
                    deadlines = [
                        d.deadline for d in pending.values()
                        if d.deadline is not None
                    ]
                    if deadlines:
                        timeout = max(min(deadlines) - time.monotonic(), 0.0)
                if deadline is not None:
                    # Wake in time to notice a whole-run deadline overrun.
                    remaining_s = max(deadline - time.monotonic(), 0.0)
                    timeout = (
                        remaining_s if timeout is None
                        else min(timeout, remaining_s)
                    )
                if mbuf is not None:
                    mbuf.sample_queue(len(pending))
                t0 = time.perf_counter_ns()
                done, _ = wait(
                    list(pending), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                t1 = time.perf_counter_ns()
                if mbuf is not None:
                    mbuf.span("wait", CAT_SCHED, t0, t1)
                stats.sched_time[master_slot] += (t1 - t0) * 1e-9
                for fut in done:
                    disp = pending.pop(fut, None)
                    if disp is None:
                        # A recover() this batch already re-dispatched it.
                        continue
                    try:
                        pid, elapsed, payload, t0_ns, t1_ns, crc = fut.result()
                    except BrokenProcessPool as exc:
                        if not resilient:
                            raise
                        stats.fault_events.append(FaultRecord(
                            "pool-broken", disp.tid,
                            str(exc) or "worker died"))
                        requeue.append(disp)
                        recover("BrokenProcessPool")
                        continue
                    except Exception:
                        disp.attempts += 1
                        if disp.attempts > self.max_retries:
                            raise
                        stats.retries_total += 1
                        if mbuf is not None:
                            mbuf.instant(
                                f"fault:retry#{disp.tid} "
                                f"(attempt {disp.attempts})",
                                CAT_FAULT,
                            )
                        if self.retry_backoff:
                            time.sleep(
                                self.retry_backoff
                                * (2 ** (disp.attempts - 1))
                            )
                        restore_snapshot(disp)
                        dispatch(disp)
                        continue
                    if verify and crc is not None:
                        spec = specs[disp.tid]
                        chunked_disp = disp.kind == "chunk"
                        actual = crc32_regions(
                            ops.written_flat(spec, chunk=chunked_disp),
                            disp.lo if chunked_disp else None,
                            disp.hi if chunked_disp else None,
                        )
                        if actual != crc:
                            # Non-retryable by design: the arena disagrees
                            # with what the worker computed, so every table
                            # downstream of the tear is suspect.  Fail the
                            # run; the serving layer recycles the session.
                            stats.torn_writes_detected += 1
                            stats.fault_events.append(FaultRecord(
                                "torn-write", disp.tid,
                                f"stamped {crc:#010x}, arena {actual:#010x}",
                            ))
                            if mbuf is not None:
                                mbuf.instant(
                                    f"fault:torn-write#{disp.tid}", CAT_FAULT
                                )
                            where = (
                                f", chunk [{disp.lo}, {disp.hi})"
                                if chunked_disp else ""
                            )
                            raise TornWriteError(
                                f"torn write detected: task {disp.tid} "
                                f"({spec.kind.value}, {spec.phase}, edge "
                                f"{spec.edge}{where}) stamped checksum "
                                f"{crc:#010x} but the arena reads "
                                f"{actual:#010x}",
                                tid=disp.tid,
                                kind=spec.kind.value,
                                phase=spec.phase,
                                edge=tuple(spec.edge),
                                chunk=(disp.lo, disp.hi)
                                if chunked_disp else None,
                            )
                    slot = slot_of(pid)
                    if tracer is not None:
                        tracer.buffer(slot).task_span(
                            disp.kind, disp.tid, t0_ns, t1_ns,
                            disp.lo if disp.kind == "chunk" else -1,
                            disp.hi if disp.kind == "chunk" else -1,
                            pid=pid,
                        )
                        now_ns = time.perf_counter_ns()
                        ipc_buf.span(
                            f"rtt#{disp.tid}", CAT_IPC, disp.submit_ns, now_ns
                        )
                        ipc_buf.count(
                            "ipc_overhead_ns",
                            (now_ns - disp.submit_ns) - (t1_ns - t0_ns),
                        )
                        ipc_buf.count("dispatches")
                    stats.compute_time[slot] += elapsed
                    if disp.kind == "task":
                        finish(disp.tid, slot)
                    elif disp.kind == "combine":
                        progress.pop(disp.tid)
                        finish(disp.tid, slot)
                    else:
                        prog = progress[disp.tid]
                        prog.parts[disp.idx] = payload
                        prog.remaining -= 1
                        stats.chunks_executed += 1
                        if prog.remaining == 0:
                            if graph.tasks[disp.tid].kind is (
                                    PrimitiveKind.MARGINALIZE):
                                dispatch(_Dispatch("combine", disp.tid))
                            else:
                                # Concatenating chunks wrote the output in
                                # place; the combiner is pure bookkeeping.
                                progress.pop(disp.tid)
                                finish(disp.tid, slot)
                if broken[0]:
                    recover("broken pool during retry dispatch")
                handle_deadlines()
        except BaseException:
            # Quiesce before the arena teardown in run(): drop queued work,
            # kill possibly-hung workers, and wait the pool down so no live
            # worker races the shared-memory unlink.
            for fut in list(pending):
                fut.cancel()
            if resilient:
                _kill_pids(self._pool_pids)
            try:
                pool.shutdown(wait=True, cancel_futures=True)
            except Exception:
                pass
            raise
        pool.shutdown(wait=True)
