"""Shared-memory process executor: Algorithm 2 on real cores, past the GIL.

The threaded executors in this package demonstrate the paper's scheduling
*correctness* but are GIL-bound, so their wall clock cannot show multicore
speedup.  :class:`ProcessSharedMemoryExecutor` runs the same task DAG across
worker *processes* with every potential table, separator and pipeline
intermediate placed in one ``multiprocessing.shared_memory`` arena:

* Workers attach to the arena once (at pool start) and build zero-copy
  numpy views over it via :meth:`PotentialTable.from_buffer`; no table is
  ever pickled during execution.
* The master process runs the Allocate module: it tracks dependency
  degrees, dispatches ready tasks, and applies the Partition module
  (:func:`~repro.tasks.partition_plan.plan_partition`) to split tasks whose
  slice exceeds δ into chunk subtasks spread over the pool.
* Chunks of EXTEND / MULTIPLY / DIVIDE own disjoint slices of the flat
  output and write them in place, so — exactly as
  :func:`~repro.tasks.partition_plan.combine_flops` models — their combiner
  degenerates to bookkeeping.  MARGINALIZE chunks return small partial
  separator tables; the last subtask ``T̂_n`` is a pool-executed combiner
  that sums them into the shared output.
* Tasks whose partitionable slice is at most ``inline_threshold`` entries
  run inline in the master over the same shared views, keeping the tiny
  separator-sized divides off the IPC path.

Results match :class:`~repro.sched.serial.SerialExecutor` to floating-point
round-off (identical when no marginalization is partitioned).  Speedup
needs genuinely parallel hardware and tables large enough that numpy time
dominates dispatch; ``benchmarks/bench_real_executors.py`` records the
curve.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from multiprocessing import shared_memory
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.potential import partition as chunked
from repro.potential.primitives import PrimitiveKind, divide, extend, marginalize
from repro.potential.table import PotentialTable
from repro.sched.stats import ExecutionStats
from repro.tasks.partition_plan import plan_partition
from repro.tasks.state import PropagationState
from repro.tasks.task import TaskGraph

_FLOAT_BYTES = np.dtype(np.float64).itemsize


class _Slot(NamedTuple):
    """Location and scope of one table inside the shared arena."""

    offset: int  # byte offset
    variables: Tuple[int, ...]
    cardinalities: Tuple[int, ...]


class _TaskSpec(NamedTuple):
    """Everything a worker needs to execute one task (no numeric payload)."""

    tid: int
    kind: PrimitiveKind
    phase: str
    edge: Tuple[int, int]
    source: int
    target: int


def _attach_tables(buf, layout: Dict[tuple, _Slot]) -> Dict[tuple, PotentialTable]:
    """Zero-copy table views over a shared buffer, one per layout slot."""
    return {
        key: PotentialTable.from_buffer(
            slot.variables, slot.cardinalities, buf, slot.offset
        )
        for key, slot in layout.items()
    }


class _ShmOps:
    """Primitive execution against shared-memory table views.

    Mirrors :class:`~repro.tasks.state.PropagationState` semantics but
    writes results into preallocated buffers instead of rebinding table
    objects, so master and workers observe each other's updates.
    """

    def __init__(self, tables: Dict[tuple, PotentialTable]):
        self.tables = tables

    def _keys(self, spec: _TaskSpec):
        inter = lambda stage: ("inter", spec.phase, spec.edge, stage)  # noqa: E731
        return {
            "src": ("pot", spec.source),
            "tgt": ("pot", spec.target),
            "sep": ("sep", spec.edge),
            "sep_new": inter("sep_new"),
            "ratio": inter("ratio"),
            "extended": inter("extended"),
        }

    def run_task(self, spec: _TaskSpec) -> None:
        k = self._keys(spec)
        t = self.tables
        if spec.kind is PrimitiveKind.MARGINALIZE:
            out = t[k["sep_new"]]
            out.values[...] = marginalize(t[k["src"]], out.variables).values
        elif spec.kind is PrimitiveKind.DIVIDE:
            sep_new, sep, ratio = t[k["sep_new"]], t[k["sep"]], t[k["ratio"]]
            ratio.values[...] = divide(sep_new, sep).values
            sep.values[...] = sep_new.values
        elif spec.kind is PrimitiveKind.EXTEND:
            out = t[k["extended"]]
            out.values[...] = extend(
                t[k["ratio"]], out.variables, out.cardinalities
            ).values
        elif spec.kind is PrimitiveKind.MULTIPLY:
            t[k["tgt"]].values[...] *= t[k["extended"]].values
        else:
            raise ValueError(f"task {spec.tid} has unexpected kind {spec.kind}")

    def run_chunk(self, spec: _TaskSpec, lo: int, hi: int) -> Optional[np.ndarray]:
        """One chunk; returns a partial table only for MARGINALIZE."""
        k = self._keys(spec)
        t = self.tables
        if spec.kind is PrimitiveKind.MARGINALIZE:
            onto = t[k["sep_new"]].variables
            partial = chunked.marginalize_chunk(t[k["src"]], onto, lo, hi)
            return partial.values.reshape(-1)
        if spec.kind is PrimitiveKind.DIVIDE:
            sep_new = t[k["sep_new"]].values.reshape(-1)
            sep = t[k["sep"]].values.reshape(-1)
            chunked.divide_chunk_into(
                t[k["ratio"]].values.reshape(-1), sep_new, sep, lo, hi
            )
            # The old separator slice is consumed above; promote the new one.
            sep[lo:hi] = sep_new[lo:hi]
            return None
        if spec.kind is PrimitiveKind.EXTEND:
            out = t[k["extended"]]
            chunked.extend_chunk_into(
                out.values.reshape(-1),
                t[k["ratio"]],
                out.variables,
                out.cardinalities,
                lo,
                hi,
            )
            return None
        if spec.kind is PrimitiveKind.MULTIPLY:
            chunked.multiply_chunk_into(
                t[k["tgt"]].values.reshape(-1),
                t[k["extended"]].values.reshape(-1),
                lo,
                hi,
            )
            return None
        raise ValueError(f"task {spec.tid} has unexpected kind {spec.kind}")

    def combine_marginalize(self, spec: _TaskSpec, parts: List[np.ndarray]) -> None:
        """The last subtask ``T̂_n``: sum chunk partials into the shared output."""
        out = self.tables[("inter", spec.phase, spec.edge, "sep_new")]
        chunked.add_partials_into(out.values.reshape(-1), parts)


# --------------------------------------------------------------------- #
# Worker-process entry points (module-level so they pickle by reference)
# --------------------------------------------------------------------- #

_WORKER: Dict[str, object] = {}


def _worker_init(shm_name: str, layout: Dict[tuple, _Slot], specs) -> None:
    # Attaching re-registers the segment with the resource tracker, but pool
    # workers inherit the master's tracker (fork and spawn alike on POSIX),
    # where re-adding an already-tracked name is a no-op — so the master
    # stays the sole owner of cleanup and no unregister dance is needed.
    shm = shared_memory.SharedMemory(name=shm_name)
    _WORKER["shm"] = shm
    _WORKER["ops"] = _ShmOps(_attach_tables(shm.buf, layout))
    _WORKER["specs"] = specs


def _exec_task(tid: int):
    t0 = time.perf_counter()
    _WORKER["ops"].run_task(_WORKER["specs"][tid])
    return os.getpid(), time.perf_counter() - t0, None


def _exec_chunk(tid: int, lo: int, hi: int):
    t0 = time.perf_counter()
    partial = _WORKER["ops"].run_chunk(_WORKER["specs"][tid], lo, hi)
    return os.getpid(), time.perf_counter() - t0, partial


def _exec_combine(tid: int, parts: List[np.ndarray]):
    t0 = time.perf_counter()
    _WORKER["ops"].combine_marginalize(_WORKER["specs"][tid], parts)
    return os.getpid(), time.perf_counter() - t0, None


class _ChunkProgress:
    """Outstanding chunks of one partitioned task (master-side bookkeeping)."""

    __slots__ = ("ranges", "parts", "remaining")

    def __init__(self, ranges):
        self.ranges = ranges
        self.parts: List[Optional[np.ndarray]] = [None] * len(ranges)
        self.remaining = len(ranges)


class ProcessSharedMemoryExecutor:
    """Algorithm 2 over a process pool with shared-memory potential tables.

    Parameters
    ----------
    num_workers:
        Worker-process count (the paper's ``P``; the master is extra and
        only runs sub-``inline_threshold`` tasks).
    partition_threshold:
        The paper's δ in table entries; tasks above it are split into chunk
        subtasks spread over the pool.  ``None`` disables partitioning.
    max_chunks:
        Upper bound on chunks per partitioned task.
    inline_threshold:
        Tasks whose partitionable slice has at most this many entries run
        inline in the master instead of paying a dispatch round-trip.
        ``0`` forces everything through the pool (useful for testing).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheapest) and ``spawn`` elsewhere.
    """

    def __init__(
        self,
        num_workers: int = 4,
        partition_threshold: Optional[int] = None,
        max_chunks: int = 32,
        inline_threshold: int = 2048,
        start_method: Optional[str] = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if partition_threshold is not None and partition_threshold < 1:
            raise ValueError("partition_threshold must be >= 1 or None")
        if max_chunks < 2:
            raise ValueError("max_chunks must be >= 2")
        if inline_threshold < 0:
            raise ValueError("inline_threshold must be >= 0")
        methods = mp.get_all_start_methods()
        if start_method is not None and start_method not in methods:
            raise ValueError(
                f"start_method must be one of {methods}, got {start_method!r}"
            )
        self.num_workers = num_workers
        self.partition_threshold = partition_threshold
        self.max_chunks = max_chunks
        self.inline_threshold = inline_threshold
        self.start_method = start_method or (
            "fork" if "fork" in methods else methods[0]
        )

    # ------------------------------------------------------------------ #

    def _build_layout(self, plan):
        """Byte offsets for every planned table; returns (layout, total_bytes)."""
        layout: Dict[tuple, _Slot] = {}
        offset = 0
        for key, variables, cards, _init in plan:
            layout[key] = _Slot(offset, tuple(variables), tuple(cards))
            count = 1
            for c in cards:
                count *= c
            offset += count * _FLOAT_BYTES
        return layout, offset

    def run(self, graph: TaskGraph, state: PropagationState) -> ExecutionStats:
        p = self.num_workers
        master_slot = p  # trailing per-worker stats slot for inline work
        stats = ExecutionStats(
            num_threads=p,
            compute_time=[0.0] * (p + 1),
            sched_time=[0.0] * (p + 1),
            tasks_per_thread=[0] * (p + 1),
            worker_pids=[0] * (p + 1),
        )
        stats.worker_pids[master_slot] = os.getpid()
        if graph.num_tasks == 0:
            return stats

        plan = state.shared_table_plan(graph)
        layout, total_bytes = self._build_layout(plan)
        specs = {}
        for task in graph.tasks:
            source, _sep_vars, _sep_cards, target = state.edge_scopes(task)
            specs[task.tid] = _TaskSpec(
                task.tid, task.kind, task.phase, task.edge, source, target
            )
        shm = shared_memory.SharedMemory(create=True, size=max(total_bytes, 1))
        stats.shared_bytes = total_bytes
        start = time.perf_counter()
        try:
            tables = _attach_tables(shm.buf, layout)
            for key, _vars, _cards, init in plan:
                if init is None:
                    tables[key].values[...] = 0.0
                else:
                    tables[key].values[...] = init
            ops = _ShmOps(tables)
            ctx = mp.get_context(self.start_method)
            with ProcessPoolExecutor(
                max_workers=p,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(shm.name, layout, specs),
            ) as pool:
                self._schedule(graph, specs, ops, pool, stats, master_slot)
            stats.wall_time = time.perf_counter() - start
            state.absorb_shared(tables)
        except BaseException as exc:
            # Frames in the traceback pin the numpy views over the arena;
            # clear them so the buffer can actually be released below.
            traceback.clear_frames(exc.__traceback__)
            raise
        finally:
            # Drop every view before freeing the arena (numpy arrays keep
            # the exported buffer alive, which would make close() fail).
            tables = ops = None
            try:
                shm.close()
            except BufferError:  # a stray view survived; unlink regardless
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # already unlinked by a dying tracker
                pass
        return stats

    # ------------------------------------------------------------------ #

    def _schedule(self, graph, specs, ops, pool, stats, master_slot):
        """The master's Allocate loop: dispatch ready tasks, resolve deps."""
        p = self.num_workers
        dep_count = graph.indegrees()
        ready = deque(graph.roots())
        pending = {}  # future -> ("task"|"chunk"|"combine", tid[, chunk idx])
        progress: Dict[int, _ChunkProgress] = {}
        completed = 0
        pid_slots: Dict[int, int] = {}

        def slot_of(pid: int) -> int:
            if pid not in pid_slots:
                slot = len(pid_slots)
                if slot >= p:  # replacement worker after a crash-restart
                    slot = p - 1
                pid_slots[pid] = slot
                stats.worker_pids[slot] = pid
            return pid_slots[pid]

        def finish(tid: int, slot: int) -> None:
            nonlocal completed
            completed += 1
            stats.tasks_executed += 1
            stats.tasks_per_thread[slot] += 1
            for succ in graph.succs[tid]:
                dep_count[succ] -= 1
                if dep_count[succ] == 0:
                    ready.append(succ)

        while completed < graph.num_tasks:
            while ready:
                tid = ready.popleft()
                task = graph.tasks[tid]
                ranges = plan_partition(
                    task, self.partition_threshold, self.max_chunks
                )
                if ranges is not None:
                    stats.tasks_partitioned += 1
                    progress[tid] = _ChunkProgress(ranges)
                    for idx, (lo, hi) in enumerate(ranges):
                        fut = pool.submit(_exec_chunk, tid, lo, hi)
                        pending[fut] = ("chunk", tid, idx)
                elif task.partition_size <= self.inline_threshold:
                    t0 = time.perf_counter()
                    ops.run_task(specs[tid])
                    stats.compute_time[master_slot] += time.perf_counter() - t0
                    stats.tasks_inline += 1
                    finish(tid, master_slot)
                else:
                    fut = pool.submit(_exec_task, tid)
                    pending[fut] = ("task", tid)
            if completed == graph.num_tasks:
                break
            if not pending:
                raise RuntimeError(
                    f"process executor stalled with "
                    f"{graph.num_tasks - completed} tasks unexecuted"
                )
            t0 = time.perf_counter()
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            stats.sched_time[master_slot] += time.perf_counter() - t0
            for fut in done:
                item = pending.pop(fut)
                pid, elapsed, payload = fut.result()
                slot = slot_of(pid)
                stats.compute_time[slot] += elapsed
                kind, tid = item[0], item[1]
                if kind == "task":
                    finish(tid, slot)
                elif kind == "combine":
                    progress.pop(tid)
                    finish(tid, slot)
                else:
                    prog = progress[tid]
                    prog.parts[item[2]] = payload
                    prog.remaining -= 1
                    stats.chunks_executed += 1
                    if prog.remaining == 0:
                        if graph.tasks[tid].kind is PrimitiveKind.MARGINALIZE:
                            fut2 = pool.submit(_exec_combine, tid, prog.parts)
                            pending[fut2] = ("combine", tid)
                        else:
                            # Concatenating chunks wrote the output in place;
                            # the combiner is pure bookkeeping.
                            progress.pop(tid)
                            finish(tid, slot)
