"""Online collaborative scheduling: tasks arrive while workers run.

The static executors receive a complete task graph up front; the paper's
outlook ("online scheduling of DAG structured computations") needs tasks
submitted *during* execution.  :class:`OnlineScheduler` keeps a persistent
worker pool; :meth:`submit` registers a callable with optional
dependencies on earlier submissions and returns a :class:`TaskHandle`
whose :meth:`~TaskHandle.result` blocks until completion.  Allocation
follows Algorithm 2's min-workload rule.

Example::

    with OnlineScheduler(num_threads=4) as pool:
        a = pool.submit(lambda: 2)
        b = pool.submit(lambda: 3)
        c = pool.submit(lambda x, y: x + y, deps=[a, b])
        assert c.result() == 5
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence


class TaskHandle:
    """Future-like handle for one submitted task."""

    def __init__(self, tid: int):
        self.tid = tid
        self._done = threading.Event()
        self._result = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block until the task finishes; re-raises its exception."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"task {self.tid} not finished")
        if self._error is not None:
            raise self._error
        return self._result

    def _finish(self, result=None, error: Optional[BaseException] = None):
        self._result = result
        self._error = error
        self._done.set()


class OnlineScheduler:
    """A persistent collaborative worker pool with dynamic submission.

    Tasks whose dependencies failed are *cancelled*: their handles raise
    the dependency's exception.  Use as a context manager or call
    :meth:`shutdown` explicitly.
    """

    def __init__(self, num_threads: int = 4):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self._lock = threading.Lock()
        self._handles: List[TaskHandle] = []
        self._fns: List[Callable] = []
        self._deps: List[List[int]] = []
        self._unmet: List[set] = []  # dependency tids not yet credited
        self._weights: List[float] = []
        self._shutdown = False
        self._local: List[List[int]] = [[] for _ in range(num_threads)]
        self._local_locks = [threading.Lock() for _ in range(num_threads)]
        self._workload = [0.0] * num_threads
        self._threads = [
            threading.Thread(
                target=self._worker, args=(i,), name=f"online-{i}", daemon=True
            )
            for i in range(num_threads)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        fn: Callable,
        deps: Sequence[TaskHandle] = (),
        weight: float = 1.0,
    ) -> TaskHandle:
        """Register ``fn`` to run after ``deps``; returns its handle.

        ``fn`` receives the dependency results as positional arguments in
        the given order.
        """
        if self._shutdown:
            raise RuntimeError("scheduler is shut down")
        with self._lock:
            tid = len(self._handles)
            handle = TaskHandle(tid)
            self._handles.append(handle)
            self._fns.append(fn)
            self._deps.append([d.tid for d in deps])
            self._weights.append(float(weight))
            unmet = {d.tid for d in deps if not d.done()}
            self._unmet.append(unmet)
            # A dependency may have failed already.
            failed = next(
                (d for d in deps if d.done() and d._error is not None), None
            )
            if failed is not None:
                handle._finish(error=failed._error)
                return handle
            if not unmet:
                self._enqueue(tid)
        return handle

    def _enqueue(self, tid: int) -> None:
        target = min(range(self.num_threads), key=lambda j: self._workload[j])
        with self._local_locks[target]:
            self._local[target].append(tid)
            self._workload[target] += self._weights[tid]

    # ------------------------------------------------------------------ #
    # Worker loop
    # ------------------------------------------------------------------ #

    def _fetch(self, thread: int) -> Optional[int]:
        with self._local_locks[thread]:
            if not self._local[thread]:
                return None
            tid = self._local[thread].pop(0)
            self._workload[thread] -= self._weights[tid]
            return tid

    def _worker(self, thread: int) -> None:
        while True:
            tid = self._fetch(thread)
            if tid is None:
                if self._shutdown:
                    return
                time.sleep(1e-4)
                continue
            handle = self._handles[tid]
            try:
                args = [
                    self._handles[d]._result for d in self._deps[tid]
                ]
                result = self._fns[tid](*args)
                handle._finish(result=result)
            except BaseException as exc:
                handle._finish(error=exc)
            self._resolve_dependents(tid)

    def _resolve_dependents(self, tid: int) -> None:
        finished = self._handles[tid]
        with self._lock:
            for succ in range(len(self._handles)):
                if tid not in self._unmet[succ]:
                    continue
                if self._handles[succ].done():
                    continue
                if finished._error is not None:
                    self._handles[succ]._finish(error=finished._error)
                    continue
                self._unmet[succ].discard(tid)
                if not self._unmet[succ]:
                    self._enqueue(succ)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for queued tasks."""
        if wait:
            for handle in list(self._handles):
                handle._done.wait()
        self._shutdown = True
        for t in self._threads:
            t.join(timeout=5)

    def __enter__(self) -> "OnlineScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)
