"""Collaborative scheduling of *arbitrary* DAG-structured computations.

The paper closes by noting the collaborative scheduler "can be used for a
class of DAG structured computations" (Section 8).  This module delivers
that generalization: :func:`run_dag` executes any dependency DAG of Python
callables with the same collaborative discipline — per-thread ready lists,
min-workload allocation of newly-ready nodes, completion-driven dependency
resolution — without any junction-tree coupling.

Example::

    results = run_dag(
        nodes={"a": lambda: 2, "b": lambda: 3,
               "c": lambda a, b: a + b},
        deps={"c": ["a", "b"]},
        num_threads=4,
    )
    assert results["c"] == 5

Each callable receives the results of its dependencies as positional
arguments, in the order they are listed in ``deps``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence

NodeId = Hashable


def _validate(nodes: Mapping, deps: Mapping) -> Dict[NodeId, List[NodeId]]:
    dep_map: Dict[NodeId, List[NodeId]] = {}
    for node in nodes:
        dep_map[node] = list(deps.get(node, []))
    for node, node_deps in deps.items():
        if node not in nodes:
            raise ValueError(f"deps mention unknown node {node!r}")
        for d in node_deps:
            if d not in nodes:
                raise ValueError(
                    f"node {node!r} depends on unknown node {d!r}"
                )
    # Cycle check via Kahn.
    indeg = {node: len(ds) for node, ds in dep_map.items()}
    succs: Dict[NodeId, List[NodeId]] = {node: [] for node in nodes}
    for node, ds in dep_map.items():
        for d in ds:
            succs[d].append(node)
    ready = [node for node, d in indeg.items() if d == 0]
    seen = 0
    while ready:
        node = ready.pop()
        seen += 1
        for s in succs[node]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if seen != len(nodes):
        raise ValueError("dependency graph contains a cycle")
    return dep_map


def run_dag(
    nodes: Mapping[NodeId, Callable],
    deps: Optional[Mapping[NodeId, Sequence[NodeId]]] = None,
    num_threads: int = 4,
    weights: Optional[Mapping[NodeId, float]] = None,
) -> Dict[NodeId, object]:
    """Execute ``nodes`` respecting ``deps``; returns ``{node: result}``.

    ``weights`` (default 1 per node) drive the min-workload allocation,
    exactly like task weights in Algorithm 2.  Exceptions raised by any
    callable abort the run and propagate to the caller.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    deps = deps or {}
    dep_map = _validate(nodes, deps)
    weights = dict(weights or {})
    for node in nodes:
        weights.setdefault(node, 1.0)

    succs: Dict[NodeId, List[NodeId]] = {node: [] for node in nodes}
    for node, ds in dep_map.items():
        for d in ds:
            succs[d].append(node)

    dep_lock = threading.Lock()
    dep_count = {node: len(ds) for node, ds in dep_map.items()}
    remaining = [len(nodes)]
    results: Dict[NodeId, object] = {}

    local_lists: List[List[NodeId]] = [[] for _ in range(num_threads)]
    local_locks = [threading.Lock() for _ in range(num_threads)]
    workload = [0.0] * num_threads
    abort: List[Optional[BaseException]] = [None]

    def push(thread: int, node: NodeId) -> None:
        with local_locks[thread]:
            local_lists[thread].append(node)
            workload[thread] += weights[node]

    def allocate(node: NodeId) -> None:
        target = min(range(num_threads), key=lambda j: workload[j])
        push(target, node)

    def fetch(thread: int) -> Optional[NodeId]:
        with local_locks[thread]:
            if not local_lists[thread]:
                return None
            node = local_lists[thread].pop(0)
            workload[thread] -= weights[node]
            return node

    def worker(thread: int) -> None:
        try:
            while abort[0] is None:
                node = fetch(thread)
                if node is None:
                    with dep_lock:
                        if remaining[0] == 0:
                            break
                    time.sleep(1e-5)
                    continue
                args = [results[d] for d in dep_map[node]]
                results[node] = nodes[node](*args)
                with dep_lock:
                    remaining[0] -= 1
                for succ in succs[node]:
                    with dep_lock:
                        dep_count[succ] -= 1
                        ready = dep_count[succ] == 0
                    if ready:
                        allocate(succ)
        except BaseException as exc:
            abort[0] = exc

    for offset, node in enumerate(
        n for n, ds in dep_map.items() if not ds
    ):
        push(offset % num_threads, node)

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"dag-{i}")
        for i in range(num_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if abort[0] is not None:
        raise abort[0]
    if remaining[0] != 0:
        raise RuntimeError(
            f"DAG execution finished with {remaining[0]} nodes unexecuted"
        )
    return results
