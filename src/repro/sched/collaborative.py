"""The collaborative scheduler (Section 6, Algorithm 2) on Python threads.

Each worker thread runs the four modules of the paper's scheduler:

* **Allocate** — drain the thread's task-ID buffer of completed tasks,
  decrement the dependency degree of their successors, and place tasks that
  become ready on the local ready list of the least-loaded thread;
* **Fetch** — pop the head of the thread's own local ready list;
* **Partition** — split a fetched task whose potential-table slice exceeds
  the threshold ``delta`` into chunk subtasks spread across all threads,
  with the final finisher running the combiner (the paper's ``T̂_n``);
* **Execute** — run the node-level primitive (or one chunk of it) against
  the shared :class:`~repro.tasks.state.PropagationState`.

The global task list is the :class:`~repro.tasks.task.TaskGraph` plus the
shared dependency-degree array; per-entry mutation is lock-protected exactly
as the paper requires.  Results are bitwise-identical to the serial
executor.  (Because of the GIL this demonstrates correctness and load
balance, not wall-clock speedup — see :mod:`repro.simcore` for timing.)
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

from repro.sched.faults import TaskExecutionError
from repro.sched.stats import ExecutionStats, SpanRecord
from repro.tasks.partition_plan import plan_partition
from repro.tasks.state import PropagationState
from repro.tasks.task import Task, TaskGraph

ALLOCATION_HEURISTICS = ("min-workload", "round-robin", "random")
FETCH_POLICIES = ("fifo", "largest-first")


class _PartitionSet:
    """Bookkeeping for one partitioned task: chunks plus the combiner."""

    __slots__ = ("task", "ranges", "results", "remaining", "lock")

    def __init__(self, task: Task, ranges: List[Tuple[int, int]]):
        self.task = task
        self.ranges = ranges
        self.results: List[Optional[object]] = [None] * len(ranges)
        self.remaining = len(ranges)
        self.lock = threading.Lock()


class CollaborativeExecutor:
    """Algorithm 2: collaborative task scheduling across ``num_threads``.

    Parameters
    ----------
    num_threads:
        Worker-thread count (the paper's ``P``).
    partition_threshold:
        The paper's δ: tasks whose partitionable slice exceeds this many
        potential-table entries are split.  ``None`` disables partitioning
        (as in the Fig. 5 rerooting experiments).
    allocation:
        Load-balancing heuristic for the Allocate module; the paper uses
        ``"min-workload"``.  ``"round-robin"`` and ``"random"`` exist for
        the ablation benchmarks.
    fetch:
        Fetch-module policy; the paper uses the ``"fifo"`` head-of-list.
    """

    def __init__(
        self,
        num_threads: int = 4,
        partition_threshold: Optional[int] = None,
        max_chunks: int = 32,
        allocation: str = "min-workload",
        fetch: str = "fifo",
        seed: int = 0,
        record_events: bool = False,
    ):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if partition_threshold is not None and partition_threshold < 1:
            raise ValueError("partition_threshold must be >= 1 or None")
        if max_chunks < 2:
            raise ValueError("max_chunks must be >= 2")
        if allocation not in ALLOCATION_HEURISTICS:
            raise ValueError(
                f"allocation must be one of {ALLOCATION_HEURISTICS}"
            )
        if fetch not in FETCH_POLICIES:
            raise ValueError(f"fetch must be one of {FETCH_POLICIES}")
        self.num_threads = num_threads
        self.partition_threshold = partition_threshold
        self.max_chunks = max_chunks
        self.allocation = allocation
        self.fetch = fetch
        self._seed = seed
        self.record_events = record_events

    # ------------------------------------------------------------------ #

    def run(
        self,
        graph: TaskGraph,
        state: PropagationState,
        tracer=None,
        deadline: Optional[float] = None,
    ) -> ExecutionStats:
        """Run the graph; ``deadline`` is an absolute ``time.monotonic()``
        instant checked cooperatively at every task-fetch boundary.  An
        overrun raises :class:`~repro.sched.faults.TaskExecutionError`
        with ``phase="deadline"`` (counted in ``stats.deadline_misses``);
        in-flight primitives finish, nothing new is fetched."""
        import random

        p = self.num_threads
        rng = random.Random(self._seed)

        if tracer is not None:
            # TimedLock is interface-identical to threading.Lock, so every
            # `with lock:` site below is untouched; GL is the shared
            # dependency lock, LL the per-thread local/id-buffer locks.
            from repro.obs.tracer import LOCK_GL, LOCK_LL, TimedLock

            dep_lock = TimedLock(tracer, LOCK_GL)
            local_locks = [TimedLock(tracer, LOCK_LL) for _ in range(p)]
            id_locks = [TimedLock(tracer, LOCK_LL) for _ in range(p)]
            bufs = [tracer.buffer(i) for i in range(p)]
        else:
            dep_lock = threading.Lock()
            local_locks = [threading.Lock() for _ in range(p)]
            id_locks = [threading.Lock() for _ in range(p)]
            bufs = None
        dep_count = graph.indegrees()
        remaining = [graph.num_tasks]
        rr_next = [0]  # round-robin allocation cursor

        local_lists: List[List] = [[] for _ in range(p)]
        workload = [0.0] * p

        id_buffers: List[List[int]] = [[] for _ in range(p)]

        stats = ExecutionStats(
            num_threads=p,
            compute_time=[0.0] * p,
            sched_time=[0.0] * p,
            tasks_per_thread=[0] * p,
        )
        stats_lock = threading.Lock()
        abort: List[Optional[BaseException]] = [None]

        def pick_target_thread(weight: float) -> int:
            if self.allocation == "round-robin":
                with dep_lock:
                    target = rr_next[0] % p
                    rr_next[0] += 1
                return target
            if self.allocation == "random":
                return rng.randrange(p)
            # min-workload: racy read is acceptable — it is a heuristic.
            return min(range(p), key=lambda j: workload[j])

        def push_item(thread: int, item, weight: float) -> None:
            with local_locks[thread]:
                local_lists[thread].append(item)
                workload[thread] += weight

        def allocate_ready(tid: int) -> None:
            """Place a now-ready task on the least-loaded local list."""
            weight = graph.tasks[tid].weight
            target = pick_target_thread(weight)
            push_item(target, ("task", tid), weight)

        def complete(thread: int, tid: int) -> None:
            with id_locks[thread]:
                id_buffers[thread].append(tid)
            with dep_lock:
                remaining[0] -= 1

        def drain_buffer(thread: int) -> None:
            """The Allocate module: process completed-task notifications."""
            with id_locks[thread]:
                done = id_buffers[thread][:]
                id_buffers[thread].clear()
            for tid in done:
                for succ in graph.succs[tid]:
                    with dep_lock:
                        dep_count[succ] -= 1
                        ready = dep_count[succ] == 0
                    if ready:
                        allocate_ready(succ)

        def fetch_item(thread: int):
            """The Fetch module: take the next item from the own list."""
            with local_locks[thread]:
                if not local_lists[thread]:
                    return None
                if self.fetch == "largest-first":
                    idx = max(
                        range(len(local_lists[thread])),
                        key=lambda j: _item_weight(local_lists[thread][j]),
                    )
                    item = local_lists[thread].pop(idx)
                else:
                    item = local_lists[thread].pop(0)
                workload[thread] -= _item_weight(item)
                return item

        def _item_weight(item) -> float:
            if item[0] == "task":
                return graph.tasks[item[1]].weight
            pset: _PartitionSet = item[1]
            return pset.task.weight / len(pset.ranges)

        def run_chunk(thread: int, pset: _PartitionSet, idx: int) -> None:
            lo, hi = pset.ranges[idx]
            t0 = time.perf_counter_ns()
            result = state.execute_chunk(pset.task, lo, hi)
            t1 = time.perf_counter_ns()
            if bufs is not None:
                bufs[thread].task_span("chunk", pset.task.tid, t0, t1, lo, hi)
            with stats_lock:
                stats.compute_time[thread] += (t1 - t0) * 1e-9
                stats.chunks_executed += 1
                if self.record_events:
                    stats.events.append(SpanRecord(
                        pset.task.tid, thread,
                        (t0 - start_ns) * 1e-9, (t1 - start_ns) * 1e-9,
                    ))
            with pset.lock:
                pset.results[idx] = result
                pset.remaining -= 1
                last = pset.remaining == 0
            if last:
                t0 = time.perf_counter_ns()
                state.combine_chunks(pset.task, pset.results, pset.ranges)
                t1 = time.perf_counter_ns()
                if bufs is not None:
                    bufs[thread].task_span("combine", pset.task.tid, t0, t1)
                with stats_lock:
                    stats.compute_time[thread] += (t1 - t0) * 1e-9
                    stats.tasks_executed += 1
                    stats.tasks_per_thread[thread] += 1
                complete(thread, pset.task.tid)

        def run_task(thread: int, tid: int) -> None:
            task = graph.tasks[tid]
            ranges = plan_partition(
                task, self.partition_threshold, self.max_chunks
            )
            if ranges is not None:
                pset = _PartitionSet(task, ranges)
                if bufs is not None:
                    bufs[thread].instant(f"partition#{tid}", "sched")
                with stats_lock:
                    stats.tasks_partitioned += 1
                chunk_weight = task.weight / len(ranges)
                # Spread the sibling chunks over all threads (Algorithm 2
                # line 14); the fetching thread starts on chunk 0 itself.
                for idx in range(1, len(ranges)):
                    push_item(
                        (thread + idx) % p, ("chunk", pset, idx), chunk_weight
                    )
                run_chunk(thread, pset, 0)
                return
            t0 = time.perf_counter_ns()
            state.execute(task)
            t1 = time.perf_counter_ns()
            if bufs is not None:
                bufs[thread].task_span("task", tid, t0, t1)
            with stats_lock:
                stats.compute_time[thread] += (t1 - t0) * 1e-9
                stats.tasks_executed += 1
                stats.tasks_per_thread[thread] += 1
                if self.record_events:
                    stats.events.append(SpanRecord(
                        tid, thread,
                        (t0 - start_ns) * 1e-9, (t1 - start_ns) * 1e-9,
                    ))
            complete(thread, tid)

        def check_deadline() -> None:
            if deadline is not None and time.monotonic() >= deadline:
                with stats_lock:
                    stats.deadline_misses += 1
                raise TaskExecutionError(
                    f"collaborative propagation exceeded its deadline with "
                    f"~{remaining[0]} of {graph.num_tasks} tasks unexecuted",
                    phase="deadline",
                )

        def worker(thread: int) -> None:
            if tracer is not None:
                tracer.bind(thread)
            try:
                while abort[0] is None:
                    check_deadline()
                    t0 = time.perf_counter_ns()
                    drain_buffer(thread)
                    item = fetch_item(thread)
                    t1 = time.perf_counter_ns()
                    with stats_lock:
                        stats.sched_time[thread] += (t1 - t0) * 1e-9
                    if item is None:
                        with dep_lock:
                            done = remaining[0] == 0
                        if done:
                            break
                        time.sleep(1e-5)
                        continue
                    if bufs is not None:
                        bufs[thread].span("fetch", "sched", t0, t1)
                        # Racy length read: a sample, not an invariant.
                        bufs[thread].sample_queue(len(local_lists[thread]))
                    if item[0] == "task":
                        run_task(thread, item[1])
                    else:
                        run_chunk(thread, item[1], item[2])
            except BaseException as exc:  # propagate to the caller
                abort[0] = exc

        # Algorithm 2 line 1: seed the initially-ready tasks evenly.
        for offset, tid in enumerate(graph.roots()):
            push_item(offset % p, ("task", tid), graph.tasks[tid].weight)

        start_ns = time.perf_counter_ns()
        threads = [
            threading.Thread(target=worker, args=(i,), name=f"collab-{i}")
            for i in range(p)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats.wall_time = (time.perf_counter_ns() - start_ns) * 1e-9
        if abort[0] is not None:
            raise abort[0]
        if remaining[0] != 0:
            raise RuntimeError(
                f"scheduler finished with {remaining[0]} tasks unexecuted"
            )
        return stats
