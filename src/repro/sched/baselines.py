"""Baseline parallel executors (Section 7's comparison methods).

* :class:`LevelParallelExecutor` — the OpenMP-style baseline: the task graph
  is cut into longest-path levels; each level is a parallel-for over its
  tasks with a barrier before the next level starts.
* :class:`DataParallelExecutor` — the data-parallel baseline: tasks run in
  serial topological order, but every primitive is chunked across all
  threads (a fork/join per primitive), mirroring "multiple threads for each
  node level primitive".

Both produce results identical to the serial executor; their structural
inefficiencies (barrier idle time, per-primitive fork/join) are what the
paper's Fig. 7 quantifies against the collaborative scheduler.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.potential.partition import chunk_ranges
from repro.sched.stats import ExecutionStats
from repro.tasks.state import PropagationState
from repro.tasks.task import TaskGraph


class LevelParallelExecutor:
    """Level-synchronous parallel-for over task-graph levels."""

    def __init__(self, num_threads: int = 4):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads

    def run(self, graph: TaskGraph, state: PropagationState) -> ExecutionStats:
        p = self.num_threads
        stats = ExecutionStats(
            num_threads=p,
            compute_time=[0.0] * p,
            sched_time=[0.0] * p,
            tasks_per_thread=[0] * p,
        )
        abort: List[Optional[BaseException]] = [None]
        start = time.perf_counter()
        for level in graph.levels():
            # Static block distribution of the level's tasks, like an
            # OpenMP parallel-for with default scheduling.
            def work(thread: int, tasks=tuple(level)) -> None:
                try:
                    for pos in range(thread, len(tasks), p):
                        t0 = time.perf_counter()
                        state.execute(graph.tasks[tasks[pos]])
                        stats.compute_time[thread] += time.perf_counter() - t0
                        stats.tasks_per_thread[thread] += 1
                except BaseException as exc:
                    abort[0] = exc

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(p)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if abort[0] is not None:
                raise abort[0]
        stats.wall_time = time.perf_counter() - start
        stats.tasks_executed = graph.num_tasks
        return stats


class DataParallelExecutor:
    """Serial task order with every primitive chunked across all threads."""

    def __init__(self, num_threads: int = 4, min_chunk: int = 1):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if min_chunk < 1:
            raise ValueError("min_chunk must be >= 1")
        self.num_threads = num_threads
        self.min_chunk = min_chunk

    def run(self, graph: TaskGraph, state: PropagationState) -> ExecutionStats:
        p = self.num_threads
        stats = ExecutionStats(
            num_threads=p,
            compute_time=[0.0] * p,
            sched_time=[0.0] * p,
            tasks_per_thread=[0] * p,
        )
        abort: List[Optional[BaseException]] = [None]
        start = time.perf_counter()
        for tid in graph.topological_order():
            task = graph.tasks[tid]
            size = task.partition_size
            chunk = max(self.min_chunk, -(-size // p))
            ranges = chunk_ranges(size, chunk)
            if len(ranges) <= 1:
                t0 = time.perf_counter()
                state.execute(task)
                stats.compute_time[0] += time.perf_counter() - t0
                stats.tasks_per_thread[0] += 1
                continue
            results: List[Optional[object]] = [None] * len(ranges)

            def work(thread: int) -> None:
                try:
                    for pos in range(thread, len(ranges), p):
                        lo, hi = ranges[pos]
                        t0 = time.perf_counter()
                        results[pos] = state.execute_chunk(task, lo, hi)
                        stats.compute_time[thread] += time.perf_counter() - t0
                except BaseException as exc:
                    abort[0] = exc

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(p)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if abort[0] is not None:
                raise abort[0]
            t0 = time.perf_counter()
            state.combine_chunks(task, results, ranges)
            stats.compute_time[0] += time.perf_counter() - t0
            stats.tasks_per_thread[0] += 1
            stats.chunks_executed += len(ranges)
        stats.wall_time = time.perf_counter() - start
        stats.tasks_executed = graph.num_tasks
        return stats
