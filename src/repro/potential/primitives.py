"""The four node-level primitives of evidence propagation.

Propagating evidence from clique Y to clique X through separator S is

    psi_S_new = marginalize(psi_Y, S)
    ratio     = divide(psi_S_new, psi_S_old)
    psi_X_new = multiply(psi_X, extend(ratio, scope(X)))

(Eq. 1 of the paper).  Each primitive here is a pure function of potential
tables; :func:`primitive_flops` gives the operation-count estimate used both
for task weights in the scheduler and for the multicore cost model.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.potential.table import PotentialTable


class PrimitiveKind(enum.Enum):
    """The four node-level primitive types from the paper."""

    MARGINALIZE = "marginalize"
    EXTEND = "extend"
    MULTIPLY = "multiply"
    DIVIDE = "divide"
    # COMBINE is not a paper primitive; it is the merge step produced by the
    # task-partitioning module (the last subtask T_hat_n that concatenates or
    # adds the partial results of its sibling subtasks).
    COMBINE = "combine"


def _merged_batch(a: PotentialTable, b: PotentialTable):
    """The batch size of a two-table primitive's result.

    One operand may be unbatched (it broadcasts across the batch axis);
    two *different* batch sizes are a caller bug.
    """
    if a.batch is not None and b.batch is not None and a.batch != b.batch:
        raise ValueError(
            f"mismatched batch sizes {a.batch} vs {b.batch}"
        )
    return a.batch if a.batch is not None else b.batch


def marginalize(table: PotentialTable, onto: Sequence[int]) -> PotentialTable:
    """Sum ``table`` down to the scope ``onto`` (a subset of its variables).

    The result's axes follow the order of ``onto``; a batched table yields
    a batched result (each case marginalized independently).
    """
    onto = tuple(int(v) for v in onto)
    missing = set(onto) - set(table.variables)
    if missing:
        raise ValueError(f"marginalize target has unknown variables {missing}")
    offset = 0 if table.batch is None else 1
    drop_axes = tuple(
        i + offset for i, v in enumerate(table.variables) if v not in onto
    )
    summed = table.values.sum(axis=drop_axes) if drop_axes else table.values
    kept = [v for v in table.variables if v in onto]
    kept_cards = [table.card_of(v) for v in kept]
    partial = PotentialTable(kept, kept_cards, summed, batch=table.batch)
    return partial.aligned_to(onto)


def max_marginalize(table: PotentialTable, onto: Sequence[int]) -> PotentialTable:
    """Max (instead of sum) ``table`` down to the scope ``onto``.

    The max-product analogue of :func:`marginalize`, used by MPE queries
    (Viterbi-style most-probable-explanation propagation).
    """
    onto = tuple(int(v) for v in onto)
    missing = set(onto) - set(table.variables)
    if missing:
        raise ValueError(f"max-marginalize target has unknown variables {missing}")
    offset = 0 if table.batch is None else 1
    drop_axes = tuple(
        i + offset for i, v in enumerate(table.variables) if v not in onto
    )
    maxed = table.values.max(axis=drop_axes) if drop_axes else table.values
    kept = [v for v in table.variables if v in onto]
    kept_cards = [table.card_of(v) for v in kept]
    partial = PotentialTable(kept, kept_cards, maxed, batch=table.batch)
    return partial.aligned_to(onto)


def extend(
    table: PotentialTable,
    variables: Sequence[int],
    cardinalities: Sequence[int],
) -> PotentialTable:
    """Broadcast ``table`` up to the superset scope ``variables``.

    New variables are replicated (each entry of ``table`` appears once per
    joint state of the added variables), matching the extension primitive.
    """
    variables = tuple(int(v) for v in variables)
    cardinalities = tuple(int(c) for c in cardinalities)
    missing = set(table.variables) - set(variables)
    if missing:
        raise ValueError(f"extension target is missing variables {missing}")
    for var, card in zip(variables, cardinalities):
        if var in table.variables and table.card_of(var) != card:
            raise ValueError(
                f"variable {var} cardinality mismatch: "
                f"{table.card_of(var)} vs {card}"
            )
    # Align source axes to their order within the target scope, insert
    # size-1 axes for the new variables, then broadcast.
    src_order = [v for v in variables if v in table.variables]
    aligned = table.aligned_to(src_order)
    src_cards = dict(zip(aligned.variables, aligned.cardinalities))
    shape = [src_cards.get(var, 1) for var in variables]
    target_shape = cardinalities
    if table.batch is not None:
        shape = [table.batch] + shape
        target_shape = (table.batch,) + cardinalities
    values = aligned.values.reshape(shape)
    values = np.broadcast_to(values, target_shape).copy()
    return PotentialTable(variables, cardinalities, values, batch=table.batch)


def multiply(a: PotentialTable, b: PotentialTable) -> PotentialTable:
    """Pointwise product; ``b``'s scope must be a subset of ``a``'s.

    The result keeps ``a``'s scope and axis order (the common case is
    multiplying an extended separator ratio into a clique table).
    """
    if not set(b.variables) <= set(a.variables):
        raise ValueError(
            f"multiply: scope {b.variables} is not a subset of {a.variables}"
        )
    batch = _merged_batch(a, b)
    if b.variables != a.variables:
        b = extend(b, a.variables, a.cardinalities)
    # An unbatched operand broadcasts across the other's batch axis.
    return PotentialTable(
        a.variables, a.cardinalities, a.values * b.values, batch=batch
    )


def divide(numerator: PotentialTable, denominator: PotentialTable) -> PotentialTable:
    """Pointwise ratio over identical scopes with the 0/0 = 0 convention.

    A zero in the denominator implies the corresponding separator state has
    zero mass, in which case the numerator is also zero and the standard
    junction-tree convention defines the ratio as zero.
    """
    if set(numerator.variables) != set(denominator.variables):
        raise ValueError(
            f"divide: scopes differ: {numerator.variables} vs "
            f"{denominator.variables}"
        )
    batch = _merged_batch(numerator, denominator)
    denom = denominator.aligned_to(numerator.variables)
    shape = np.broadcast_shapes(numerator.values.shape, denom.values.shape)
    out = np.zeros(shape, dtype=np.float64)
    np.divide(
        numerator.values, denom.values, out=out, where=denom.values != 0
    )
    return PotentialTable(
        numerator.variables, numerator.cardinalities, out, batch=batch
    )


def primitive_flops(
    kind: PrimitiveKind, input_size: int, output_size: int
) -> int:
    """Estimated operation count of one primitive execution.

    This single estimator is shared by the scheduler's task weights and the
    multicore simulator's cost model so that simulated load balancing matches
    what the real threaded scheduler would do.
    """
    if kind is PrimitiveKind.MARGINALIZE:
        # one add per input entry folded into the output
        return max(input_size, output_size)
    if kind is PrimitiveKind.EXTEND:
        # one copy per output entry
        return output_size
    if kind in (PrimitiveKind.MULTIPLY, PrimitiveKind.DIVIDE):
        # one multiply/divide per output entry
        return output_size
    if kind is PrimitiveKind.COMBINE:
        # one add/copy per combined entry
        return output_size
    raise ValueError(f"unknown primitive kind {kind!r}")
