"""Chunked execution of node-level primitives.

The paper's Partition module (Section 6) splits a large task into subtasks
that each process a slice of the potential table; the final subtask combines
the partial results (concatenation for extend/multiply/divide, addition for
marginalization).  The functions here compute exactly one such slice, so the
real threaded scheduler and the multicore simulator can share the same
partitioning semantics.

Slices are expressed over the *flat* (C-order) index space of a table:

* For extend/multiply/divide the **output** index space is partitioned and
  each chunk is computed independently; the combiner concatenates.
* For marginalization the **input** index space is partitioned; each chunk
  produces a partial output table and the combiner adds them.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.potential.table import PotentialTable


def chunk_ranges(total: int, max_chunk: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into contiguous ``[lo, hi)`` chunks.

    Each chunk has at most ``max_chunk`` elements; the split is as even as
    possible so subtask weights are balanced.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if max_chunk < 1:
        raise ValueError(f"max_chunk must be >= 1, got {max_chunk}")
    if total == 0:
        return []
    pieces = -(-total // max_chunk)  # ceil division
    base, extra = divmod(total, pieces)
    ranges = []
    lo = 0
    for i in range(pieces):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _flat_to_sub(table: PotentialTable, flat: np.ndarray, keep: Sequence[int]):
    """Map flat indices of ``table`` to flat indices of the ``keep`` sub-scope.

    For batched tables the flat index space is batch-major
    (``(B,) + cardinalities`` in C order) and the sub-scope keeps the
    batch axis, so chunk boundaries may fall anywhere — including inside
    a case — and the partial sums still land in the right case's row.
    """
    full_shape = table.values.shape if table.values.ndim else (1,)
    if table.batch is None:
        batch_axes: Tuple[int, ...] = ()
        offset = 0
    else:
        batch_axes = (0,)
        offset = 1
    if not keep and table.batch is None:
        # Empty separator: everything folds into the single scalar entry.
        return np.zeros(flat.size, dtype=np.intp), ()
    coords = np.unravel_index(flat, full_shape)
    keep_axes = list(batch_axes) + [
        table.variables.index(v) + offset for v in keep
    ]
    keep_cards = tuple(full_shape[a] for a in keep_axes)
    keep_coords = tuple(coords[a] for a in keep_axes)
    return np.ravel_multi_index(keep_coords, keep_cards), keep_cards


def marginalize_chunk(
    table: PotentialTable, onto: Sequence[int], lo: int, hi: int
) -> PotentialTable:
    """Partial marginalization over input entries ``[lo, hi)``.

    Returns a table over ``onto`` holding the partial sums contributed by the
    chunk; summing the chunk tables over a full partition of the input yields
    :func:`repro.potential.primitives.marginalize` exactly.
    """
    onto = tuple(int(v) for v in onto)
    if not 0 <= lo <= hi <= table.size:
        raise ValueError(f"chunk [{lo}, {hi}) out of range for size {table.size}")
    flat = np.arange(lo, hi)
    sub_flat, sub_cards = _flat_to_sub(table, flat, onto)
    out = np.zeros(int(np.prod(sub_cards)) if sub_cards else 1)
    np.add.at(out, sub_flat, table.values.reshape(-1)[lo:hi])
    cards = [table.card_of(v) for v in onto]
    return PotentialTable(onto, cards, out, batch=table.batch)


def extend_chunk(
    table: PotentialTable,
    variables: Sequence[int],
    cardinalities: Sequence[int],
    lo: int,
    hi: int,
) -> np.ndarray:
    """Entries ``[lo, hi)`` of the flat extended table.

    Concatenating the chunks of a full partition reproduces
    :func:`repro.potential.primitives.extend`.
    """
    variables = tuple(int(v) for v in variables)
    cardinalities = tuple(int(c) for c in cardinalities)
    total = int(np.prod(cardinalities)) if cardinalities else 1
    out_shape = cardinalities if cardinalities else (1,)
    src_shape = table.cardinalities if table.cardinalities else (1,)
    offset = 0
    if table.batch is not None:
        # Both index spaces are batch-major over the batched tables.
        total *= table.batch
        out_shape = (table.batch,) + out_shape
        src_shape = (table.batch,) + src_shape
        offset = 1
    if not 0 <= lo <= hi <= total:
        raise ValueError(f"chunk [{lo}, {hi}) out of range for size {total}")
    flat = np.arange(lo, hi)
    coords = np.unravel_index(flat, out_shape)
    src_axes = list(range(offset)) + [
        variables.index(v) + offset for v in table.variables
    ]
    src_coords = tuple(coords[a] for a in src_axes)
    if src_coords:
        src_flat = np.ravel_multi_index(
            src_coords, src_shape[: len(src_coords)]
        )
    else:
        src_flat = np.zeros(hi - lo, dtype=np.intp)
    return table.values.reshape(-1)[src_flat]


def multiply_chunk(
    a_flat: np.ndarray, b_flat: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Entries ``[lo, hi)`` of the pointwise product of two aligned tables."""
    return a_flat[lo:hi] * b_flat[lo:hi]


def divide_chunk(
    num_flat: np.ndarray, den_flat: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Entries ``[lo, hi)`` of the pointwise ratio (0/0 = 0) of aligned tables."""
    num = num_flat[lo:hi]
    den = den_flat[lo:hi]
    out = np.zeros_like(num)
    np.divide(num, den, out=out, where=den != 0)
    return out


# --------------------------------------------------------------------- #
# In-place chunk writers
# --------------------------------------------------------------------- #
# When the output table lives in a buffer shared between workers (threads
# or processes over multiprocessing.shared_memory), the concatenating
# primitives need no combiner at all: each chunk owns a disjoint slice of
# the flat output and writes it directly.  These helpers express exactly
# that idiom; only marginalization still needs an additive combine
# (:func:`add_partials_into`).


def extend_chunk_into(
    out_flat: np.ndarray,
    table: PotentialTable,
    variables: Sequence[int],
    cardinalities: Sequence[int],
    lo: int,
    hi: int,
) -> None:
    """Write entries ``[lo, hi)`` of the extension directly into ``out_flat``."""
    out_flat[lo:hi] = extend_chunk(table, variables, cardinalities, lo, hi)


def multiply_chunk_into(
    out_flat: np.ndarray, other_flat: np.ndarray, lo: int, hi: int
) -> None:
    """``out_flat[lo:hi] *= other_flat[lo:hi]`` (the in-place MULTIPLY chunk)."""
    out_flat[lo:hi] *= other_flat[lo:hi]


def divide_chunk_into(
    out_flat: np.ndarray,
    num_flat: np.ndarray,
    den_flat: np.ndarray,
    lo: int,
    hi: int,
) -> None:
    """Write the ``[lo, hi)`` ratio slice (0/0 = 0) into ``out_flat``."""
    out_flat[lo:hi] = divide_chunk(num_flat, den_flat, lo, hi)


def add_partials_into(
    out_flat: np.ndarray, parts: Sequence[np.ndarray]
) -> None:
    """Sum partial marginalization tables into ``out_flat`` (the ``T̂_n`` add).

    Partials are added in the given order so the floating-point result is
    deterministic for a fixed chunk plan.
    """
    out_flat[...] = 0.0
    for part in parts:
        out_flat += np.asarray(part).reshape(out_flat.shape)
