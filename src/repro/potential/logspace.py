"""Log-domain potential tables for underflow-proof propagation.

Joint masses shrink exponentially with network size: a few hundred
variables push probabilities below ``float64``'s smallest normal and the
linear-domain engines silently return zeros.  :class:`LogTable` stores
``log ψ`` (with ``-inf`` for structural zeros); products become sums,
ratios become differences, and marginalization uses a max-shifted
log-sum-exp.  :func:`propagate_reference_log` runs the full two-phase
propagation in the log domain and returns log-potentials.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.jt.junction_tree import JunctionTree
from repro.potential.table import PotentialTable

NEG_INF = float("-inf")


class LogTable:
    """A potential table stored as ``log ψ``.

    Mirrors :class:`~repro.potential.table.PotentialTable`'s scope
    conventions; see that class for the axis-order semantics.
    """

    __slots__ = ("variables", "cardinalities", "logs")

    def __init__(
        self,
        variables: Sequence[int],
        cardinalities: Sequence[int],
        logs: np.ndarray,
    ):
        self.variables = tuple(int(v) for v in variables)
        self.cardinalities = tuple(int(c) for c in cardinalities)
        logs = np.asarray(logs, dtype=np.float64)
        expected = 1
        for c in self.cardinalities:
            expected *= c
        if logs.size != expected:
            raise ValueError(
                f"log values have {logs.size} entries, scope needs {expected}"
            )
        self.logs = logs.reshape(self.cardinalities if self.cardinalities else ())

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    @classmethod
    def from_linear(cls, table: PotentialTable) -> "LogTable":
        """Elementwise log; zeros map to ``-inf``."""
        with np.errstate(divide="ignore"):
            logs = np.log(table.values)
        return cls(table.variables, table.cardinalities, logs)

    def to_linear(self) -> PotentialTable:
        """Elementwise exp; may underflow — prefer log-domain queries."""
        return PotentialTable(
            self.variables, self.cardinalities, np.exp(self.logs)
        )

    # ------------------------------------------------------------------ #
    # Scope manipulation
    # ------------------------------------------------------------------ #

    def aligned_to(self, variables: Sequence[int]) -> "LogTable":
        variables = tuple(int(v) for v in variables)
        if set(variables) != set(self.variables):
            raise ValueError(
                f"cannot align scope {self.variables} to {variables}"
            )
        if variables == self.variables:
            return self
        perm = [self.variables.index(v) for v in variables]
        cards = tuple(self.cardinalities[p] for p in perm)
        return LogTable(variables, cards, np.transpose(self.logs, perm))

    def extend_to(
        self, variables: Sequence[int], cardinalities: Sequence[int]
    ) -> "LogTable":
        """Broadcast to a superset scope (log of the extension primitive)."""
        variables = tuple(int(v) for v in variables)
        cardinalities = tuple(int(c) for c in cardinalities)
        missing = set(self.variables) - set(variables)
        if missing:
            raise ValueError(f"extension target is missing {missing}")
        src_order = [v for v in variables if v in self.variables]
        aligned = self.aligned_to(src_order)
        src_cards = dict(zip(aligned.variables, aligned.cardinalities))
        shape = [src_cards.get(v, 1) for v in variables]
        logs = np.broadcast_to(
            aligned.logs.reshape(shape), cardinalities
        ).copy()
        return LogTable(variables, cardinalities, logs)

    # ------------------------------------------------------------------ #
    # Log-domain primitives
    # ------------------------------------------------------------------ #

    def marginalize(self, onto: Sequence[int]) -> "LogTable":
        """Max-shifted log-sum-exp over the dropped axes."""
        onto = tuple(int(v) for v in onto)
        missing = set(onto) - set(self.variables)
        if missing:
            raise ValueError(f"marginalize target has unknown {missing}")
        drop = tuple(
            i for i, v in enumerate(self.variables) if v not in onto
        )
        if not drop:
            return self.aligned_to(onto)
        shift = np.max(self.logs, axis=drop, keepdims=True)
        safe_shift = np.where(np.isfinite(shift), shift, 0.0)
        with np.errstate(divide="ignore"):
            summed = np.log(
                np.exp(self.logs - safe_shift).sum(axis=drop)
            ) + safe_shift.reshape(
                [s for i, s in enumerate(shift.shape) if i not in drop]
            )
        kept = [v for v in self.variables if v in onto]
        kept_cards = [
            self.cardinalities[self.variables.index(v)] for v in kept
        ]
        return LogTable(kept, kept_cards, summed).aligned_to(onto)

    def multiply(self, other: "LogTable") -> "LogTable":
        """Log-domain product (addition); ``other`` scope must be a subset."""
        if not set(other.variables) <= set(self.variables):
            raise ValueError("multiply: scope must be a subset")
        extended = other.extend_to(self.variables, self.cardinalities)
        return LogTable(
            self.variables, self.cardinalities, self.logs + extended.logs
        )

    def divide(self, other: "LogTable") -> "LogTable":
        """Log-domain ratio (subtraction) with the 0/0 = 0 convention."""
        if set(other.variables) != set(self.variables):
            raise ValueError("divide: scopes differ")
        denom = other.aligned_to(self.variables)
        with np.errstate(invalid="ignore"):
            out = self.logs - denom.logs
        # -inf / -inf (0/0) must be 0, i.e. log -inf; inf - inf gives nan.
        out = np.where(np.isnan(out), NEG_INF, out)
        return LogTable(self.variables, self.cardinalities, out)

    def reduce(self, evidence: Mapping[int, int]) -> "LogTable":
        """Log-domain evidence absorption (inconsistent entries -> -inf)."""
        logs = self.logs.copy()
        for var, state in evidence.items():
            if var not in self.variables:
                continue
            axis = self.variables.index(var)
            card = self.cardinalities[axis]
            if not 0 <= state < card:
                raise ValueError(
                    f"state {state} out of range for variable {var}"
                )
            mask = np.full(card, NEG_INF)
            mask[state] = 0.0
            shape = [1] * len(self.cardinalities)
            shape[axis] = card
            logs = logs + mask.reshape(shape)
        return LogTable(self.variables, self.cardinalities, logs)

    def log_total(self) -> float:
        """``log Σ ψ`` via max-shifted log-sum-exp."""
        flat = self.logs.reshape(-1)
        shift = float(np.max(flat))
        if not np.isfinite(shift):
            return NEG_INF
        return float(np.log(np.exp(flat - shift).sum()) + shift)

    def normalized_linear(self) -> np.ndarray:
        """``ψ / Σψ`` computed stably (for reading off posteriors)."""
        total = self.log_total()
        if total == NEG_INF:
            size = max(self.logs.size, 1)
            return np.full(self.logs.shape, 1.0 / size)
        return np.exp(self.logs - total)


def propagate_reference_log(
    jt: JunctionTree, evidence: Optional[Mapping[int, int]] = None
) -> Dict[int, LogTable]:
    """Two-phase propagation entirely in the log domain."""
    potentials = {
        i: LogTable.from_linear(jt.potential(i))
        for i in range(jt.num_cliques)
    }
    if evidence:
        potentials = {
            i: table.reduce(evidence) for i, table in potentials.items()
        }
    separators: Dict[Tuple[int, int], LogTable] = {}

    def absorb(target: int, source: int, edge: Tuple[int, int]) -> None:
        sep_vars = jt.separator(source, target)
        sep_cards = tuple(
            jt.cliques[source].card_of(v) for v in sep_vars
        )
        sep_new = potentials[source].marginalize(sep_vars)
        old = separators.get(edge)
        if old is None:
            old = LogTable(sep_vars, sep_cards, np.zeros(sep_cards))
        ratio = sep_new.divide(old.aligned_to(sep_vars))
        separators[edge] = sep_new
        clique = jt.cliques[target]
        potentials[target] = potentials[target].multiply(
            ratio.extend_to(clique.variables, clique.cardinalities)
        )

    for node in jt.postorder():
        for child in jt.children[node]:
            absorb(node, child, (node, child))
    for node in jt.preorder():
        for child in jt.children[node]:
            absorb(child, node, (node, child))
    return potentials


def log_marginal(
    jt: JunctionTree,
    potentials: Dict[int, LogTable],
    variable: int,
) -> np.ndarray:
    """Stable posterior ``P(variable | evidence)`` from log-potentials."""
    host = jt.clique_containing([variable])
    return potentials[host].marginalize((variable,)).normalized_linear()
