"""Potential tables and node-level primitives.

A *potential table* is the joint (unnormalized) distribution over the random
variables of a clique or separator.  Evidence propagation is expressed as a
series of four *node-level primitives* over potential tables (Xia & Prasanna,
SBAC-PAD 2007, as used by the PACT 2009 paper):

* **marginalization** — project a clique table onto a separator scope,
* **extension** — broadcast a separator table up to a clique scope,
* **multiplication** — pointwise product of two aligned tables,
* **division** — pointwise ratio with the 0/0 = 0 convention.
"""

from repro.potential.table import PotentialTable
from repro.potential.primitives import (
    PrimitiveKind,
    divide,
    extend,
    marginalize,
    multiply,
    primitive_flops,
)
from repro.potential.partition import (
    chunk_ranges,
    divide_chunk,
    extend_chunk,
    marginalize_chunk,
    multiply_chunk,
)

__all__ = [
    "PotentialTable",
    "PrimitiveKind",
    "marginalize",
    "extend",
    "multiply",
    "divide",
    "primitive_flops",
    "chunk_ranges",
    "marginalize_chunk",
    "extend_chunk",
    "multiply_chunk",
    "divide_chunk",
]
