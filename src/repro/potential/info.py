"""Information-theoretic measures on potential tables.

Entropy, Kullback-Leibler divergence and mutual information over
(normalized) potential tables — in nats.  Useful for quantifying evidence
impact, validating learned models, and the Chow-Liu criterion.
"""

from __future__ import annotations

import numpy as np

from repro.potential.primitives import marginalize
from repro.potential.table import PotentialTable


def entropy(table: PotentialTable) -> float:
    """Shannon entropy (nats) of the normalized table."""
    probs = table.normalize().values.reshape(-1)
    mask = probs > 0
    return float(-(probs[mask] * np.log(probs[mask])).sum())


def kl_divergence(p: PotentialTable, q: PotentialTable) -> float:
    """``KL(p || q)`` over identical scopes; ``inf`` if q lacks p's support."""
    if set(p.variables) != set(q.variables):
        raise ValueError("KL divergence needs identical scopes")
    pv = p.normalize().values.reshape(-1)
    qv = q.normalize().aligned_to(p.variables).values.reshape(-1)
    mask = pv > 0
    if np.any(qv[mask] == 0):
        return float("inf")
    return float((pv[mask] * np.log(pv[mask] / qv[mask])).sum())


def mutual_information(
    table: PotentialTable, group_a, group_b
) -> float:
    """``I(A; B)`` under the normalized joint ``table``.

    ``group_a`` and ``group_b`` are disjoint variable subsets of the
    table's scope; remaining variables are marginalized out.
    """
    group_a = tuple(group_a)
    group_b = tuple(group_b)
    if set(group_a) & set(group_b):
        raise ValueError("variable groups must be disjoint")
    missing = (set(group_a) | set(group_b)) - set(table.variables)
    if missing:
        raise ValueError(f"variables {sorted(missing)} not in scope")
    joint = marginalize(table.normalize(), group_a + group_b)
    return (
        entropy(marginalize(joint, group_a))
        + entropy(marginalize(joint, group_b))
        - entropy(joint)
    )


def jensen_shannon(p: PotentialTable, q: PotentialTable) -> float:
    """Jensen-Shannon divergence (symmetric, finite, in nats)."""
    if set(p.variables) != set(q.variables):
        raise ValueError("JS divergence needs identical scopes")
    pn = p.normalize()
    qn = q.normalize().aligned_to(pn.variables)
    mixture = PotentialTable(
        pn.variables, pn.cardinalities, 0.5 * (pn.values + qn.values)
    )
    return 0.5 * kl_divergence(pn, mixture) + 0.5 * kl_divergence(qn, mixture)
