"""Dense potential tables over discrete random variables.

A :class:`PotentialTable` couples an ordered scope (variable ids with their
cardinalities) to a dense numpy array whose axes follow the scope order.
All junction-tree math in the library is built from these tables.

A table may additionally carry a leading *batch* axis of ``B`` independent
evidence cases (``values.shape == (B,) + cardinalities``): the scope
describes the trailing axes only, and every primitive broadcasts over the
batch axis, so one pass of junction-tree math propagates ``B`` cases at
once.  ``batch is None`` (the default) is the classic single-case table.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np


class PotentialTable:
    """An unnormalized joint distribution over a set of discrete variables.

    Parameters
    ----------
    variables:
        Ordered variable ids; each corresponds to one axis of ``values``.
    cardinalities:
        Number of states of each variable, aligned with ``variables``.
    values:
        Array of shape ``cardinalities`` (or a flat array of the matching
        size, which is reshaped).  Defaults to all-ones (the identity
        potential for multiplication).
    batch:
        When not ``None``, the number ``B`` of evidence cases stacked
        along a leading batch axis; ``values`` then has shape
        ``(B,) + cardinalities``.
    """

    __slots__ = ("variables", "cardinalities", "values", "batch")

    def __init__(
        self,
        variables: Sequence[int],
        cardinalities: Sequence[int],
        values: np.ndarray = None,
        batch: int = None,
    ):
        variables = tuple(int(v) for v in variables)
        cardinalities = tuple(int(c) for c in cardinalities)
        if len(variables) != len(set(variables)):
            raise ValueError(f"duplicate variables in scope: {variables}")
        if len(variables) != len(cardinalities):
            raise ValueError(
                f"{len(variables)} variables but {len(cardinalities)} cardinalities"
            )
        if any(c < 1 for c in cardinalities):
            raise ValueError(f"cardinalities must be >= 1, got {cardinalities}")
        if batch is not None:
            batch = int(batch)
            if batch < 1:
                raise ValueError(f"batch size must be >= 1, got {batch}")
        shape = cardinalities if cardinalities else ()
        if batch is not None:
            shape = (batch,) + shape
        if values is None:
            values = np.ones(shape, dtype=np.float64)
        else:
            values = np.asarray(values, dtype=np.float64)
            expected = int(np.prod(shape, dtype=np.int64)) if shape else 1
            if values.size != expected:
                raise ValueError(
                    f"values has {values.size} entries, scope needs {expected}"
                )
            values = values.reshape(shape)
        self.variables = variables
        self.cardinalities = cardinalities
        self.values = values
        self.batch = batch

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Number of entries in the table (``prod(cardinalities)``, times
        the batch size for batched tables)."""
        return int(self.values.size)

    @property
    def case_size(self) -> int:
        """Entries per evidence case (``prod(cardinalities)``)."""
        size = 1
        for c in self.cardinalities:
            size *= c
        return size

    @property
    def nbytes(self) -> int:
        """Bytes needed to store the entries as float64."""
        return self.size * np.dtype(np.float64).itemsize

    @property
    def width(self) -> int:
        """Number of variables in the scope (the clique width ``w``)."""
        return len(self.variables)

    def card_of(self, variable: int) -> int:
        """Cardinality of ``variable``, which must be in the scope."""
        return self.cardinalities[self.variables.index(variable)]

    def scope_cards(self) -> Dict[int, int]:
        """Mapping of variable id to cardinality."""
        return dict(zip(self.variables, self.cardinalities))

    def __repr__(self) -> str:
        scope = ", ".join(
            f"{v}:{c}" for v, c in zip(self.variables, self.cardinalities)
        )
        tag = "" if self.batch is None else f", batch={self.batch}"
        return f"PotentialTable([{scope}], size={self.size}{tag})"

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def copy(self) -> "PotentialTable":
        """Deep copy (values are duplicated)."""
        return PotentialTable(
            self.variables, self.cardinalities, self.values.copy(),
            batch=self.batch,
        )

    @classmethod
    def ones(
        cls,
        variables: Sequence[int],
        cardinalities: Sequence[int],
        batch: int = None,
    ):
        """Identity potential (all entries 1) over the given scope."""
        return cls(variables, cardinalities, batch=batch)

    @classmethod
    def stack(cls, tables: Sequence["PotentialTable"]) -> "PotentialTable":
        """Stack single-case tables over one scope into a batched table.

        Tables must share a variable *set*; each is aligned to the first
        table's axis order before stacking, so the batch rows are
        case-for-case comparable.
        """
        tables = list(tables)
        if not tables:
            raise ValueError("stack needs at least one table")
        first = tables[0]
        if any(t.batch is not None for t in tables):
            raise ValueError("stack expects single-case (unbatched) tables")
        rows = [t.aligned_to(first.variables).values for t in tables]
        return cls(
            first.variables,
            first.cardinalities,
            np.stack(rows, axis=0),
            batch=len(rows),
        )

    def case(self, index: int) -> "PotentialTable":
        """Extract evidence case ``index`` of a batched table (copied)."""
        if self.batch is None:
            raise ValueError("case() needs a batched table")
        if not 0 <= index < self.batch:
            raise IndexError(
                f"case {index} out of range for batch of {self.batch}"
            )
        return PotentialTable(
            self.variables, self.cardinalities, self.values[index].copy()
        )

    @classmethod
    def from_buffer(
        cls,
        variables: Sequence[int],
        cardinalities: Sequence[int],
        buffer,
        offset: int = 0,
    ) -> "PotentialTable":
        """Zero-copy table view over ``buffer`` starting at byte ``offset``.

        ``buffer`` is any object exposing the buffer protocol (typically the
        ``buf`` of a ``multiprocessing.shared_memory.SharedMemory`` block).
        The returned table's ``values`` array is a *view*: writes through it
        are visible to every process attached to the same buffer.  Scalar
        scopes (empty ``variables``) occupy one float64 entry.
        """
        cardinalities = tuple(int(c) for c in cardinalities)
        count = 1
        for c in cardinalities:
            count *= c
        values = np.frombuffer(
            buffer, dtype=np.float64, count=count, offset=offset
        )
        return cls(variables, cardinalities, values)

    @classmethod
    def random(
        cls,
        variables: Sequence[int],
        cardinalities: Sequence[int],
        rng: np.random.Generator,
        low: float = 0.1,
        high: float = 1.0,
    ) -> "PotentialTable":
        """Random strictly-positive potential, useful for synthetic workloads.

        Entries are drawn uniformly from ``[low, high)``; keeping them bounded
        away from zero avoids division blow-ups during propagation.
        """
        shape = tuple(int(c) for c in cardinalities)
        values = rng.uniform(low, high, size=shape)
        return cls(variables, cardinalities, values)

    # ------------------------------------------------------------------ #
    # Scope manipulation
    # ------------------------------------------------------------------ #

    def aligned_to(self, variables: Sequence[int]) -> "PotentialTable":
        """Return this table with axes permuted to the given variable order.

        ``variables`` must be a permutation of this table's scope.
        """
        variables = tuple(int(v) for v in variables)
        if set(variables) != set(self.variables):
            raise ValueError(
                f"cannot align scope {self.variables} to {variables}: "
                "different variable sets"
            )
        if variables == self.variables:
            return self
        perm = [self.variables.index(v) for v in variables]
        cards = tuple(self.cardinalities[p] for p in perm)
        if self.batch is not None:
            perm = [0] + [p + 1 for p in perm]
        return PotentialTable(
            variables, cards, np.transpose(self.values, perm),
            batch=self.batch,
        )

    def reduce(self, evidence: Mapping[int, int]) -> "PotentialTable":
        """Instantiate evidence variables *in place of* their full axes.

        Entries inconsistent with the evidence are zeroed; the scope is kept
        so the table shape (and downstream task structure) is unchanged.
        This matches evidence absorption in the paper: the variable is
        instantiated and the remaining entries renormalized later.
        """
        values = self.values.copy()
        offset = 0 if self.batch is None else 1
        for var, state in evidence.items():
            if var not in self.variables:
                continue
            axis = self.variables.index(var)
            card = self.cardinalities[axis]
            if not 0 <= state < card:
                raise ValueError(
                    f"evidence state {state} out of range for variable {var} "
                    f"with {card} states"
                )
            mask = np.zeros(card, dtype=np.float64)
            mask[state] = 1.0
            shape = [1] * (len(self.cardinalities) + offset)
            shape[axis + offset] = card
            values = values * mask.reshape(shape)
        return PotentialTable(
            self.variables, self.cardinalities, values, batch=self.batch
        )

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #

    def normalize(self) -> "PotentialTable":
        """Return the table scaled to sum to 1 (no-op scale for all-zero).

        Batched tables normalize *per case*: each batch row is scaled to
        its own total, and all-zero rows are left untouched (matching the
        single-case convention for impossible evidence).
        """
        if self.batch is not None:
            totals = self.values.reshape(self.batch, -1).sum(axis=1)
            scale = np.where(totals > 0, totals, 1.0)
            shape = (self.batch,) + (1,) * len(self.cardinalities)
            return PotentialTable(
                self.variables,
                self.cardinalities,
                self.values / scale.reshape(shape),
                batch=self.batch,
            )
        total = float(self.values.sum())
        if total <= 0:
            return self.copy()
        return PotentialTable(
            self.variables, self.cardinalities, self.values / total
        )

    def total(self) -> float:
        """Sum of all entries (the partition function over this scope)."""
        return float(self.values.sum())

    def case_totals(self) -> np.ndarray:
        """Per-case partition functions, shape ``(B,)`` (``(1,)`` unbatched)."""
        if self.batch is None:
            return np.array([self.total()])
        return self.values.reshape(self.batch, -1).sum(axis=1)

    def allclose(self, other: "PotentialTable", rtol=1e-9, atol=1e-12) -> bool:
        """Whether two tables over the same variable *set* are numerically equal."""
        if set(self.variables) != set(other.variables):
            return False
        if self.batch != other.batch:
            return False
        aligned = other.aligned_to(self.variables)
        return bool(
            np.allclose(self.values, aligned.values, rtol=rtol, atol=atol)
        )


def common_scope(
    tables: Iterable[PotentialTable],
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Union scope of several tables, checking cardinality consistency.

    Returns ``(variables, cardinalities)`` with variables in first-seen order.
    """
    variables = []
    cards = {}
    for table in tables:
        for var, card in zip(table.variables, table.cardinalities):
            if var in cards:
                if cards[var] != card:
                    raise ValueError(
                        f"variable {var} has inconsistent cardinalities "
                        f"{cards[var]} vs {card}"
                    )
            else:
                cards[var] = card
                variables.append(var)
    return tuple(variables), tuple(cards[v] for v in variables)
