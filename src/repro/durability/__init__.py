"""Durable serving: write-ahead tick journals and whole-process recovery.

The layers above this package keep a serving process *internally*
robust — torn-write detection, checkpoint/restore, self-healing
sessions.  This package makes the process *externally* robust: a
``SIGKILL`` at any instant loses no acknowledged tick, and a restarted
process rebuilds its streams and models from the durable root instead
of from scratch.

* :class:`~repro.durability.journal.TickJournal` — the crc-framed,
  fsync'd append-only WAL (per stream).
* :class:`~repro.durability.recovery.RecoveryManager` /
  :class:`~repro.durability.recovery.RecoveryReport` — scan a durable
  root, replay journals, report what was rebuilt.
* :class:`~repro.durability.store.DurableModelStore` — compiled-model
  artifacts (tree + baseline checkpoint) for warm registry restarts.
"""

from repro.durability.journal import (
    JOURNAL_MAGIC,
    JournalError,
    TickJournal,
    atomic_write_bytes,
    atomic_write_text,
    decode_delta,
    encode_delta,
    fsync_dir,
)
from repro.durability.recovery import (
    ModelRecovery,
    RecoveryError,
    RecoveryManager,
    RecoveryReport,
    StreamRecovery,
)
from repro.durability.store import DurableModelStore

__all__ = [
    "JOURNAL_MAGIC",
    "JournalError",
    "TickJournal",
    "atomic_write_bytes",
    "atomic_write_text",
    "decode_delta",
    "encode_delta",
    "fsync_dir",
    "ModelRecovery",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryReport",
    "StreamRecovery",
    "DurableModelStore",
]
