"""Durable artifacts for registered models.

The :class:`~repro.registry.registry.ModelRegistry` pays its biggest
cost exactly once per model — moralize, triangulate, build and
calibrate the junction tree.  :class:`DurableModelStore` keeps the two
artifacts that make a *fresh process* skip that cost:

* the rerooted junction tree (structure + potentials) as JSON, via
  :mod:`repro.io.json_io`;
* the baseline :mod:`repro.integrity` checkpoint bytes the pool's
  engines rehydrate from.

Layout under ``<root>/models/``::

    manifest.json        model_id -> {tree, checkpoint, ...} index
    <slug>.tree.json     the tree artifact
    <slug>.ckpt.npz      the checkpoint artifact

All writes go through the same temp-file + fsync + ``os.replace``
discipline as the journal, and the manifest is rewritten *after* both
artifacts land, so a crash mid-save leaves either the previous
manifest (orphan artifact files are harmless and overwritten on the
next save) or the new one — never a manifest pointing at a torn file.
Adoption validates the pair before trusting it: the checkpoint's
recorded tree signature must match the loaded tree, reusing the
integrity layer's end-to-end validation chain.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
from typing import Dict, Optional, Tuple

from repro.durability.journal import atomic_write_bytes, atomic_write_text
from repro.integrity.checkpoint import read_manifest, tree_signature
from repro.io.json_io import tree_from_dict, tree_to_dict

_SLUG_OK = re.compile(r"[^A-Za-z0-9._-]")


def _slug(model_id: str) -> str:
    """Filesystem-safe stem for a model id, collision-proofed by hash."""
    clean = _SLUG_OK.sub("_", model_id)[:48]
    if clean == model_id:
        return clean
    digest = hashlib.sha256(model_id.encode("utf-8")).hexdigest()[:12]
    return f"{clean}-{digest}"


class DurableModelStore:
    """Reads and writes a durable root's ``models/`` directory."""

    def __init__(self, root: str):
        self.dir = os.path.join(root, "models")
        self.manifest_path = os.path.join(self.dir, "manifest.json")
        os.makedirs(self.dir, exist_ok=True)

    def manifest(self) -> Dict[str, Dict[str, object]]:
        if not os.path.isfile(self.manifest_path):
            return {}
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except ValueError:
            return {}
        return doc if isinstance(doc, dict) else {}

    def model_ids(self):
        return sorted(self.manifest())

    def save(
        self,
        model_id: str,
        junction_tree,
        baseline: bytes,
        compile_seconds: float = 0.0,
    ) -> None:
        """Durably persist one compiled model's artifacts.

        Artifacts first, manifest last — the manifest only ever points
        at files that are fully on disk.
        """
        stem = _slug(model_id)
        tree_name = f"{stem}.tree.json"
        ckpt_name = f"{stem}.ckpt.npz"
        tree_doc = tree_to_dict(junction_tree, include_potentials=True)
        atomic_write_text(
            os.path.join(self.dir, tree_name),
            json.dumps(tree_doc, separators=(",", ":")),
        )
        atomic_write_bytes(os.path.join(self.dir, ckpt_name), bytes(baseline))
        manifest = self.manifest()
        manifest[model_id] = {
            "tree": tree_name,
            "checkpoint": ckpt_name,
            "checkpoint_bytes": len(baseline),
            "compile_seconds": float(compile_seconds),
        }
        atomic_write_text(
            self.manifest_path, json.dumps(manifest, indent=2, sort_keys=True)
        )

    def load(
        self, model_id: str
    ) -> Optional[Tuple[object, bytes, Dict[str, object]]]:
        """Load and validate one model's artifacts.

        Returns ``(junction_tree, baseline_bytes, meta)`` or ``None``
        when the model has no durable artifacts (or they are missing on
        disk).  Raises :class:`~repro.integrity.checkpoint.CheckpointError`
        when artifacts exist but fail validation — callers treat that
        as "recompile cold", never as silent adoption of bad state.
        """
        meta = self.manifest().get(model_id)
        if meta is None:
            return None
        tree_path = os.path.join(self.dir, str(meta["tree"]))
        ckpt_path = os.path.join(self.dir, str(meta["checkpoint"]))
        if not (os.path.isfile(tree_path) and os.path.isfile(ckpt_path)):
            return None
        with open(tree_path, "r", encoding="utf-8") as handle:
            junction_tree = tree_from_dict(json.load(handle))
        with open(ckpt_path, "rb") as handle:
            baseline = handle.read()
        recorded = read_manifest(io.BytesIO(baseline))
        expected = tree_signature(junction_tree)
        if recorded.get("tree_signature") != expected:
            from repro.integrity.checkpoint import CheckpointMismatch

            raise CheckpointMismatch(
                f"durable checkpoint for {model_id!r} was written against a "
                f"different tree (signature {recorded.get('tree_signature')!r}"
                f" != {expected!r})"
            )
        return junction_tree, baseline, dict(meta)
