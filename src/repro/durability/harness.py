"""The SIGKILL crash harness: a real child serving process to murder.

Everything in-process (``InjectedCrash``, the fault plan) simulates
death; this module proves the contract against the real thing.  Run as

    python -m repro.durability.harness <root> <seed> <ticks>

it builds a deterministic HMM and tick schedule from ``seed``, starts a
durable :class:`~repro.serve.streaming.StreamingService` on ``root``
(recovering whatever a previous incarnation left there), resumes the
schedule from the journal's ``next_seq``, and prints one flushed JSON
line per acknowledged tick::

    ACK {"seq": 3, "t": 3, "m": [0.41, 0.42, 0.17]}

then ``DONE`` after a clean drain.  The parent (soak phase F,
``bench_recovery``) reads acks until it has seen enough, ``SIGKILL``s
the child mid-traffic, and verifies against the next incarnation:

* every acked seq is applied in the recovered state (no acked tick
  lost),
* every acked marginal matches the offline unrolled-network oracle at
  1e-9 (exactness survives the crash),
* recovery's ``recovered_seqs`` were never re-acked to any client (no
  double-ack) — they were applied internally, statuses journaled as
  ``"recovered"``.

The schedule is a pure function of the seed, so parent and child agree
on every tick's evidence without sharing anything but ``(seed, ticks)``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

import repro

STREAM_NAME = "crash-stream"
WINDOW = 4
RETIRE = 2


def build_demo_dbn(seed: int):
    """The deterministic 3-state / 4-observation HMM the harness serves."""
    from repro.bn.dbn import make_hmm

    rng = np.random.default_rng(seed)

    def stoch(shape):
        m = rng.random(shape) + 0.1
        return m / m.sum(axis=-1, keepdims=True)

    return make_hmm(3, 4, stoch((3,)), stoch((3, 3)), stoch((3, 4)))


def build_schedule(seed: int, ticks: int) -> List[Dict[int, int]]:
    """The deterministic evidence schedule (observation var 1 per tick)."""
    rng = np.random.default_rng(seed + 1)
    return [{1: int(rng.integers(4))} for _ in range(ticks)]


def oracle_marginal(dbn, schedule, upto: int) -> np.ndarray:
    """Offline unrolled-network posterior of state var 0 at tick ``upto``.

    The ground truth each acked marginal is held to: one engine over the
    ``upto + 1``-slice unrolling with the schedule's evidence applied.
    """
    from repro.inference.engine import InferenceEngine

    engine = InferenceEngine.from_network(dbn.unroll(upto + 1))
    for t in range(upto + 1):
        for v, finding in schedule[t].items():
            engine.observe(dbn.variable_at(v, t), finding)
    engine.propagate()
    return engine.marginal(dbn.variable_at(0, upto))


# --------------------------------------------------------------------- #
# Child process
# --------------------------------------------------------------------- #


def serve(root: str, seed: int, ticks: int) -> int:
    """Child entry: recover, resume the schedule, ack every ok tick."""
    from repro.serve.streaming import StreamingService

    dbn = build_demo_dbn(seed)
    schedule = build_schedule(seed, ticks)
    service = StreamingService(
        dbn,
        window=WINDOW,
        retire=RETIRE,
        workers=1,
        max_pending=4,
        durable_root=root,
    )
    report = service.recovery_report
    if report is not None and report.streams:
        print(
            "RECOVERED " + json.dumps(report.streams[0].to_dict()), flush=True
        )
    try:
        handle = service._handle(STREAM_NAME)
    except KeyError:
        handle = service.subscribe(name=STREAM_NAME, query_vars=[0])
    start = handle.next_seq
    for seq in range(start, ticks):
        response = service.push_tick(handle, schedule[seq]).result(30)
        if response.ok:
            print(
                "ACK "
                + json.dumps(
                    {
                        "seq": seq,
                        "t": response.t,
                        "m": [float(x) for x in response.marginals[0]],
                    }
                ),
                flush=True,
            )
    service.drain()
    print("DONE", flush=True)
    return 0


# --------------------------------------------------------------------- #
# Parent helpers
# --------------------------------------------------------------------- #


def spawn_child(root: str, seed: int, ticks: int) -> subprocess.Popen:
    """Start one harness child; its acks arrive on stdout."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return subprocess.Popen(
        [sys.executable, "-m", "repro.durability.harness", root, str(seed), str(ticks)],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )


def read_acks(
    proc: subprocess.Popen,
    count: Optional[int] = None,
    timeout: float = 60.0,
) -> Tuple[List[Dict[str, object]], Optional[Dict[str, object]], bool]:
    """Read the child's stdout until ``count`` acks, DONE, or EOF.

    Returns ``(acks, recovered, done)`` where ``recovered`` is the
    child's construction-time recovery record (None on a first run).
    Reads are line-blocking; ``timeout`` bounds the whole call via
    SIGALRM-free wall checks between lines (a stuck child is the
    caller's kill decision).
    """
    acks: List[Dict[str, object]] = []
    recovered: Optional[Dict[str, object]] = None
    deadline = time.monotonic() + timeout
    assert proc.stdout is not None
    for line in proc.stdout:
        line = line.strip()
        if line.startswith("ACK "):
            acks.append(json.loads(line[4:]))
        elif line.startswith("RECOVERED "):
            recovered = json.loads(line[10:])
        elif line == "DONE":
            return acks, recovered, True
        if count is not None and len(acks) >= count:
            return acks, recovered, False
        if time.monotonic() > deadline:
            break
    return acks, recovered, False


def kill_child(proc: subprocess.Popen) -> None:
    """SIGKILL the child — the real, unsimulated crash."""
    proc.send_signal(signal.SIGKILL)
    proc.wait()
    if proc.stdout is not None:
        proc.stdout.close()


def verify_acks(dbn, schedule, acks, atol: float = 1e-9) -> List[str]:
    """Check every acked marginal against the oracle; return failures."""
    failures = []
    for ack in acks:
        want = oracle_marginal(dbn, schedule, int(ack["t"]))
        got = np.asarray(ack["m"], dtype=np.float64)
        if not np.allclose(got, want, atol=atol, rtol=0.0):
            failures.append(
                f"acked tick seq {ack['seq']} (t={ack['t']}) differs from "
                f"the oracle by {np.abs(got - want).max():.3e}"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 3:
        print(
            "usage: python -m repro.durability.harness <root> <seed> <ticks>",
            file=sys.stderr,
        )
        return 2
    return serve(argv[0], int(argv[1]), int(argv[2]))


if __name__ == "__main__":
    sys.exit(main())
