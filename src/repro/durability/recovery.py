"""Whole-process recovery: scan a durable root, replay journals, report.

A durable root is the on-disk home of one serving process::

    <root>/streams/_template.json      the DBN every stream filters
    <root>/streams/<name>/meta.json    one stream's subscribe parameters
    <root>/streams/<name>/NNNNNNNN.wal its tick journal segments
    <root>/models/manifest.json        registered-model artifact index
    <root>/models/<slug>.tree.json     a compiled model's rerooted tree
    <root>/models/<slug>.ckpt.npz      its baseline integrity checkpoint

:class:`RecoveryManager` is what a restarted
:class:`~repro.serve.streaming.StreamingService` calls before accepting
traffic: it re-subscribes every stream found under the root, restores
each session from its journal's segment snapshot, and replays the
records after it.  The replay contract:

* **acked-ok** ticks are re-applied and *must* succeed — they are the
  durable state the pre-crash process acknowledged, and replaying the
  same evidence set reproduces the same posteriors (propagation is
  evidence-set-deterministic, so replay is idempotent).  A failure here
  is a :class:`RecoveryError`, never a silently thinner state.
* **refused** ticks are skipped — their evidence was never applied.
* **unacked** ticks (admitted, outcome unknown at the crash) are
  replayed at-least-once: on success they join the state and an ack
  with status ``"recovered"`` is journaled (so a second crash does not
  re-count them, and so the no-double-ack invariant is checkable); on
  failure they are dropped with a durable ``"dropped"`` ack.

Replay runs serially (the stream's executor is bypassed) so recovery
never depends on the health of the machinery that may have caused the
crash.  After replay each journal rotates to a fresh segment whose
snapshot is the recovered state, bounding the cost of the *next*
recovery.  The typed :class:`RecoveryReport` — per-stream replay/drop
counts, torn bytes truncated, wall time — is what the ``repro
recover`` CLI prints and what ``ServiceReport`` counters summarize.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.durability.journal import TickJournal, decode_delta
from repro.streaming.session import TickError


class RecoveryError(RuntimeError):
    """Recovery could not reproduce the acknowledged durable state."""


@dataclass
class StreamRecovery:
    """What recovering one stream's journal did."""

    stream: str
    replayed_acked: int = 0
    replayed_unacked: int = 0
    dropped_unacked: int = 0
    skipped_refused: int = 0
    torn_bytes: int = 0
    segments_discarded: int = 0
    final_t: int = 0
    seconds: float = 0.0
    # Sequence-number evidence for the harnesses' invariants: seqs
    # applied to the recovered state (in order), seqs the pre-crash
    # process acked ok, seqs newly applied by THIS replay (never
    # re-acked to any client), and seqs dropped by this replay.
    applied_seqs: List[int] = field(default_factory=list)
    acked_seqs: List[int] = field(default_factory=list)
    recovered_seqs: List[int] = field(default_factory=list)
    dropped_seqs: List[int] = field(default_factory=list)

    @property
    def replayed(self) -> int:
        return self.replayed_acked + self.replayed_unacked

    def to_dict(self) -> Dict[str, object]:
        return {
            "stream": self.stream,
            "replayed_acked": self.replayed_acked,
            "replayed_unacked": self.replayed_unacked,
            "dropped_unacked": self.dropped_unacked,
            "skipped_refused": self.skipped_refused,
            "torn_bytes": self.torn_bytes,
            "segments_discarded": self.segments_discarded,
            "final_t": self.final_t,
            "seconds": self.seconds,
            "applied_seqs": list(self.applied_seqs),
            "acked_seqs": list(self.acked_seqs),
            "recovered_seqs": list(self.recovered_seqs),
            "dropped_seqs": list(self.dropped_seqs),
        }


@dataclass
class ModelRecovery:
    """One registered model's durable-artifact adoption outcome."""

    model_id: str
    adopted: bool
    checkpoint_bytes: int = 0
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "model_id": self.model_id,
            "adopted": self.adopted,
            "checkpoint_bytes": self.checkpoint_bytes,
            "detail": self.detail,
        }


@dataclass
class RecoveryReport:
    """Everything one recovery pass over a durable root did."""

    root: str
    streams: List[StreamRecovery] = field(default_factory=list)
    models: List[ModelRecovery] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def replayed_ticks(self) -> int:
        return sum(s.replayed for s in self.streams)

    @property
    def dropped_unacked(self) -> int:
        return sum(s.dropped_unacked for s in self.streams)

    @property
    def torn_bytes(self) -> int:
        return sum(s.torn_bytes for s in self.streams)

    @property
    def models_adopted(self) -> int:
        return sum(1 for m in self.models if m.adopted)

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "streams": [s.to_dict() for s in self.streams],
            "models": [m.to_dict() for m in self.models],
            "replayed_ticks": self.replayed_ticks,
            "dropped_unacked": self.dropped_unacked,
            "torn_bytes": self.torn_bytes,
            "models_adopted": self.models_adopted,
            "wall_seconds": self.wall_seconds,
        }

    def format(self) -> str:
        """Multi-line human rendering (``repro recover`` prints this)."""
        lines = [
            f"durable root       {self.root}",
            f"streams recovered  {len(self.streams):8d}"
            f"   in {self.wall_seconds:.3f} s wall",
            f"ticks replayed     {self.replayed_ticks:8d}"
            f"   ({sum(s.replayed_acked for s in self.streams)} acked, "
            f"{sum(s.replayed_unacked for s in self.streams)} unacked)",
            f"unacked dropped    {self.dropped_unacked:8d}",
            f"torn bytes cut     {self.torn_bytes:8d}"
            f"   ({sum(s.segments_discarded for s in self.streams)} "
            f"segments discarded)",
        ]
        for stream in self.streams:
            lines.append(
                f"  {stream.stream:<16s} t={stream.final_t}"
                f" replayed {stream.replayed}"
                f" (acked {stream.replayed_acked},"
                f" unacked {stream.replayed_unacked},"
                f" dropped {stream.dropped_unacked},"
                f" refused-skipped {stream.skipped_refused})"
                f" torn {stream.torn_bytes} B"
                f" in {stream.seconds:.3f} s"
            )
        if self.models:
            lines.append(
                f"models adopted     {self.models_adopted:8d}"
                f"   of {len(self.models)} with durable artifacts"
            )
            for model in self.models:
                state = "warm" if model.adopted else f"cold ({model.detail})"
                lines.append(
                    f"  {model.model_id:<16s} {state}, "
                    f"checkpoint {model.checkpoint_bytes} B"
                )
        return "\n".join(lines)


class RecoveryManager:
    """Scans a durable root and rebuilds serving state from it."""

    def __init__(self, root: str):
        self.root = root
        self.streams_dir = os.path.join(root, "streams")

    def stream_names(self) -> List[str]:
        """Streams with durable state under the root (sorted)."""
        if not os.path.isdir(self.streams_dir):
            return []
        return sorted(
            name
            for name in os.listdir(self.streams_dir)
            if os.path.isfile(os.path.join(self.streams_dir, name, "meta.json"))
        )

    def load_template(self):
        """The DBN template the root's streams filter, or ``None``."""
        path = os.path.join(self.streams_dir, "_template.json")
        if not os.path.isfile(path):
            return None
        from repro.io.json_io import dbn_from_dict

        with open(path, "r", encoding="utf-8") as handle:
            return dbn_from_dict(json.load(handle))

    # ------------------------------------------------------------------ #
    # Stream recovery
    # ------------------------------------------------------------------ #

    def recover_streams(self, service, span_buffer=None) -> RecoveryReport:
        """Re-subscribe and replay every durable stream into ``service``.

        ``service`` is a freshly constructed (still traffic-free)
        :class:`~repro.serve.streaming.StreamingService` whose
        ``durable_root`` is this manager's root: ``subscribe`` opens
        each stream's journal (truncating torn tails), and this method
        restores the session snapshot and replays the records.
        """
        from repro.obs.span import CAT_RECOVERY

        started = time.perf_counter()
        started_ns = time.perf_counter_ns()
        report = RecoveryReport(root=self.root)
        for name in self.stream_names():
            meta_path = os.path.join(self.streams_dir, name, "meta.json")
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            t0_ns = time.perf_counter_ns()
            handle_ = service.subscribe(
                name=name,
                query_vars=meta.get("query_vars"),
                window=meta.get("window"),
                retire=meta.get("retire"),
                max_pending=meta.get("max_pending"),
                incremental=meta.get("incremental", True),
            )
            recovery = self.replay_stream(handle_.session, handle_.journal, name)
            handle_.next_seq = handle_.journal.next_seq
            report.streams.append(recovery)
            if span_buffer is not None:
                span_buffer.span(
                    f"recover:{name}",
                    CAT_RECOVERY,
                    t0_ns,
                    time.perf_counter_ns(),
                )
        report.wall_seconds = time.perf_counter() - started
        if span_buffer is not None and report.streams:
            span_buffer.span(
                "recover:streams",
                CAT_RECOVERY,
                started_ns,
                time.perf_counter_ns(),
            )
        return report

    def replay_stream(self, session, journal: TickJournal, name: str) -> StreamRecovery:
        """Restore ``session`` from ``journal`` and replay its records."""
        started = time.perf_counter()
        recovery = StreamRecovery(
            stream=name,
            torn_bytes=journal.torn_bytes,
            segments_discarded=journal.segments_discarded,
        )
        state = journal.snapshot.get("state")
        if state is not None:
            session.restore_state(state)
        acks: Dict[int, str] = {}
        ticks: List[Dict[str, object]] = []
        for record in journal.records:
            if record.get("type") == "tick":
                ticks.append(record)
            elif record.get("type") == "ack":
                acks[int(record["seq"])] = str(record["status"])
        recovery.acked_seqs = sorted(
            seq for seq, status in acks.items() if status == "ok"
        )
        # Recovery must not depend on the (possibly still faulty)
        # executor that crashed the previous process: replay serially.
        executor = session.executor
        session.executor = None
        try:
            for record in ticks:
                seq = int(record["seq"])
                delta = decode_delta(record["delta"])
                status = acks.get(seq)
                if status in ("ok", "recovered"):
                    try:
                        session.tick(delta)
                    except TickError as exc:
                        raise RecoveryError(
                            f"stream {name!r}: replay of acked tick seq "
                            f"{seq} failed — the durable state cannot be "
                            f"reproduced: {exc}"
                        ) from exc
                    recovery.replayed_acked += 1
                    recovery.applied_seqs.append(seq)
                elif status in ("refused", "dropped"):
                    recovery.skipped_refused += 1
                else:  # unacked: at-least-once replay
                    try:
                        session.tick(delta)
                    except Exception:
                        recovery.dropped_unacked += 1
                        recovery.dropped_seqs.append(seq)
                        journal.append_ack(seq, "dropped")
                    else:
                        recovery.replayed_unacked += 1
                        recovery.applied_seqs.append(seq)
                        recovery.recovered_seqs.append(seq)
                        journal.append_ack(seq, "recovered", t=session.t - 1)
        finally:
            session.executor = executor
        # Rotate so the NEXT crash replays from the recovered state, not
        # from this whole journal again.
        journal.rotate(session.snapshot_state(), next_seq=journal.next_seq)
        recovery.final_t = session.t
        recovery.seconds = time.perf_counter() - started
        return recovery
