"""The crc-framed, fsync'd write-ahead tick journal.

A :class:`TickJournal` makes a filtering stream's admitted work durable
before it executes.  The format is the classic crash-only WAL shape:

* **Framing** — every record is ``magic | length | crc32 | payload``
  (10-byte header, JSON payload).  The crc covers the payload, the
  length field bounds it, and the magic pins the frame start, so a tail
  torn anywhere — header, length, payload, even a single flipped byte —
  is detected on open and **truncated** back to the last whole record.
  Appends are flushed *and* ``fsync``'d before the caller proceeds:
  once :meth:`append_tick` returns, the tick survives ``SIGKILL``.
* **Segments** — the journal is a directory of numbered segments
  (``00000001.wal`` …).  Every segment begins with a ``snapshot``
  record carrying the owning session's durable state and the next
  expected sequence number, so replay of a segment is self-contained.
  :meth:`rotate` writes the next segment to a temp file, fsyncs it,
  and ``os.replace``'s it into place before deleting its predecessors
  — a crash at any instant leaves either the old segment chain or the
  new one, never neither.  A segment whose *snapshot itself* is torn is
  discarded whole and open falls back to the previous segment.
* **Records** — ``tick`` records (sequence number + evidence delta)
  are appended before execution; ``ack`` records (sequence + outcome)
  after resolution.  Replay semantics live in
  :mod:`repro.durability.recovery`: acked-ok ticks are re-applied
  exactly, refused ticks are skipped, unacked ticks are replayed
  at-least-once.

Evidence deltas round-trip through JSON exactly: hard findings are
ints, soft findings are float lists, and Python's ``repr``-based float
serialization reproduces every ``float64`` bit-for-bit.

Deterministic crash points (:class:`~repro.sched.faults.FaultPlan`'s
``crash_after_journal_append`` / ``torn_append``) are honored inside
:meth:`append_tick` so tests and the soak can cut the process at the
exact byte the failure model cares about.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.sched.faults import InjectedCrash

JOURNAL_MAGIC = b"\xc4W"
_HEADER = struct.Struct("<2sII")  # magic, payload length, payload crc32
SEGMENT_SUFFIX = ".wal"


class JournalError(RuntimeError):
    """A journal invariant was violated (not a torn tail — those heal)."""


# --------------------------------------------------------------------- #
# Small durable-write helpers (shared with the model store)
# --------------------------------------------------------------------- #


def fsync_dir(path: str) -> None:
    """fsync a directory so a rename/unlink inside it is durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: temp file, fsync, replace."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    fsync_dir(os.path.dirname(path) or ".")


def atomic_write_text(path: str, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


# --------------------------------------------------------------------- #
# Evidence-delta JSON codec
# --------------------------------------------------------------------- #


def encode_delta(delta: Mapping[int, object]) -> Dict[str, object]:
    """JSON-ready form of a tick's evidence delta.

    Hard findings serialize as ints, soft findings as float lists;
    both round-trip exactly (JSON floats use ``repr``, which is
    bit-exact for ``float64``).
    """
    out: Dict[str, object] = {}
    for v, finding in delta.items():
        if isinstance(finding, (int, np.integer)):
            out[str(int(v))] = int(finding)
        else:
            out[str(int(v))] = [
                float(w) for w in np.asarray(finding, dtype=np.float64).reshape(-1)
            ]
    return out


def decode_delta(doc: Mapping[str, object]) -> Dict[int, object]:
    """Inverse of :func:`encode_delta`."""
    out: Dict[int, object] = {}
    for v, finding in doc.items():
        if isinstance(finding, int):
            out[int(v)] = finding
        else:
            out[int(v)] = np.asarray(finding, dtype=np.float64)
    return out


def _frame(record: Mapping[str, object]) -> bytes:
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(JOURNAL_MAGIC, len(payload), zlib.crc32(payload)) + payload


class TickJournal:
    """One stream's append-only write-ahead log, a directory of segments.

    Opening scans the newest segment, truncates any torn tail in place
    (``torn_bytes`` records how much), and falls back to the previous
    segment — deleting the unusable one — if the newest segment's
    snapshot record itself did not survive.  After open,
    :attr:`snapshot` holds the segment's opening session state and
    :attr:`records` every whole record appended since.

    ``fault_plan`` wires deterministic crash injection into
    :meth:`append_tick` (see :class:`~repro.sched.faults.FaultPlan`).
    """

    def __init__(self, root: str, fault_plan=None):
        self.root = root
        self._plan = fault_plan
        self.torn_bytes = 0
        self.segments_discarded = 0
        self.appended = 0
        self.snapshot: Dict[str, object] = {}
        self.records: List[Dict[str, object]] = []
        self._file = None
        self._index = 0
        os.makedirs(root, exist_ok=True)
        self._open()

    # ------------------------------------------------------------------ #
    # Open / scan
    # ------------------------------------------------------------------ #

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.root, f"{index:08d}{SEGMENT_SUFFIX}")

    def _segments(self) -> List[Tuple[int, str]]:
        found = []
        for name in os.listdir(self.root):
            stem, ext = os.path.splitext(name)
            if ext == SEGMENT_SUFFIX and stem.isdigit():
                found.append((int(stem), os.path.join(self.root, name)))
        return sorted(found)

    def _scan(self, path: str):
        """Scan one segment; truncate a torn tail; None if unusable."""
        with open(path, "rb") as handle:
            data = handle.read()
        records: List[Dict[str, object]] = []
        pos = 0
        while pos + _HEADER.size <= len(data):
            magic, length, crc = _HEADER.unpack_from(data, pos)
            if magic != JOURNAL_MAGIC:
                break
            start = pos + _HEADER.size
            end = start + length
            if end > len(data):
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                break
            try:
                record = json.loads(payload.decode("utf-8"))
            except ValueError:
                break
            records.append(record)
            pos = end
        torn = len(data) - pos
        if not records or records[0].get("type") != "snapshot":
            # The segment's own snapshot is gone: nothing here is
            # replayable without the previous segment's context.
            return None
        if torn:
            with open(path, "r+b") as handle:
                handle.truncate(pos)
                handle.flush()
                os.fsync(handle.fileno())
        return records[0], records[1:], torn

    def _open(self) -> None:
        segments = self._segments()
        path = None
        while segments:
            index, candidate = segments[-1]
            scanned = self._scan(candidate)
            if scanned is None:
                self.segments_discarded += 1
                self.torn_bytes += os.path.getsize(candidate)
                os.unlink(candidate)
                fsync_dir(self.root)
                segments.pop()
                continue
            self.snapshot, self.records, torn = scanned
            self.torn_bytes += torn
            self._index = index
            path = candidate
            break
        if path is None:
            # Fresh journal: segment 1 opens with an empty snapshot.
            self._index = 1
            self.snapshot = {"type": "snapshot", "next_seq": 0, "state": None}
            self.records = []
            path = self._segment_path(1)
            atomic_write_bytes(path, _frame(self.snapshot))
        self._file = open(path, "ab")

    @property
    def next_seq(self) -> int:
        """The sequence number the next admitted tick should carry."""
        seq = int(self.snapshot.get("next_seq", 0))
        for record in self.records:
            recorded = record.get("seq")
            if recorded is not None:
                seq = max(seq, int(recorded) + 1)
        return seq

    # ------------------------------------------------------------------ #
    # Appends
    # ------------------------------------------------------------------ #

    def _write(self, frame: bytes) -> None:
        if self._file is None:
            raise JournalError("journal is closed")
        self._file.write(frame)
        self._file.flush()
        os.fsync(self._file.fileno())
        self.appended += 1

    def append_tick(self, seq: int, delta: Mapping[int, object]) -> None:
        """Durably record one admitted tick *before* it executes.

        Honors the fault plan's deterministic crash points: a
        ``torn_append`` writes only a prefix of the frame (the torn tail
        open() must truncate) and a ``crash_after_journal_append`` cuts
        the process after the record is durable but before execution —
        both raise :class:`~repro.sched.faults.InjectedCrash`.
        """
        record = {"type": "tick", "seq": int(seq), "delta": encode_delta(delta)}
        frame = _frame(record)
        if self._plan is not None:
            keep = self._plan.take_torn_append(seq)
            if keep is not None:
                torn = frame[: max(1, min(int(keep), len(frame) - 1))]
                self._write(torn)
                raise InjectedCrash(
                    f"torn journal append at seq {seq} "
                    f"({len(torn)} of {len(frame)} bytes)"
                )
        self._write(frame)
        self.records.append(record)
        if self._plan is not None and self._plan.take_crash_after_append(seq):
            raise InjectedCrash(f"crash after journal append of seq {seq}")

    def append_ack(self, seq: int, status: str, t: Optional[int] = None) -> None:
        """Durably record one tick's resolution.

        ``status`` is ``"ok"`` (applied, answered), ``"refused"``
        (typed refusal, evidence not applied), ``"recovered"`` (applied
        by a recovery replay) or ``"dropped"`` (recovery replay failed).
        """
        record: Dict[str, object] = {"type": "ack", "seq": int(seq), "status": status}
        if t is not None:
            record["t"] = int(t)
        self._write(_frame(record))
        self.records.append(record)

    # ------------------------------------------------------------------ #
    # Rotation
    # ------------------------------------------------------------------ #

    def rotate(self, state: Optional[Dict[str, object]], next_seq: int) -> None:
        """Atomically start a new segment opening with ``state``.

        The new segment is fully durable (written, fsync'd, renamed
        into place, directory fsync'd) before any predecessor is
        deleted: a crash mid-rotation recovers from whichever chain
        survived, never from neither.
        """
        index = self._index + 1
        snapshot = {"type": "snapshot", "next_seq": int(next_seq), "state": state}
        path = self._segment_path(index)
        atomic_write_bytes(path, _frame(snapshot))
        old = self._file
        self._file = open(path, "ab")
        self._index = index
        self.snapshot = snapshot
        self.records = []
        if old is not None:
            old.close()
        for other_index, other_path in self._segments():
            if other_index < index:
                os.unlink(other_path)
        fsync_dir(self.root)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Flush, fsync and close the current segment (idempotent)."""
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    @property
    def closed(self) -> bool:
        return self._file is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TickJournal(root={self.root!r}, segment={self._index}, "
            f"records={len(self.records)}, next_seq={self.next_seq})"
        )
